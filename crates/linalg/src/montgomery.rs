//! Montgomery-form GF(p) arithmetic and elimination kernels.
//!
//! The naive `u64` prime field ([`crate::ring::PrimeField`]) pays a
//! `u128` division (`%`) for every multiplication — the dominant cost of
//! the modular elimination hot loops behind the CRT determinant and the
//! certified rank engine. Montgomery representation replaces that
//! division with two multiplies and a shift (REDC), and for primes below
//! `2^62` the reduction can additionally be *delayed*: residues live in
//! the lazy window `[0, 2p)`, REDC's final conditional subtraction is
//! skipped, and the elimination inner loop `t ← t − f·s` costs one REDC
//! plus one add and one conditional subtract — no divisions anywhere.
//!
//! Layout:
//!
//! * [`MontgomeryField`] — the field object (`p` odd, `3 ≤ p < 2^62`)
//!   with conversion, lazy arithmetic, and inversion;
//! * [`echelon_mod`] / [`det_mod`] / [`rank_mod`] — specialized dense
//!   kernels over an [`Integer`] matrix reduced mod `p`, the substrate of
//!   [`crate::crt`]'s certified exact computations. Each dispatches to a
//!   cache-blocked *communication-avoiding* kernel (panel factorization +
//!   grouped-REDC trailing update, tile width from
//!   [`crate::iomodel::panel_width`]) when the modulus is below
//!   [`GROUPED_REDC_MAX_MODULUS`] and the matrix is kernel-scale, and to
//!   the scalar delayed-reduction sweep otherwise; both paths report
//!   Hong–Kung words moved into the `ccmx_iomodel_*` meter.
//!
//! Window arithmetic (all for `p < 2^62`, `R = 2^64`):
//! inputs `a, b < 2p` give `a·b < 4p² < p·R`, so `REDC(a·b) < a·b/R + p
//! < 2p` — the lazy window is closed under multiplication without the
//! final subtraction, and `x + (2p − y) < 4p < 2^64` never overflows.
//! For `p < 2^60` the window is wider still: *four* lazy products sum to
//! `< 16p² < p·R`, so the blocked kernels retire four multiply–adds per
//! REDC (see [`GROUPED_REDC_MAX_MODULUS`]).

use ccmx_bigint::modular::{inv_mod_u64, reduce_integer_u64};
use ccmx_bigint::Integer;

use crate::iomodel;
use crate::matrix::Matrix;

/// Largest modulus the lazy-reduction kernels accept (exclusive).
pub const MAX_MODULUS: u64 = 1 << 62;

/// Largest modulus (exclusive) for the grouped-REDC blocked kernels:
/// a `u128` sum of four lazy products needs `4·(2p)² < p·2^64`, i.e.
/// `p < 2^60`. The CRT prime pool draws from `next_prime(2^59)` upward
/// precisely so its primes qualify; explicitly supplied larger moduli
/// (up to [`MAX_MODULUS`]) still work through the scalar kernels.
pub const GROUPED_REDC_MAX_MODULUS: u64 = 1 << 60;

/// GF(p) in Montgomery form for an odd prime `3 ≤ p < 2^62`.
///
/// Elements are `u64` residues in the *lazy window* `[0, 2p)`, stored as
/// `a·R mod p` (up to one extra `p`), `R = 2^64`. Use [`to_mont`] /
/// [`from_mont`] at the boundary; everything in between stays lazy.
///
/// [`to_mont`]: MontgomeryField::to_mont
/// [`from_mont`]: MontgomeryField::from_mont
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MontgomeryField {
    p: u64,
    twop: u64,
    /// `-p^{-1} mod 2^64` (Newton iteration).
    neg_inv: u64,
    /// `R² mod p`, the to-Montgomery multiplier.
    r2: u64,
    /// `1` in Montgomery form.
    one: u64,
}

impl MontgomeryField {
    /// Construct the field. Panics unless `p` is odd and `3 ≤ p < 2^62`.
    /// (Primality is the caller's responsibility, exactly as for
    /// [`crate::ring::PrimeField`].)
    pub fn new(p: u64) -> Self {
        assert!(p >= 3 && p % 2 == 1, "Montgomery modulus must be odd >= 3");
        assert!(p < MAX_MODULUS, "Montgomery modulus must be < 2^62");
        // Newton–Hensel: x ← x(2 − p·x) doubles correct low bits.
        let mut inv = p; // correct to 3 bits (p odd)
        for _ in 0..5 {
            inv = inv.wrapping_mul(2u64.wrapping_sub(p.wrapping_mul(inv)));
        }
        debug_assert_eq!(p.wrapping_mul(inv), 1);
        let neg_inv = inv.wrapping_neg();
        // R mod p, then square it with double-and-add to get R² mod p.
        let r = (u64::MAX % p) + 1; // 2^64 mod p (p > 1 so no overflow to 0 issues)
        let r_mod = if r == p { 0 } else { r };
        let r2 = ((r_mod as u128 * r_mod as u128) % p as u128) as u64;
        let mut field = MontgomeryField {
            p,
            twop: 2 * p,
            neg_inv,
            r2,
            one: 0,
        };
        field.one = field.to_mont(1);
        field
    }

    /// The modulus.
    #[inline]
    pub fn modulus(&self) -> u64 {
        self.p
    }

    /// `1` in Montgomery form.
    #[inline]
    pub fn one(&self) -> u64 {
        self.one
    }

    /// REDC: `t·R^{-1} mod p`, lazily (result `< 2p` for `t < 4p²`).
    #[inline(always)]
    fn redc(&self, t: u128) -> u64 {
        let m = (t as u64).wrapping_mul(self.neg_inv);
        let u = (t + m as u128 * self.p as u128) >> 64;
        u as u64
    }

    /// Lazy product of two lazy residues.
    #[inline(always)]
    pub fn mul(&self, a: u64, b: u64) -> u64 {
        debug_assert!(a < self.twop && b < self.twop);
        self.redc(a as u128 * b as u128)
    }

    /// Lazy sum.
    #[inline(always)]
    pub fn add(&self, a: u64, b: u64) -> u64 {
        debug_assert!(a < self.twop && b < self.twop);
        let s = a + b; // < 4p < 2^64
        if s >= self.twop {
            s - self.twop
        } else {
            s
        }
    }

    /// Lazy difference.
    #[inline(always)]
    pub fn sub(&self, a: u64, b: u64) -> u64 {
        debug_assert!(a < self.twop && b < self.twop);
        let s = a + self.twop - b; // < 4p
        if s >= self.twop {
            s - self.twop
        } else {
            s
        }
    }

    /// The delayed-reduction elimination kernel: `t − f·s` in one REDC.
    #[inline(always)]
    pub fn sub_mul(&self, t: u64, f: u64, s: u64) -> u64 {
        self.sub(t, self.mul(f, s))
    }

    /// REDC of an accumulated sum of up to four lazy products. The
    /// blocked kernels sum four `f·s` products (`f, s < 2p`) in a `u128`
    /// and retire them with this single reduction — legal only for
    /// moduli below [`GROUPED_REDC_MAX_MODULUS`], where `4·(2p)² <
    /// p·2^64` keeps the sum under `p·R` (so the result stays lazy).
    #[inline(always)]
    fn redc_sum(&self, t: u128) -> u64 {
        debug_assert!(t < (self.p as u128) << 64, "grouped-REDC sum overflow");
        self.redc(t)
    }

    /// Is the lazy residue ≡ 0 (mod p)?
    #[inline(always)]
    pub fn is_zero(&self, a: u64) -> bool {
        a == 0 || a == self.p
    }

    /// Canonical residue `a < p` into Montgomery (lazy) form.
    #[inline]
    pub fn to_mont(&self, a: u64) -> u64 {
        debug_assert!(a < self.p);
        self.redc(a as u128 * self.r2 as u128)
    }

    /// Lazy Montgomery residue back to canonical `[0, p)`.
    #[inline]
    pub fn from_mont(&self, a: u64) -> u64 {
        debug_assert!(a < self.twop);
        let u = self.redc(a as u128); // < p + 1, i.e. <= p
        if u >= self.p {
            u - self.p
        } else {
            u
        }
    }

    /// Multiplicative inverse of a nonzero lazy residue (Montgomery
    /// form), via extended Euclid on the canonical value.
    pub fn inv(&self, a: u64) -> Option<u64> {
        let canonical = self.from_mont(a);
        if canonical == 0 {
            return None;
        }
        inv_mod_u64(canonical, self.p).map(|i| self.to_mont(i))
    }

    /// Reduce an [`Integer`] into the field (Montgomery form).
    pub fn reduce(&self, a: &Integer) -> u64 {
        self.to_mont(reduce_integer_u64(a, self.p))
    }

    /// Radix powers for [`Self::mont_from_limbs`]: `powers[l] =
    /// 2^{64·l}·R² mod p` (canonical), so that `REDC(limb · powers[l])`
    /// is the Montgomery form of `limb · 2^{64·l}`.
    pub fn limb_radix_powers(&self, count: usize) -> Vec<u64> {
        let mut powers = Vec::with_capacity(count);
        let mut cur = self.r2;
        for _ in 0..count {
            powers.push(cur);
            cur = (((cur as u128) << 64) % self.p as u128) as u64;
        }
        powers
    }

    /// Reduce a little-endian limb magnitude (optionally negated) into
    /// the field in one pass: one REDC per nonzero limb, **no bigint
    /// division**. `powers` must come from [`Self::limb_radix_powers`]
    /// with `powers.len() >= limbs.len()`.
    ///
    /// Window safety: `limb < 2^64` and `powers[l] < p` give `limb ·
    /// powers[l] < p·R`, so `REDC < 2p` — a lazy residue, closed under
    /// [`Self::add`].
    pub fn mont_from_limbs(&self, limbs: &[u64], negative: bool, powers: &[u64]) -> u64 {
        debug_assert!(powers.len() >= limbs.len(), "radix powers too short");
        let mut acc = 0u64;
        for (l, &limb) in limbs.iter().enumerate() {
            if limb != 0 {
                acc = self.add(acc, self.redc(limb as u128 * powers[l] as u128));
            }
        }
        if negative {
            acc = self.sub(0, acc);
        }
        acc
    }
}

/// Result of one modular elimination sweep: everything the CRT layer
/// needs, with residues back in **canonical** (non-Montgomery) form.
#[derive(Clone, Debug)]
pub struct ModEchelon {
    /// The prime.
    pub p: u64,
    /// Reduced row echelon form mod `p`, canonical residues.
    pub rref: Matrix<u64>,
    /// Pivot column of each pivot row, in row order.
    pub pivot_cols: Vec<usize>,
    /// `det mod p` (canonical) if the input was square, else `None`.
    pub det: Option<u64>,
}

impl ModEchelon {
    /// The rank mod `p`.
    pub fn rank(&self) -> usize {
        self.pivot_cols.len()
    }
}

/// Reduce an integer matrix mod `p` into lazy Montgomery residues.
fn reduce_matrix_mont(m: &Matrix<Integer>, field: &MontgomeryField) -> Vec<u64> {
    m.data().iter().map(|e| field.reduce(e)).collect()
}

/// Reduced row echelon form of an integer matrix mod `p`, through the
/// delayed-reduction Montgomery kernel. Bit-identical results to the
/// generic [`crate::gauss::echelon`] over [`crate::ring::PrimeField`],
/// several times faster.
pub fn echelon_mod(m: &Matrix<Integer>, p: u64) -> ModEchelon {
    let field = MontgomeryField::new(p);
    let a = reduce_matrix_mont(m, &field);
    echelon_from_residues(&field, m.rows(), m.cols(), &a)
}

/// [`echelon_mod`] on a matrix already reduced into lazy Montgomery
/// residues (row-major, `rows × cols`) — the fan-out target of the
/// one-pass multi-prime reducer in [`crate::engine`], which reduces the
/// bigint matrix once instead of once per prime.
///
/// Dispatches to the blocked communication-avoiding kernel when the
/// modulus and shape qualify (falling back to the scalar sweep on
/// rank-deficient inputs, where the blocked forward pass bails); results
/// are identical either way — RREF mod `p` is unique.
pub fn echelon_from_residues(
    field: &MontgomeryField,
    rows: usize,
    cols: usize,
    residues: &[u64],
) -> ModEchelon {
    if blocked_eligible(field, rows, cols) {
        if let Some(e) =
            echelon_from_residues_blocked(field, rows, cols, residues, iomodel::panel_width())
        {
            return e;
        }
    }
    echelon_from_residues_scalar(field, rows, cols, residues)
}

/// The scalar (column-at-a-time) Gauss–Jordan sweep behind
/// [`echelon_from_residues`] — also the oracle the blocked kernel is
/// property-tested against.
pub fn echelon_from_residues_scalar(
    field: &MontgomeryField,
    rows: usize,
    cols: usize,
    residues: &[u64],
) -> ModEchelon {
    assert_eq!(residues.len(), rows * cols, "residue buffer shape mismatch");
    let mut words = 0u64;
    let mut a = residues.to_vec();
    let idx = |r: usize, c: usize| r * cols + c;

    let mut pivot_cols = Vec::new();
    let mut det_sign_flip = false;
    let mut det = if rows == cols {
        Some(field.one())
    } else {
        None
    };
    let mut pivot_row = 0usize;
    for col in 0..cols {
        let Some(p_row) = (pivot_row..rows).find(|&r| !field.is_zero(a[idx(r, col)])) else {
            continue;
        };
        // Hong–Kung accounting for the unblocked sweep: the pivot-column
        // scan, the pivot-row scale (read+write) and, per eliminated row,
        // a pivot-row read plus a read+write of the trailing row.
        words += ((3 * (rows - 1) + 2) * (cols - col) + (rows - pivot_row)) as u64;
        if p_row != pivot_row {
            for j in col..cols {
                a.swap(idx(p_row, j), idx(pivot_row, j));
            }
            det_sign_flip = !det_sign_flip;
        }
        let pivot = a[idx(pivot_row, col)];
        if let Some(d) = det {
            det = Some(field.mul(d, pivot));
        }
        // Scale the pivot row so the pivot becomes 1.
        let inv = field.inv(pivot).expect("nonzero pivot in a prime field");
        for j in col..cols {
            a[idx(pivot_row, j)] = field.mul(a[idx(pivot_row, j)], inv);
        }
        // Eliminate the column everywhere else (full reduction). The
        // inner loop is the delayed-reduction hot path.
        for r in 0..rows {
            if r == pivot_row || field.is_zero(a[idx(r, col)]) {
                continue;
            }
            let factor = a[idx(r, col)];
            let (pr_base, r_base) = (idx(pivot_row, 0), idx(r, 0));
            for j in col..cols {
                a[r_base + j] = field.sub_mul(a[r_base + j], factor, a[pr_base + j]);
            }
        }
        pivot_cols.push(col);
        pivot_row += 1;
        if pivot_row == rows {
            break;
        }
    }
    if rows == cols && pivot_cols.len() < rows {
        det = Some(0);
    }
    let det = det.map(|d| {
        let v = field.from_mont(d);
        if det_sign_flip && v != 0 {
            field.modulus() - v
        } else {
            v
        }
    });
    flush_scalar_words(iomodel::Kernel::Rref, rows.min(cols), words);
    let rref = Matrix::from_vec(
        rows,
        cols,
        a.into_iter().map(|v| field.from_mont(v)).collect(),
    );
    ModEchelon {
        p: field.modulus(),
        rref,
        pivot_cols,
        det,
    }
}

/// Determinant of a square integer matrix mod `p` (forward elimination
/// only — cheaper than [`echelon_mod`] when the RREF is not needed).
pub fn det_mod(m: &Matrix<Integer>, p: u64) -> u64 {
    assert!(m.is_square(), "determinant of non-square matrix");
    let field = MontgomeryField::new(p);
    let a = reduce_matrix_mont(m, &field);
    det_from_residues(&field, m.rows(), &a)
}

/// [`det_mod`] on pre-reduced lazy Montgomery residues (`n × n`,
/// row-major). Dispatches to the blocked communication-avoiding kernel
/// when the modulus and shape qualify (the blocked forward pass handles
/// every determinant case itself — a pivotless column just means 0).
pub fn det_from_residues(field: &MontgomeryField, n: usize, residues: &[u64]) -> u64 {
    if blocked_eligible(field, n, n) {
        det_from_residues_blocked(field, n, residues, iomodel::panel_width())
    } else {
        det_from_residues_scalar(field, n, residues)
    }
}

/// The scalar forward-elimination determinant behind
/// [`det_from_residues`] — also the oracle the blocked kernel is
/// property-tested against.
pub fn det_from_residues_scalar(field: &MontgomeryField, n: usize, residues: &[u64]) -> u64 {
    assert_eq!(residues.len(), n * n, "residue buffer shape mismatch");
    if n == 0 {
        return 1 % field.modulus();
    }
    let mut words = 0u64;
    let mut a = residues.to_vec();
    let idx = |r: usize, c: usize| r * n + c;
    let mut det = field.one();
    let mut negate = false;
    for col in 0..n {
        let Some(p_row) = (col..n).find(|&r| !field.is_zero(a[idx(r, col)])) else {
            flush_scalar_words(iomodel::Kernel::Det, n, words);
            return 0;
        };
        words += ((3 * (n - col - 1) + 1) * (n - col)) as u64;
        if p_row != col {
            for j in col..n {
                a.swap(idx(p_row, j), idx(col, j));
            }
            negate = !negate;
        }
        let pivot = a[idx(col, col)];
        det = field.mul(det, pivot);
        let inv = field.inv(pivot).expect("nonzero pivot in a prime field");
        for r in col + 1..n {
            if field.is_zero(a[idx(r, col)]) {
                continue;
            }
            let factor = field.mul(a[idx(r, col)], inv);
            let (c_base, r_base) = (idx(col, 0), idx(r, 0));
            for j in col..n {
                a[r_base + j] = field.sub_mul(a[r_base + j], factor, a[c_base + j]);
            }
        }
    }
    flush_scalar_words(iomodel::Kernel::Det, n, words);
    let v = field.from_mont(det);
    if negate && v != 0 {
        field.modulus() - v
    } else {
        v
    }
}

/// Rank of an integer matrix mod `p` (forward elimination only).
pub fn rank_mod(m: &Matrix<Integer>, p: u64) -> usize {
    let field = MontgomeryField::new(p);
    let a = reduce_matrix_mont(m, &field);
    rank_from_residues(&field, m.rows(), m.cols(), &a)
}

/// [`rank_mod`] on pre-reduced lazy Montgomery residues (`rows × cols`,
/// row-major). Dispatches to the blocked communication-avoiding kernel
/// when the modulus and shape qualify; the blocked pass certifies full
/// rank or bails to the scalar sweep (rank-deficient inputs).
pub fn rank_from_residues(
    field: &MontgomeryField,
    rows: usize,
    cols: usize,
    residues: &[u64],
) -> usize {
    if blocked_eligible(field, rows, cols) {
        if let Some(rank) =
            rank_from_residues_blocked(field, rows, cols, residues, iomodel::panel_width())
        {
            return rank;
        }
    }
    rank_from_residues_scalar(field, rows, cols, residues)
}

/// The scalar forward-elimination rank behind [`rank_from_residues`] —
/// also the oracle the blocked kernel is property-tested against.
pub fn rank_from_residues_scalar(
    field: &MontgomeryField,
    rows: usize,
    cols: usize,
    residues: &[u64],
) -> usize {
    assert_eq!(residues.len(), rows * cols, "residue buffer shape mismatch");
    if rows == 0 || cols == 0 {
        return 0;
    }
    let mut words = 0u64;
    let mut a = residues.to_vec();
    let idx = |r: usize, c: usize| r * cols + c;
    let mut rank = 0usize;
    for col in 0..cols {
        let Some(p_row) = (rank..rows).find(|&r| !field.is_zero(a[idx(r, col)])) else {
            continue;
        };
        words += ((3 * (rows - rank - 1) + 1) * (cols - col)) as u64;
        if p_row != rank {
            for j in col..cols {
                a.swap(idx(p_row, j), idx(rank, j));
            }
        }
        let inv = field
            .inv(a[idx(rank, col)])
            .expect("nonzero pivot in a prime field");
        for r in rank + 1..rows {
            if field.is_zero(a[idx(r, col)]) {
                continue;
            }
            let factor = field.mul(a[idx(r, col)], inv);
            let (k_base, r_base) = (idx(rank, 0), idx(r, 0));
            for j in col..cols {
                a[r_base + j] = field.sub_mul(a[r_base + j], factor, a[k_base + j]);
            }
        }
        rank += 1;
        if rank == rows {
            break;
        }
    }
    flush_scalar_words(iomodel::Kernel::Rank, rows.min(cols), words);
    rank
}

// ---------------------------------------------------------------------
// Blocked (communication-avoiding) kernels.
//
// LAPACK-shaped right-looking elimination: factor a `b`-column panel
// with partial pivoting (multipliers stored in place of the zeros they
// create), finalize the panel pivot-row tails triangularly, then apply
// the rank-`b` trailing update `C ← C − F·P` as a GEMM swept in
// `b`-column tiles so the working set (one factor band, one pivot tile,
// one output band) fits the modelled fast memory. The GEMM inner loop
// retires four multiply–adds per REDC on the `[0, 2p)` lazy window —
// legal because dispatch requires `p <` [`GROUPED_REDC_MAX_MODULUS`].
//
// RREF/rank/det mod p are unique, so the blocked kernels must (and do)
// agree exactly with the scalar sweeps above; the proptests sweep tile
// widths against them.
// ---------------------------------------------------------------------

/// Number of output rows a GEMM register band carries: four rows share
/// each strided pivot-tile load, which is the instruction-level
/// parallelism that makes the blocked kernel beat the scalar sweep.
const GEMM_ROWS: usize = 4;

/// Does this modulus/shape qualify for the blocked path? Small shapes
/// stay scalar (and unmetered) so enumeration hot loops never pay panel
/// bookkeeping or registry traffic.
#[inline]
fn blocked_eligible(field: &MontgomeryField, rows: usize, cols: usize) -> bool {
    field.modulus() < GROUPED_REDC_MAX_MODULUS && rows.min(cols) >= iomodel::METER_MIN_DIM
}

/// Flush a scalar kernel's locally accumulated Hong–Kung words, if the
/// shape is kernel-scale (one registry touch; sub-threshold shapes skip
/// the meter entirely).
fn flush_scalar_words(kernel: iomodel::Kernel, min_dim: usize, words: u64) {
    if min_dim >= iomodel::METER_MIN_DIM {
        let mut io = iomodel::IoMeter::new(kernel);
        io.add(words);
        io.flush(false);
    }
}

/// Montgomery's batch-inversion trick over lazy residues: replaces the
/// `k ≤ 16` nonzero values in `v` by their field inverses using a single
/// modular inversion and `3(k−1)` multiplications. This is what makes
/// the blocked panels cheap: a scalar sweep pays one ~400ns extended-GCD
/// inversion per pivot, a panel pays one per `bw` pivots.
fn batch_invert(field: &MontgomeryField, v: &mut [u64]) {
    let k = v.len();
    if k == 0 {
        return;
    }
    debug_assert!(k <= 16);
    let mut prefix = [0u64; 16];
    let mut acc = v[0];
    prefix[0] = acc;
    for i in 1..k {
        acc = field.mul(acc, v[i]);
        prefix[i] = acc;
    }
    let mut inv_acc = field.inv(acc).expect("nonzero values in a prime field");
    for i in (1..k).rev() {
        let inv_i = field.mul(inv_acc, prefix[i - 1]);
        inv_acc = field.mul(inv_acc, v[i]);
        v[i] = inv_i;
    }
    v[0] = inv_acc;
}

/// What the blocked forward pass leaves behind on success (full column
/// rank over the leading `min(rows, cols)` columns).
struct BlockedForward {
    /// Product of pivots, Montgomery form (the determinant up to sign).
    det: u64,
    /// Row-swap parity.
    negate: bool,
    /// Montgomery inverses of the pivots, in pivot order — reused by the
    /// RREF normalization pass.
    pivot_invs: Vec<u64>,
}

/// Blocked forward elimination with partial pivoting, in place over the
/// lazy residues of an `rows × cols` matrix. On return the leading
/// `d = min(rows, cols)` columns are upper-trapezoidal (multiplier
/// scratch zeroed). Returns `None` the moment a column has no pivot —
/// rank-deficient input; callers either report det 0 (square) or fall
/// back to the scalar sweep.
fn blocked_forward(
    field: &MontgomeryField,
    rows: usize,
    cols: usize,
    a: &mut [u64],
    panel: usize,
    io: &mut iomodel::IoMeter,
) -> Option<BlockedForward> {
    let d = rows.min(cols);
    let mut det = field.one();
    let mut negate = false;
    let mut pivot_invs = Vec::with_capacity(d);
    let mut c0 = 0usize;
    while c0 < d {
        let c1 = (c0 + panel).min(d);
        let bw = c1 - c0;
        // Panel factorization: columns c0..c1 over rows c0..rows,
        // left-looking and **division-free** — every entry carries a known
        // unit scale (a product of the panel's scaled pivots), so each
        // column catches up on the panel columns already factored via
        // grouped-REDC dots on the raw scaled values, and the whole panel
        // needs exactly ONE modular inversion (batched, at panel end) to
        // recover true multipliers, pivots and U tails. Scale ledger: a
        // subdiagonal entry at panel column s carries S_s = Π_{c<s} p̃_c,
        // pivot row t carries S_t across its tail, and the catch-up for a
        // row needing the first m updates is
        //   ã[x][col] = S_m·orig − Σ_{s<m} T_s·ã[s][col]·ã[x][s],
        // with T_s = S_m / (p̃_s·S_s) folded into the negated weight
        // vector incrementally as the sweep passes each pivot row.
        let twop = 2 * field.modulus();
        // Lazy negation: stays strictly below 2p (0 maps to 0, not 2p).
        let negl = |v: u64| if v == 0 { 0 } else { twop - v };
        let mut sp = [0u64; 16]; // scaled pivots p̃_t
        let mut s_pref = [0u64; 17]; // S_t = Π_{c<t} p̃_c (Montgomery form)
        s_pref[0] = field.one();
        for col in c0..c1 {
            let k = col - c0;
            if k > 0 {
                let mut fbuf = [0u64; 16];
                // wbuf[0] pairs with the original entry (prefactor S_m);
                // wbuf[1..=m] hold −T_s·ã[s][col] for the panel's pivot
                // rows, rescaled and extended as the sweep passes them.
                let mut wbuf = [0u64; 16];
                wbuf[0] = s_pref[1];
                wbuf[1] = negl(a[c0 * cols + col]);
                for x in c0 + 1..rows {
                    let m = (x - c0).min(k);
                    fbuf[0] = a[x * cols + col];
                    fbuf[1..=m].copy_from_slice(&a[x * cols + c0..x * cols + c0 + m]);
                    let v = dot_grouped_dyn(field, &fbuf, &wbuf, m + 1);
                    a[x * cols + col] = v;
                    if m < k {
                        // Passed pivot row x: every T_s gains a p̃_m
                        // factor and the row's own finalized entry joins
                        // the weights (its T is the empty product).
                        for w in wbuf.iter_mut().take(m + 1).skip(1) {
                            *w = field.mul(*w, sp[m]);
                        }
                        wbuf[m + 1] = negl(v);
                        wbuf[0] = s_pref[m + 1];
                    }
                }
            }
            let p_row = (col..rows).find(|&r| !field.is_zero(a[r * cols + col]))?;
            if p_row != col {
                // Columns left of c0 are already zero in both rows; the
                // swap must carry this panel's raw scaled multipliers
                // (the pending updates they encode travel with the row,
                // and any two rows ≥ col have identical scale structure).
                for j in c0..cols {
                    a.swap(p_row * cols + j, col * cols + j);
                }
                negate = !negate;
            }
            sp[k] = a[col * cols + col];
            s_pref[k + 1] = field.mul(s_pref[k], sp[k]);
        }
        // Panel fix-up: one batched inversion recovers every pivot
        // inverse, then true multipliers f = ã·p̃⁻¹ (the row scales
        // cancel), true pivots p = p̃·S⁻¹, and unscaled pivot-row tails.
        let mut ip = [0u64; 16];
        ip[..bw].copy_from_slice(&sp[..bw]);
        batch_invert(field, &mut ip[..bw]);
        let mut inv_s = field.one();
        for t in 0..bw {
            let colt = c0 + t;
            let p_true = field.mul(sp[t], inv_s);
            det = field.mul(det, p_true);
            pivot_invs.push(field.mul(ip[t], s_pref[t]));
            for r in colt + 1..rows {
                let v = a[r * cols + colt];
                a[r * cols + colt] = if field.is_zero(v) {
                    0
                } else {
                    field.mul(v, ip[t])
                };
            }
            a[colt * cols + colt] = p_true;
            for j in colt + 1..c1 {
                a[colt * cols + j] = field.mul(a[colt * cols + j], inv_s);
            }
            inv_s = field.mul(inv_s, ip[t]);
        }
        // Panel traffic: the (rows−c0)×bw panel streams through fast
        // memory once, read and written.
        io.add((2 * (rows - c0) * bw) as u64);
        if c1 < cols {
            // Triangular finalize: each panel pivot-row tail takes the
            // updates from the pivot rows above it (row s is final before
            // any row t > s reads it).
            for t in c0 + 1..c1 {
                for s in c0..t {
                    let f = a[t * cols + s];
                    if field.is_zero(f) {
                        continue;
                    }
                    let (s_base, t_base) = (s * cols, t * cols);
                    for j in c1..cols {
                        a[t_base + j] = field.sub_mul(a[t_base + j], f, a[s_base + j]);
                    }
                    io.add((3 * (cols - c1)) as u64);
                }
            }
            // Trailing update: rows below the panel, columns after it.
            gemm_update(field, a, cols, c0, bw, c1, rows, c1, cols, io);
        }
        // The multiplier scratch is not part of the echelon result.
        for r in c0 + 1..rows {
            for s in c0..c1.min(r) {
                a[r * cols + s] = 0;
            }
        }
        c0 = c1;
    }
    Some(BlockedForward {
        det,
        negate,
        pivot_invs,
    })
}

/// Rank-`bw` GEMM update `row_r[j0..j1] −= Σ_t a[r][pr0+t] · a[pr0+t][j0..j1]`
/// for target rows `r0..r1` (which must not intersect the pivot rows
/// `pr0..pr0+bw`), swept in `bw`-wide column tiles with four-row register
/// bands and grouped REDC. Used by the forward pass (targets below the
/// panel) and the RREF back-pass (targets above it).
#[allow(clippy::too_many_arguments)]
fn gemm_update(
    field: &MontgomeryField,
    a: &mut [u64],
    cols: usize,
    pr0: usize,
    bw: usize,
    r0: usize,
    r1: usize,
    j0: usize,
    j1: usize,
    io: &mut iomodel::IoMeter,
) {
    if r0 >= r1 || j0 >= j1 || bw == 0 {
        return;
    }
    debug_assert!(r1 <= pr0 || r0 >= pr0 + bw, "targets alias pivot rows");
    let (tgt, piv, tgt_row0): (&mut [u64], &[u64], usize) = if r0 >= pr0 + bw {
        let (lo, hi) = a.split_at_mut(r0 * cols);
        (hi, &lo[pr0 * cols..(pr0 + bw) * cols], r0)
    } else {
        let (lo, hi) = a.split_at_mut(pr0 * cols);
        (lo, &hi[..bw * cols], 0)
    };
    let mut bands: Vec<&mut [u64]> = tgt[(r0 - tgt_row0) * cols..(r1 - tgt_row0) * cols]
        .chunks_exact_mut(cols)
        .collect();
    // Monomorphize on the panel width so the grouped-REDC inner loops
    // fully unroll (constant trip counts) — worth ~10% at n = 32.
    macro_rules! tiles {
        ($($n:literal)+) => {
            match bw {
                $($n => gemm_tiles::<$n>(field, &mut bands, piv, cols, pr0, j0, j1, io),)+
                _ => unreachable!("panel width is 1..=16"),
            }
        };
    }
    tiles!(1 2 3 4 5 6 7 8 9 10 11 12 13 14 15 16);
}

/// The tile/band sweep of [`gemm_update`] for one (constant) panel
/// width.
#[allow(clippy::too_many_arguments)]
fn gemm_tiles<const BW: usize>(
    field: &MontgomeryField,
    bands: &mut [&mut [u64]],
    piv: &[u64],
    cols: usize,
    pr0: usize,
    j0: usize,
    j1: usize,
    io: &mut iomodel::IoMeter,
) {
    // Column tile of 2·BW: the working set (BW×2BW pivot tile + a
    // four-row factor band and output band, 2b² + 12b words) still fits
    // the modelled fast memory the panel width was derived from (3b²),
    // and the wider sweep halves the per-tile loop overhead.
    let tile = (2 * BW).max(GEMM_ROWS);
    let mut t0 = j0;
    while t0 < j1 {
        let t1 = (t0 + tile).min(j1);
        // Pivot tile resident for the whole band sweep.
        io.add((BW * (t1 - t0)) as u64);
        for band in bands.chunks_mut(GEMM_ROWS) {
            // Factor band in, output band read+written.
            io.add((band.len() * BW + 2 * band.len() * (t1 - t0)) as u64);
            match band {
                [w, x, y, z] => gemm_band4::<BW>(
                    field,
                    [&mut **w, &mut **x, &mut **y, &mut **z],
                    piv,
                    cols,
                    pr0,
                    t0,
                    t1,
                ),
                _ => {
                    for row in band.iter_mut() {
                        gemm_band1::<BW>(field, row, piv, cols, pr0, t0, t1);
                    }
                }
            }
        }
        t0 = t1;
    }
}

/// Runtime-length variant of [`dot_grouped`] for the triangular
/// finalize, whose dot lengths (`1..panel`) vary per row.
#[inline(always)]
fn dot_grouped_dyn(field: &MontgomeryField, f: &[u64; 16], s: &[u64; 16], k: usize) -> u64 {
    let mut acc = 0u64;
    let mut t = 0;
    while t + 4 <= k {
        let sum = f[t] as u128 * s[t] as u128
            + f[t + 1] as u128 * s[t + 1] as u128
            + f[t + 2] as u128 * s[t + 2] as u128
            + f[t + 3] as u128 * s[t + 3] as u128;
        acc = field.add(acc, field.redc_sum(sum));
        t += 4;
    }
    if t < k {
        let mut sum = 0u128;
        for u in t..k {
            sum += f[u] as u128 * s[u] as u128;
        }
        acc = field.add(acc, field.redc_sum(sum));
    }
    acc
}

/// Grouped-REDC dot product of two `BW`-element vectors (lazy residues):
/// four products per `u128` accumulator, one REDC each. Safe because
/// `4·(2p)² < p·2^64` for `p <` [`GROUPED_REDC_MAX_MODULUS`].
#[inline(always)]
fn dot_grouped<const BW: usize>(field: &MontgomeryField, f: &[u64; BW], s: &[u64; BW]) -> u64 {
    let mut acc = 0u64;
    let mut t = 0;
    while t + 4 <= BW {
        let sum = f[t] as u128 * s[t] as u128
            + f[t + 1] as u128 * s[t + 1] as u128
            + f[t + 2] as u128 * s[t + 2] as u128
            + f[t + 3] as u128 * s[t + 3] as u128;
        acc = field.add(acc, field.redc_sum(sum));
        t += 4;
    }
    if t < BW {
        let mut sum = 0u128;
        for u in t..BW {
            sum += f[u] as u128 * s[u] as u128;
        }
        acc = field.add(acc, field.redc_sum(sum));
    }
    acc
}

/// Four-row GEMM register band over one column tile: the strided pivot
/// loads `a[pr0+t][j]` are shared by all four output rows.
#[inline(always)]
fn gemm_band4<const BW: usize>(
    field: &MontgomeryField,
    rows4: [&mut [u64]; 4],
    piv: &[u64],
    cols: usize,
    pr0: usize,
    j0: usize,
    j1: usize,
) {
    let mut f = [[0u64; BW]; 4];
    for (fk, row) in f.iter_mut().zip(rows4.iter()) {
        fk.copy_from_slice(&row[pr0..pr0 + BW]);
    }
    let [w, x, y, z] = rows4;
    for j in j0..j1 {
        let mut pv = [0u64; BW];
        for (t, p) in pv.iter_mut().enumerate() {
            *p = piv[t * cols + j];
        }
        let a0 = dot_grouped::<BW>(field, &f[0], &pv);
        let a1 = dot_grouped::<BW>(field, &f[1], &pv);
        let a2 = dot_grouped::<BW>(field, &f[2], &pv);
        let a3 = dot_grouped::<BW>(field, &f[3], &pv);
        w[j] = field.sub(w[j], a0);
        x[j] = field.sub(x[j], a1);
        y[j] = field.sub(y[j], a2);
        z[j] = field.sub(z[j], a3);
    }
}

/// Single-row tail of [`gemm_band4`] (bands of fewer than four rows).
#[inline(always)]
fn gemm_band1<const BW: usize>(
    field: &MontgomeryField,
    row: &mut [u64],
    piv: &[u64],
    cols: usize,
    pr0: usize,
    j0: usize,
    j1: usize,
) {
    let mut f = [0u64; BW];
    f.copy_from_slice(&row[pr0..pr0 + BW]);
    for j in j0..j1 {
        let mut pv = [0u64; BW];
        for (t, p) in pv.iter_mut().enumerate() {
            *p = piv[t * cols + j];
        }
        let acc = dot_grouped::<BW>(field, &f, &pv);
        row[j] = field.sub(row[j], acc);
    }
}

/// Assert a panel width the blocked kernels can take: `1..=16` (the
/// register bands are 16-wide) and a grouped-REDC-safe modulus.
fn assert_blocked_params(field: &MontgomeryField, panel: usize) {
    assert!(
        (1..=16).contains(&panel),
        "blocked panel width must be in 1..=16"
    );
    assert!(
        field.modulus() < GROUPED_REDC_MAX_MODULUS,
        "blocked kernels need p < 2^60 (grouped REDC)"
    );
}

/// [`det_from_residues`] through the blocked kernel with an explicit
/// panel width — exposed for the tile-sweep proptests and the E19 bench;
/// production dispatch uses [`crate::iomodel::panel_width`]. Handles
/// every input (a pivotless column means determinant 0), so it never
/// needs the scalar fallback. Requires `p <` [`GROUPED_REDC_MAX_MODULUS`].
pub fn det_from_residues_blocked(
    field: &MontgomeryField,
    n: usize,
    residues: &[u64],
    panel: usize,
) -> u64 {
    assert_eq!(residues.len(), n * n, "residue buffer shape mismatch");
    assert_blocked_params(field, panel);
    if n == 0 {
        return 1 % field.modulus();
    }
    let mut io = iomodel::IoMeter::new(iomodel::Kernel::Det);
    let mut a = residues.to_vec();
    let out = match blocked_forward(field, n, n, &mut a, panel, &mut io) {
        None => 0,
        Some(fw) => {
            let v = field.from_mont(fw.det);
            if fw.negate && v != 0 {
                field.modulus() - v
            } else {
                v
            }
        }
    };
    io.flush(true);
    out
}

/// [`rank_from_residues`] through the blocked kernel with an explicit
/// panel width. Returns `Some(min(rows, cols))` when the forward pass
/// certifies full column rank over the leading square, `None` when it
/// hits a pivotless column (rank-deficient — the caller falls back to
/// the scalar sweep, having spent at most one partial pass).
pub fn rank_from_residues_blocked(
    field: &MontgomeryField,
    rows: usize,
    cols: usize,
    residues: &[u64],
    panel: usize,
) -> Option<usize> {
    assert_eq!(residues.len(), rows * cols, "residue buffer shape mismatch");
    assert_blocked_params(field, panel);
    if rows == 0 || cols == 0 {
        return Some(0);
    }
    let mut io = iomodel::IoMeter::new(iomodel::Kernel::Rank);
    let mut a = residues.to_vec();
    let fw = blocked_forward(field, rows, cols, &mut a, panel, &mut io);
    io.flush(true);
    fw.map(|_| rows.min(cols))
}

/// [`echelon_from_residues`] through the blocked kernel with an explicit
/// panel width: blocked forward pass, pivot-row normalization, then a
/// blockwise Gauss–Jordan back-pass (within-panel triangular elimination
/// plus a grouped-REDC GEMM for the rows above, over the free columns
/// only). Returns `None` on rank-deficient input — the caller falls back
/// to the scalar sweep.
pub fn echelon_from_residues_blocked(
    field: &MontgomeryField,
    rows: usize,
    cols: usize,
    residues: &[u64],
    panel: usize,
) -> Option<ModEchelon> {
    assert_eq!(residues.len(), rows * cols, "residue buffer shape mismatch");
    assert_blocked_params(field, panel);
    if rows == 0 || cols == 0 {
        return None; // trivial shapes: let the scalar path handle them
    }
    let mut io = iomodel::IoMeter::new(iomodel::Kernel::Rref);
    let mut a = residues.to_vec();
    let Some(fw) = blocked_forward(field, rows, cols, &mut a, panel, &mut io) else {
        io.flush(true);
        return None;
    };
    let d = rows.min(cols);
    // Normalize the pivot rows (the forward pass keeps pivots raw so the
    // trailing updates need no scaling — normalization is done once).
    for (t, &inv) in fw.pivot_invs.iter().enumerate() {
        let base = t * cols;
        for j in t + 1..cols {
            a[base + j] = field.mul(a[base + j], inv);
        }
        a[base + t] = field.one();
        io.add((2 * (cols - t)) as u64);
    }
    // Back-pass, panels in reverse. Later panels have already cleared
    // their columns in every row above them, so each panel sees final
    // pivot rows below-right of it; only the free columns d..cols carry
    // arithmetic (for a full-rank square matrix there are none and the
    // back-pass is pure zeroing).
    let mut c1 = d;
    while c1 > 0 {
        let c0 = c1.saturating_sub(panel);
        // Within-panel: eliminate the upper-triangular block, bottom row
        // of the triangle first so every subtrahend row is final.
        for t in (c0..c1.saturating_sub(1)).rev() {
            for u in t + 1..c1 {
                let f = a[t * cols + u];
                a[t * cols + u] = 0;
                if field.is_zero(f) {
                    continue;
                }
                let (t_base, u_base) = (t * cols, u * cols);
                for j in d..cols {
                    a[t_base + j] = field.sub_mul(a[t_base + j], f, a[u_base + j]);
                }
                io.add((3 * (cols - d) + 2) as u64);
            }
        }
        // Rows above the panel: factors are the entries in the panel's
        // pivot columns; clearing them is the GEMM plus a zero fill.
        gemm_update(field, &mut a, cols, c0, c1 - c0, 0, c0, d, cols, &mut io);
        for r in 0..c0 {
            for u in c0..c1 {
                a[r * cols + u] = 0;
            }
        }
        io.add((2 * c0 * (c1 - c0)) as u64);
        c1 = c0;
    }
    io.flush(true);
    let det = if rows == cols {
        let v = field.from_mont(fw.det);
        Some(if fw.negate && v != 0 {
            field.modulus() - v
        } else {
            v
        })
    } else {
        None
    };
    let rref = Matrix::from_vec(
        rows,
        cols,
        a.into_iter().map(|v| field.from_mont(v)).collect(),
    );
    Some(ModEchelon {
        p: field.modulus(),
        rref,
        pivot_cols: (0..d).collect(),
        det,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gauss;
    use crate::matrix::int_matrix;
    use crate::ring::{PrimeField, Ring};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn field_ops_match_prime_field() {
        let p = 1_000_000_007u64;
        let mont = MontgomeryField::new(p);
        let naive = PrimeField::new(p);
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..500 {
            let a = rng.gen_range(0..p);
            let b = rng.gen_range(0..p);
            let (am, bm) = (mont.to_mont(a), mont.to_mont(b));
            assert_eq!(mont.from_mont(mont.mul(am, bm)), naive.mul(&a, &b));
            assert_eq!(mont.from_mont(mont.add(am, bm)), naive.add(&a, &b));
            assert_eq!(mont.from_mont(mont.sub(am, bm)), naive.sub(&a, &b));
            assert_eq!(mont.from_mont(am), a);
        }
        for a in 1..200u64 {
            let inv = mont.inv(mont.to_mont(a)).unwrap();
            assert_eq!(mont.from_mont(mont.mul(mont.to_mont(a), inv)), 1);
        }
        assert_eq!(mont.inv(0), None);
        assert_eq!(mont.inv(p), None, "lazy p is also zero");
    }

    #[test]
    fn largest_supported_prime() {
        // Largest prime below 2^62: stresses the lazy-window bound.
        let p = ccmx_bigint::prime::next_prime((1 << 61) + (1 << 60));
        assert!(p < MAX_MODULUS);
        let mont = MontgomeryField::new(p);
        let mut rng = StdRng::seed_from_u64(10);
        for _ in 0..200 {
            let a = rng.gen_range(0..p);
            let b = rng.gen_range(0..p);
            let expect = ((a as u128 * b as u128) % p as u128) as u64;
            assert_eq!(
                mont.from_mont(mont.mul(mont.to_mont(a), mont.to_mont(b))),
                expect
            );
        }
    }

    #[test]
    #[should_panic(expected = "odd")]
    fn rejects_even_modulus() {
        let _ = MontgomeryField::new(1 << 20);
    }

    #[test]
    #[should_panic(expected = "2^62")]
    fn rejects_oversized_modulus() {
        let _ = MontgomeryField::new(ccmx_bigint::prime::next_prime(1 << 62));
    }

    #[test]
    fn det_matches_generic_gauss() {
        let mut rng = StdRng::seed_from_u64(11);
        for p in [
            5u64,
            97,
            1_000_000_007,
            ccmx_bigint::prime::next_prime(1 << 61),
        ] {
            for n in 0..=6usize {
                let m = Matrix::from_fn(n, n, |_, _| Integer::from(rng.gen_range(-50i64..=50)));
                let naive = PrimeField::new(p);
                let reduced = m.map(|e| naive.reduce(e));
                let expect = gauss::det(&naive, &reduced);
                assert_eq!(det_mod(&m, p), expect, "det mismatch p={p} n={n}");
            }
        }
    }

    #[test]
    fn rank_and_rref_match_generic_gauss() {
        let mut rng = StdRng::seed_from_u64(12);
        for p in [5u64, 97, 1_000_000_007] {
            for _ in 0..20 {
                let rows = rng.gen_range(1..=6);
                let cols = rng.gen_range(1..=6);
                let m =
                    Matrix::from_fn(rows, cols, |_, _| Integer::from(rng.gen_range(-10i64..=10)));
                let naive = PrimeField::new(p);
                let reduced = m.map(|e| naive.reduce(e));
                let expect = gauss::echelon(&naive, &reduced);
                let got = echelon_mod(&m, p);
                assert_eq!(got.rank(), expect.rank(), "rank mismatch p={p}");
                assert_eq!(got.pivot_cols, expect.pivot_cols);
                assert_eq!(got.rref, expect.rref, "rref mismatch p={p}");
                assert_eq!(rank_mod(&m, p), expect.rank());
            }
        }
    }

    #[test]
    fn singular_and_empty_edge_cases() {
        let sing = int_matrix(&[&[1, 2], &[2, 4]]);
        assert_eq!(det_mod(&sing, 1_000_000_007), 0);
        assert_eq!(rank_mod(&sing, 1_000_000_007), 1);
        let empty = Matrix::from_fn(0, 0, |_, _| Integer::zero());
        assert_eq!(det_mod(&empty, 97), 1);
        assert_eq!(rank_mod(&empty, 97), 0);
        let e = echelon_mod(&empty, 97);
        assert_eq!(e.rank(), 0);
        assert_eq!(e.det, Some(1));
    }

    #[test]
    fn det_sign_through_row_swaps() {
        // [[0,1],[1,0]] has det -1 ≡ p-1.
        let m = int_matrix(&[&[0, 1], &[1, 0]]);
        for p in [5u64, 1_000_000_007] {
            assert_eq!(det_mod(&m, p), p - 1);
            assert_eq!(echelon_mod(&m, p).det, Some(p - 1));
        }
    }

    /// Random lazy residues (canonical values, converted) for a p-field.
    fn random_residues(field: &MontgomeryField, rows: usize, cols: usize, seed: u64) -> Vec<u64> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..rows * cols)
            .map(|_| field.to_mont(rng.gen_range(0..field.modulus())))
            .collect()
    }

    #[test]
    fn blocked_det_matches_scalar_across_panels() {
        let p = ccmx_bigint::prime::next_prime(1 << 59);
        let field = MontgomeryField::new(p);
        for n in [16usize, 17, 23, 32, 37] {
            let a = random_residues(&field, n, n, 100 + n as u64);
            let expect = det_from_residues_scalar(&field, n, &a);
            for panel in [1usize, 3, 4, 5, 8, 16] {
                assert_eq!(
                    det_from_residues_blocked(&field, n, &a, panel),
                    expect,
                    "n={n} panel={panel}"
                );
            }
            assert_eq!(det_from_residues(&field, n, &a), expect, "dispatch n={n}");
        }
    }

    #[test]
    fn blocked_kernels_small_prime_swaps_and_deficiency() {
        // p = 97 forces frequent zero entries, row swaps and genuine
        // rank deficiency at n = 20.
        let field = MontgomeryField::new(97);
        let mut rng = StdRng::seed_from_u64(7);
        for trial in 0..30 {
            let n = 16 + (trial % 5);
            let a: Vec<u64> = (0..n * n)
                .map(|_| field.to_mont(rng.gen_range(0..8) % 97))
                .collect();
            let expect = det_from_residues_scalar(&field, n, &a);
            for panel in [4usize, 8] {
                assert_eq!(
                    det_from_residues_blocked(&field, n, &a, panel),
                    expect,
                    "trial={trial} panel={panel}"
                );
            }
            let rank = rank_from_residues_scalar(&field, n, n, &a);
            match rank_from_residues_blocked(&field, n, n, &a, 8) {
                Some(r) => assert_eq!(r, rank, "full-rank certificate trial={trial}"),
                None => assert!(rank < n, "blocked bailed on full-rank input trial={trial}"),
            }
            assert_eq!(rank_from_residues(&field, n, n, &a), rank);
        }
    }

    #[test]
    fn blocked_echelon_matches_scalar() {
        let p = ccmx_bigint::prime::next_prime(1 << 59);
        let field = MontgomeryField::new(p);
        for (rows, cols) in [(16usize, 16usize), (17, 29), (29, 17), (32, 32), (20, 45)] {
            let a = random_residues(&field, rows, cols, 500 + (rows * cols) as u64);
            let expect = echelon_from_residues_scalar(&field, rows, cols, &a);
            for panel in [3usize, 4, 8, 16] {
                let got = echelon_from_residues_blocked(&field, rows, cols, &a, panel)
                    .expect("random wide/square matrices are full-rank whp");
                assert_eq!(got.rref, expect.rref, "{rows}x{cols} panel={panel}");
                assert_eq!(got.pivot_cols, expect.pivot_cols);
                assert_eq!(got.det, expect.det);
            }
            let via_dispatch = echelon_from_residues(&field, rows, cols, &a);
            assert_eq!(via_dispatch.rref, expect.rref);
        }
    }

    #[test]
    fn blocked_meter_reports_words() {
        let p = ccmx_bigint::prime::next_prime(1 << 59);
        let field = MontgomeryField::new(p);
        let n = 32;
        let a = random_residues(&field, n, n, 9001);
        let (w0, c0) = iomodel::kernel_stats(iomodel::Kernel::Det, true);
        let _ = det_from_residues_blocked(&field, n, &a, 8);
        let (w1, c1) = iomodel::kernel_stats(iomodel::Kernel::Det, true);
        assert_eq!(c1 - c0, 1, "one blocked det call");
        let moved = w1 - w0;
        assert!(moved > 0, "meter must move words");
        // Within a constant factor of the Hong–Kung scale n³/√M for the
        // panel width 8 working set (3·8² = 192 words).
        let bound = (n as f64).powi(3) / (192f64).sqrt();
        let ratio = moved as f64 / bound;
        assert!(
            ratio > 0.5 && ratio < 20.0,
            "words {moved} vs bound {bound}: ratio {ratio}"
        );
    }

    #[test]
    fn scalar_meter_reports_words_at_kernel_scale() {
        let p = ccmx_bigint::prime::next_prime(1 << 59);
        let field = MontgomeryField::new(p);
        let n = 24;
        let a = random_residues(&field, n, n, 42);
        let (w0, _) = iomodel::kernel_stats(iomodel::Kernel::Det, false);
        let _ = det_from_residues_scalar(&field, n, &a);
        let (w1, _) = iomodel::kernel_stats(iomodel::Kernel::Det, false);
        assert!(w1 - w0 >= (n * n) as u64, "scalar path meters its sweep");
        // Sub-threshold shapes stay unmetered.
        let small = random_residues(&field, 4, 4, 43);
        let (s0, _) = iomodel::kernel_stats(iomodel::Kernel::Det, false);
        let _ = det_from_residues_scalar(&field, 4, &small);
        let (s1, _) = iomodel::kernel_stats(iomodel::Kernel::Det, false);
        assert_eq!(s1, s0, "small shapes skip the meter");
    }
}
