//! Montgomery-form GF(p) arithmetic and elimination kernels.
//!
//! The naive `u64` prime field ([`crate::ring::PrimeField`]) pays a
//! `u128` division (`%`) for every multiplication — the dominant cost of
//! the modular elimination hot loops behind the CRT determinant and the
//! certified rank engine. Montgomery representation replaces that
//! division with two multiplies and a shift (REDC), and for primes below
//! `2^62` the reduction can additionally be *delayed*: residues live in
//! the lazy window `[0, 2p)`, REDC's final conditional subtraction is
//! skipped, and the elimination inner loop `t ← t − f·s` costs one REDC
//! plus one add and one conditional subtract — no divisions anywhere.
//!
//! Layout:
//!
//! * [`MontgomeryField`] — the field object (`p` odd, `3 ≤ p < 2^62`)
//!   with conversion, lazy arithmetic, and inversion;
//! * [`echelon_mod`] / [`det_mod`] / [`rank_mod`] — specialized dense
//!   kernels over an [`Integer`] matrix reduced mod `p`, the substrate of
//!   [`crate::crt`]'s certified exact computations.
//!
//! Window arithmetic (all for `p < 2^62`, `R = 2^64`):
//! inputs `a, b < 2p` give `a·b < 4p² < p·R`, so `REDC(a·b) < a·b/R + p
//! < 2p` — the lazy window is closed under multiplication without the
//! final subtraction, and `x + (2p − y) < 4p < 2^64` never overflows.

use ccmx_bigint::modular::{inv_mod_u64, reduce_integer_u64};
use ccmx_bigint::Integer;

use crate::matrix::Matrix;

/// Largest modulus the lazy-reduction kernels accept (exclusive).
pub const MAX_MODULUS: u64 = 1 << 62;

/// GF(p) in Montgomery form for an odd prime `3 ≤ p < 2^62`.
///
/// Elements are `u64` residues in the *lazy window* `[0, 2p)`, stored as
/// `a·R mod p` (up to one extra `p`), `R = 2^64`. Use [`to_mont`] /
/// [`from_mont`] at the boundary; everything in between stays lazy.
///
/// [`to_mont`]: MontgomeryField::to_mont
/// [`from_mont`]: MontgomeryField::from_mont
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MontgomeryField {
    p: u64,
    twop: u64,
    /// `-p^{-1} mod 2^64` (Newton iteration).
    neg_inv: u64,
    /// `R² mod p`, the to-Montgomery multiplier.
    r2: u64,
    /// `1` in Montgomery form.
    one: u64,
}

impl MontgomeryField {
    /// Construct the field. Panics unless `p` is odd and `3 ≤ p < 2^62`.
    /// (Primality is the caller's responsibility, exactly as for
    /// [`crate::ring::PrimeField`].)
    pub fn new(p: u64) -> Self {
        assert!(p >= 3 && p % 2 == 1, "Montgomery modulus must be odd >= 3");
        assert!(p < MAX_MODULUS, "Montgomery modulus must be < 2^62");
        // Newton–Hensel: x ← x(2 − p·x) doubles correct low bits.
        let mut inv = p; // correct to 3 bits (p odd)
        for _ in 0..5 {
            inv = inv.wrapping_mul(2u64.wrapping_sub(p.wrapping_mul(inv)));
        }
        debug_assert_eq!(p.wrapping_mul(inv), 1);
        let neg_inv = inv.wrapping_neg();
        // R mod p, then square it with double-and-add to get R² mod p.
        let r = (u64::MAX % p) + 1; // 2^64 mod p (p > 1 so no overflow to 0 issues)
        let r_mod = if r == p { 0 } else { r };
        let r2 = ((r_mod as u128 * r_mod as u128) % p as u128) as u64;
        let mut field = MontgomeryField {
            p,
            twop: 2 * p,
            neg_inv,
            r2,
            one: 0,
        };
        field.one = field.to_mont(1);
        field
    }

    /// The modulus.
    #[inline]
    pub fn modulus(&self) -> u64 {
        self.p
    }

    /// `1` in Montgomery form.
    #[inline]
    pub fn one(&self) -> u64 {
        self.one
    }

    /// REDC: `t·R^{-1} mod p`, lazily (result `< 2p` for `t < 4p²`).
    #[inline(always)]
    fn redc(&self, t: u128) -> u64 {
        let m = (t as u64).wrapping_mul(self.neg_inv);
        let u = (t + m as u128 * self.p as u128) >> 64;
        u as u64
    }

    /// Lazy product of two lazy residues.
    #[inline(always)]
    pub fn mul(&self, a: u64, b: u64) -> u64 {
        debug_assert!(a < self.twop && b < self.twop);
        self.redc(a as u128 * b as u128)
    }

    /// Lazy sum.
    #[inline(always)]
    pub fn add(&self, a: u64, b: u64) -> u64 {
        debug_assert!(a < self.twop && b < self.twop);
        let s = a + b; // < 4p < 2^64
        if s >= self.twop {
            s - self.twop
        } else {
            s
        }
    }

    /// Lazy difference.
    #[inline(always)]
    pub fn sub(&self, a: u64, b: u64) -> u64 {
        debug_assert!(a < self.twop && b < self.twop);
        let s = a + self.twop - b; // < 4p
        if s >= self.twop {
            s - self.twop
        } else {
            s
        }
    }

    /// The delayed-reduction elimination kernel: `t − f·s` in one REDC.
    #[inline(always)]
    pub fn sub_mul(&self, t: u64, f: u64, s: u64) -> u64 {
        self.sub(t, self.mul(f, s))
    }

    /// Is the lazy residue ≡ 0 (mod p)?
    #[inline(always)]
    pub fn is_zero(&self, a: u64) -> bool {
        a == 0 || a == self.p
    }

    /// Canonical residue `a < p` into Montgomery (lazy) form.
    #[inline]
    pub fn to_mont(&self, a: u64) -> u64 {
        debug_assert!(a < self.p);
        self.redc(a as u128 * self.r2 as u128)
    }

    /// Lazy Montgomery residue back to canonical `[0, p)`.
    #[inline]
    pub fn from_mont(&self, a: u64) -> u64 {
        debug_assert!(a < self.twop);
        let u = self.redc(a as u128); // < p + 1, i.e. <= p
        if u >= self.p {
            u - self.p
        } else {
            u
        }
    }

    /// Multiplicative inverse of a nonzero lazy residue (Montgomery
    /// form), via extended Euclid on the canonical value.
    pub fn inv(&self, a: u64) -> Option<u64> {
        let canonical = self.from_mont(a);
        if canonical == 0 {
            return None;
        }
        inv_mod_u64(canonical, self.p).map(|i| self.to_mont(i))
    }

    /// Reduce an [`Integer`] into the field (Montgomery form).
    pub fn reduce(&self, a: &Integer) -> u64 {
        self.to_mont(reduce_integer_u64(a, self.p))
    }

    /// Radix powers for [`Self::mont_from_limbs`]: `powers[l] =
    /// 2^{64·l}·R² mod p` (canonical), so that `REDC(limb · powers[l])`
    /// is the Montgomery form of `limb · 2^{64·l}`.
    pub fn limb_radix_powers(&self, count: usize) -> Vec<u64> {
        let mut powers = Vec::with_capacity(count);
        let mut cur = self.r2;
        for _ in 0..count {
            powers.push(cur);
            cur = (((cur as u128) << 64) % self.p as u128) as u64;
        }
        powers
    }

    /// Reduce a little-endian limb magnitude (optionally negated) into
    /// the field in one pass: one REDC per nonzero limb, **no bigint
    /// division**. `powers` must come from [`Self::limb_radix_powers`]
    /// with `powers.len() >= limbs.len()`.
    ///
    /// Window safety: `limb < 2^64` and `powers[l] < p` give `limb ·
    /// powers[l] < p·R`, so `REDC < 2p` — a lazy residue, closed under
    /// [`Self::add`].
    pub fn mont_from_limbs(&self, limbs: &[u64], negative: bool, powers: &[u64]) -> u64 {
        debug_assert!(powers.len() >= limbs.len(), "radix powers too short");
        let mut acc = 0u64;
        for (l, &limb) in limbs.iter().enumerate() {
            if limb != 0 {
                acc = self.add(acc, self.redc(limb as u128 * powers[l] as u128));
            }
        }
        if negative {
            acc = self.sub(0, acc);
        }
        acc
    }
}

/// Result of one modular elimination sweep: everything the CRT layer
/// needs, with residues back in **canonical** (non-Montgomery) form.
#[derive(Clone, Debug)]
pub struct ModEchelon {
    /// The prime.
    pub p: u64,
    /// Reduced row echelon form mod `p`, canonical residues.
    pub rref: Matrix<u64>,
    /// Pivot column of each pivot row, in row order.
    pub pivot_cols: Vec<usize>,
    /// `det mod p` (canonical) if the input was square, else `None`.
    pub det: Option<u64>,
}

impl ModEchelon {
    /// The rank mod `p`.
    pub fn rank(&self) -> usize {
        self.pivot_cols.len()
    }
}

/// Reduce an integer matrix mod `p` into lazy Montgomery residues.
fn reduce_matrix_mont(m: &Matrix<Integer>, field: &MontgomeryField) -> Vec<u64> {
    m.data().iter().map(|e| field.reduce(e)).collect()
}

/// Reduced row echelon form of an integer matrix mod `p`, through the
/// delayed-reduction Montgomery kernel. Bit-identical results to the
/// generic [`crate::gauss::echelon`] over [`crate::ring::PrimeField`],
/// several times faster.
pub fn echelon_mod(m: &Matrix<Integer>, p: u64) -> ModEchelon {
    let field = MontgomeryField::new(p);
    let a = reduce_matrix_mont(m, &field);
    echelon_from_residues(&field, m.rows(), m.cols(), &a)
}

/// [`echelon_mod`] on a matrix already reduced into lazy Montgomery
/// residues (row-major, `rows × cols`) — the fan-out target of the
/// one-pass multi-prime reducer in [`crate::engine`], which reduces the
/// bigint matrix once instead of once per prime.
pub fn echelon_from_residues(
    field: &MontgomeryField,
    rows: usize,
    cols: usize,
    residues: &[u64],
) -> ModEchelon {
    assert_eq!(residues.len(), rows * cols, "residue buffer shape mismatch");
    let mut a = residues.to_vec();
    let idx = |r: usize, c: usize| r * cols + c;

    let mut pivot_cols = Vec::new();
    let mut det_sign_flip = false;
    let mut det = if rows == cols {
        Some(field.one())
    } else {
        None
    };
    let mut pivot_row = 0usize;
    for col in 0..cols {
        let Some(p_row) = (pivot_row..rows).find(|&r| !field.is_zero(a[idx(r, col)])) else {
            continue;
        };
        if p_row != pivot_row {
            for j in col..cols {
                a.swap(idx(p_row, j), idx(pivot_row, j));
            }
            det_sign_flip = !det_sign_flip;
        }
        let pivot = a[idx(pivot_row, col)];
        if let Some(d) = det {
            det = Some(field.mul(d, pivot));
        }
        // Scale the pivot row so the pivot becomes 1.
        let inv = field.inv(pivot).expect("nonzero pivot in a prime field");
        for j in col..cols {
            a[idx(pivot_row, j)] = field.mul(a[idx(pivot_row, j)], inv);
        }
        // Eliminate the column everywhere else (full reduction). The
        // inner loop is the delayed-reduction hot path.
        for r in 0..rows {
            if r == pivot_row || field.is_zero(a[idx(r, col)]) {
                continue;
            }
            let factor = a[idx(r, col)];
            let (pr_base, r_base) = (idx(pivot_row, 0), idx(r, 0));
            for j in col..cols {
                a[r_base + j] = field.sub_mul(a[r_base + j], factor, a[pr_base + j]);
            }
        }
        pivot_cols.push(col);
        pivot_row += 1;
        if pivot_row == rows {
            break;
        }
    }
    if rows == cols && pivot_cols.len() < rows {
        det = Some(0);
    }
    let det = det.map(|d| {
        let v = field.from_mont(d);
        if det_sign_flip && v != 0 {
            field.modulus() - v
        } else {
            v
        }
    });
    let rref = Matrix::from_vec(
        rows,
        cols,
        a.into_iter().map(|v| field.from_mont(v)).collect(),
    );
    ModEchelon {
        p: field.modulus(),
        rref,
        pivot_cols,
        det,
    }
}

/// Determinant of a square integer matrix mod `p` (forward elimination
/// only — cheaper than [`echelon_mod`] when the RREF is not needed).
pub fn det_mod(m: &Matrix<Integer>, p: u64) -> u64 {
    assert!(m.is_square(), "determinant of non-square matrix");
    let field = MontgomeryField::new(p);
    let a = reduce_matrix_mont(m, &field);
    det_from_residues(&field, m.rows(), &a)
}

/// [`det_mod`] on pre-reduced lazy Montgomery residues (`n × n`,
/// row-major).
pub fn det_from_residues(field: &MontgomeryField, n: usize, residues: &[u64]) -> u64 {
    assert_eq!(residues.len(), n * n, "residue buffer shape mismatch");
    if n == 0 {
        return 1 % field.modulus();
    }
    let mut a = residues.to_vec();
    let idx = |r: usize, c: usize| r * n + c;
    let mut det = field.one();
    let mut negate = false;
    for col in 0..n {
        let Some(p_row) = (col..n).find(|&r| !field.is_zero(a[idx(r, col)])) else {
            return 0;
        };
        if p_row != col {
            for j in col..n {
                a.swap(idx(p_row, j), idx(col, j));
            }
            negate = !negate;
        }
        let pivot = a[idx(col, col)];
        det = field.mul(det, pivot);
        let inv = field.inv(pivot).expect("nonzero pivot in a prime field");
        for r in col + 1..n {
            if field.is_zero(a[idx(r, col)]) {
                continue;
            }
            let factor = field.mul(a[idx(r, col)], inv);
            let (c_base, r_base) = (idx(col, 0), idx(r, 0));
            for j in col..n {
                a[r_base + j] = field.sub_mul(a[r_base + j], factor, a[c_base + j]);
            }
        }
    }
    let v = field.from_mont(det);
    if negate && v != 0 {
        field.modulus() - v
    } else {
        v
    }
}

/// Rank of an integer matrix mod `p` (forward elimination only).
pub fn rank_mod(m: &Matrix<Integer>, p: u64) -> usize {
    let field = MontgomeryField::new(p);
    let a = reduce_matrix_mont(m, &field);
    rank_from_residues(&field, m.rows(), m.cols(), &a)
}

/// [`rank_mod`] on pre-reduced lazy Montgomery residues (`rows × cols`,
/// row-major).
pub fn rank_from_residues(
    field: &MontgomeryField,
    rows: usize,
    cols: usize,
    residues: &[u64],
) -> usize {
    assert_eq!(residues.len(), rows * cols, "residue buffer shape mismatch");
    if rows == 0 || cols == 0 {
        return 0;
    }
    let mut a = residues.to_vec();
    let idx = |r: usize, c: usize| r * cols + c;
    let mut rank = 0usize;
    for col in 0..cols {
        let Some(p_row) = (rank..rows).find(|&r| !field.is_zero(a[idx(r, col)])) else {
            continue;
        };
        if p_row != rank {
            for j in col..cols {
                a.swap(idx(p_row, j), idx(rank, j));
            }
        }
        let inv = field
            .inv(a[idx(rank, col)])
            .expect("nonzero pivot in a prime field");
        for r in rank + 1..rows {
            if field.is_zero(a[idx(r, col)]) {
                continue;
            }
            let factor = field.mul(a[idx(r, col)], inv);
            let (k_base, r_base) = (idx(rank, 0), idx(r, 0));
            for j in col..cols {
                a[r_base + j] = field.sub_mul(a[r_base + j], factor, a[k_base + j]);
            }
        }
        rank += 1;
        if rank == rows {
            break;
        }
    }
    rank
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gauss;
    use crate::matrix::int_matrix;
    use crate::ring::{PrimeField, Ring};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn field_ops_match_prime_field() {
        let p = 1_000_000_007u64;
        let mont = MontgomeryField::new(p);
        let naive = PrimeField::new(p);
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..500 {
            let a = rng.gen_range(0..p);
            let b = rng.gen_range(0..p);
            let (am, bm) = (mont.to_mont(a), mont.to_mont(b));
            assert_eq!(mont.from_mont(mont.mul(am, bm)), naive.mul(&a, &b));
            assert_eq!(mont.from_mont(mont.add(am, bm)), naive.add(&a, &b));
            assert_eq!(mont.from_mont(mont.sub(am, bm)), naive.sub(&a, &b));
            assert_eq!(mont.from_mont(am), a);
        }
        for a in 1..200u64 {
            let inv = mont.inv(mont.to_mont(a)).unwrap();
            assert_eq!(mont.from_mont(mont.mul(mont.to_mont(a), inv)), 1);
        }
        assert_eq!(mont.inv(0), None);
        assert_eq!(mont.inv(p), None, "lazy p is also zero");
    }

    #[test]
    fn largest_supported_prime() {
        // Largest prime below 2^62: stresses the lazy-window bound.
        let p = ccmx_bigint::prime::next_prime((1 << 61) + (1 << 60));
        assert!(p < MAX_MODULUS);
        let mont = MontgomeryField::new(p);
        let mut rng = StdRng::seed_from_u64(10);
        for _ in 0..200 {
            let a = rng.gen_range(0..p);
            let b = rng.gen_range(0..p);
            let expect = ((a as u128 * b as u128) % p as u128) as u64;
            assert_eq!(
                mont.from_mont(mont.mul(mont.to_mont(a), mont.to_mont(b))),
                expect
            );
        }
    }

    #[test]
    #[should_panic(expected = "odd")]
    fn rejects_even_modulus() {
        let _ = MontgomeryField::new(1 << 20);
    }

    #[test]
    #[should_panic(expected = "2^62")]
    fn rejects_oversized_modulus() {
        let _ = MontgomeryField::new(ccmx_bigint::prime::next_prime(1 << 62));
    }

    #[test]
    fn det_matches_generic_gauss() {
        let mut rng = StdRng::seed_from_u64(11);
        for p in [
            5u64,
            97,
            1_000_000_007,
            ccmx_bigint::prime::next_prime(1 << 61),
        ] {
            for n in 0..=6usize {
                let m = Matrix::from_fn(n, n, |_, _| Integer::from(rng.gen_range(-50i64..=50)));
                let naive = PrimeField::new(p);
                let reduced = m.map(|e| naive.reduce(e));
                let expect = gauss::det(&naive, &reduced);
                assert_eq!(det_mod(&m, p), expect, "det mismatch p={p} n={n}");
            }
        }
    }

    #[test]
    fn rank_and_rref_match_generic_gauss() {
        let mut rng = StdRng::seed_from_u64(12);
        for p in [5u64, 97, 1_000_000_007] {
            for _ in 0..20 {
                let rows = rng.gen_range(1..=6);
                let cols = rng.gen_range(1..=6);
                let m =
                    Matrix::from_fn(rows, cols, |_, _| Integer::from(rng.gen_range(-10i64..=10)));
                let naive = PrimeField::new(p);
                let reduced = m.map(|e| naive.reduce(e));
                let expect = gauss::echelon(&naive, &reduced);
                let got = echelon_mod(&m, p);
                assert_eq!(got.rank(), expect.rank(), "rank mismatch p={p}");
                assert_eq!(got.pivot_cols, expect.pivot_cols);
                assert_eq!(got.rref, expect.rref, "rref mismatch p={p}");
                assert_eq!(rank_mod(&m, p), expect.rank());
            }
        }
    }

    #[test]
    fn singular_and_empty_edge_cases() {
        let sing = int_matrix(&[&[1, 2], &[2, 4]]);
        assert_eq!(det_mod(&sing, 1_000_000_007), 0);
        assert_eq!(rank_mod(&sing, 1_000_000_007), 1);
        let empty = Matrix::from_fn(0, 0, |_, _| Integer::zero());
        assert_eq!(det_mod(&empty, 97), 1);
        assert_eq!(rank_mod(&empty, 97), 0);
        let e = echelon_mod(&empty, 97);
        assert_eq!(e.rank(), 0);
        assert_eq!(e.det, Some(1));
    }

    #[test]
    fn det_sign_through_row_swaps() {
        // [[0,1],[1,0]] has det -1 ≡ p-1.
        let m = int_matrix(&[&[0, 1], &[1, 0]]);
        for p in [5u64, 1_000_000_007] {
            assert_eq!(det_mod(&m, p), p - 1);
            assert_eq!(echelon_mod(&m, p).det, Some(p - 1));
        }
    }
}
