//! SVD nonzero structure (Corollary 1.2(d)).
//!
//! Exact singular values of an integer matrix live in algebraic extensions
//! of ℚ, but the paper's bound concerns the **nonzero structure** of the
//! decomposition — and that structure is determined by the rank: `M` has
//! exactly `rank(M)` nonzero singular values, `Σ` is `diag(σ_1..σ_r, 0..)`,
//! and the row/column spaces split accordingly. Everything here is
//! computable exactly over ℚ:
//!
//! * `rank(M) = rank(MᵀM)` (the Gram matrix has the same kernel),
//! * the characteristic polynomial of `MᵀM` (computed exactly by the
//!   Faddeev–LeVerrier recurrence) factors as `λ^{n-r} · g(λ)` with
//!   `g(0) ≠ 0`, giving the σ² spectrum's nonzero part as an exact
//!   polynomial.

use ccmx_bigint::{Integer, Rational};

use crate::gauss;
use crate::matrix::Matrix;
use crate::ring::{IntegerRing, RationalField};

/// The exactly-computable part of an SVD: rank, Σ's nonzero structure, and
/// the monic polynomial whose roots are the nonzero squared singular
/// values.
#[derive(Clone, Debug, PartialEq)]
pub struct SvdStructure {
    /// Number of nonzero singular values (= rank of the input).
    pub rank: usize,
    /// Shape of the input (`rows`, `cols`); Σ is `rows × cols` with
    /// `rank` nonzero diagonal entries.
    pub shape: (usize, usize),
    /// Coefficients (low to high, length `rank + 1`) of the monic integer
    /// polynomial whose roots are exactly the nonzero σ²'s.
    pub sigma_squared_poly: Vec<Integer>,
}

impl SvdStructure {
    /// The boolean mask of Σ.
    pub fn sigma_mask(&self) -> Matrix<bool> {
        Matrix::from_fn(self.shape.0, self.shape.1, |i, j| i == j && i < self.rank)
    }

    /// Product of the nonzero σ² values — equals `det(MᵀM)` restricted to
    /// the nonzero spectrum; for square nonsingular `M` this is `det(M)²`.
    pub fn sigma_squared_product(&self) -> Rational {
        // For monic p(λ) = λ^r + ... + c_0, the product of roots is
        // (-1)^r c_0.
        let c0 = Rational::from(self.sigma_squared_poly[0].clone());
        if self.rank.is_multiple_of(2) {
            c0
        } else {
            -c0
        }
    }
}

/// Characteristic polynomial `det(λI - A)` of a square integer matrix,
/// coefficients low-to-high, via the Faddeev–LeVerrier recurrence
/// (exact, division only by integers `1..=n`).
pub fn char_poly(a: &Matrix<Integer>) -> Vec<Integer> {
    assert!(a.is_square());
    let n = a.rows();
    let zz = IntegerRing;
    // c[n] = 1; M_0 = 0; iterate M_k = A M_{k-1} + c_{n-k+1} I,
    // c_{n-k} = -tr(A M_k) / k.
    let mut coeffs = vec![Integer::zero(); n + 1];
    coeffs[n] = Integer::one();
    let mut m = Matrix::zero(&zz, n, n);
    for k in 1..=n {
        // M_k = A*M_{k-1} + c_{n-k+1} * I
        let am = a.mul(&zz, &m);
        m = Matrix::from_fn(n, n, |i, j| {
            if i == j {
                &am[(i, j)] + &coeffs[n - k + 1]
            } else {
                am[(i, j)].clone()
            }
        });
        let prod = a.mul(&zz, &m);
        let mut tr = Integer::zero();
        for i in 0..n {
            tr += &prod[(i, i)];
        }
        let (q, r) = tr.div_rem(&Integer::from(k as i64));
        debug_assert!(r.is_zero(), "Faddeev–LeVerrier division must be exact");
        coeffs[n - k] = -q;
    }
    coeffs
}

/// The number of **distinct** nonzero singular values of `m`, computed
/// exactly: Sturm's theorem counts the distinct positive roots of the
/// σ²-polynomial. No floating point, no eigensolver.
pub fn distinct_sigma_count(s: &SvdStructure) -> usize {
    if s.rank == 0 {
        return 0;
    }
    let p = crate::poly::Poly::from_integers(&s.sigma_squared_poly);
    let bound = p.cauchy_root_bound();
    crate::poly::count_real_roots_in(&p, &Rational::zero(), &bound)
}

/// Compute the exact SVD structure of an integer matrix.
pub fn svd_structure(m: &Matrix<Integer>) -> SvdStructure {
    let zz = IntegerRing;
    let gram = m.transpose().mul(&zz, m);
    let f = RationalField;
    let rank = gauss::rank(&f, &m.map(|e| Rational::from(e.clone())));
    let cp = char_poly(&gram); // length cols+1, low-to-high
                               // char poly of Gram = λ^{cols - rank} * g(λ): strip the zero roots.
    let zero_roots = m.cols() - rank;
    debug_assert!(
        cp.iter().take(zero_roots).all(|c| c.is_zero()),
        "Gram kernel dimension mismatch"
    );
    // det(λI - G) is monic with roots = eigenvalues of G = σ² values.
    let sigma_squared_poly: Vec<Integer> = cp[zero_roots..].to_vec();
    SvdStructure {
        rank,
        shape: (m.rows(), m.cols()),
        sigma_squared_poly,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bareiss;
    use crate::matrix::int_matrix;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn char_poly_known_cases() {
        // A = [[2,0],[0,3]]: det(λI − A) = (λ−2)(λ−3) = λ² − 5λ + 6.
        let a = int_matrix(&[&[2, 0], &[0, 3]]);
        assert_eq!(
            char_poly(&a),
            vec![
                Integer::from(6i64),
                Integer::from(-5i64),
                Integer::from(1i64)
            ]
        );
        // Nilpotent: [[0,1],[0,0]] → λ².
        let nil = int_matrix(&[&[0, 1], &[0, 0]]);
        assert_eq!(
            char_poly(&nil),
            vec![Integer::zero(), Integer::zero(), Integer::one()]
        );
    }

    #[test]
    fn char_poly_constant_term_is_det() {
        let mut rng = StdRng::seed_from_u64(31);
        for n in 1..=5usize {
            let a = Matrix::from_fn(n, n, |_, _| Integer::from(rng.gen_range(-4i64..=4)));
            let cp = char_poly(&a);
            // det(λI − A) at λ=0 is det(−A) = (−1)^n det(A); constant term c_0.
            let det = bareiss::det(&a);
            let expect = if n % 2 == 0 { det } else { -det };
            assert_eq!(cp[0], expect, "n={n}");
            assert_eq!(cp[n], Integer::one());
            // λ^{n-1} coefficient is -trace.
            let mut tr = Integer::zero();
            for i in 0..n {
                tr += &a[(i, i)];
            }
            assert_eq!(cp[n - 1], -tr);
        }
    }

    #[test]
    fn structure_of_diagonal_matrix() {
        let m = int_matrix(&[&[3, 0], &[0, 0]]);
        let s = svd_structure(&m);
        assert_eq!(s.rank, 1);
        assert_eq!(s.shape, (2, 2));
        // nonzero σ² = 9: polynomial λ − 9.
        assert_eq!(
            s.sigma_squared_poly,
            vec![Integer::from(-9i64), Integer::one()]
        );
        assert_eq!(
            s.sigma_squared_product(),
            Rational::from(Integer::from(9i64))
        );
        let mask = s.sigma_mask();
        assert!(mask[(0, 0)]);
        assert!(!mask[(1, 1)]);
    }

    #[test]
    fn rank_equals_nonzero_singular_values_randomized() {
        let mut rng = StdRng::seed_from_u64(8);
        for _ in 0..20 {
            let rows = rng.gen_range(1..=4);
            let cols = rng.gen_range(1..=4);
            let m = Matrix::from_fn(rows, cols, |_, _| Integer::from(rng.gen_range(-3i64..=3)));
            let s = svd_structure(&m);
            assert_eq!(s.rank, bareiss::rank(&m));
            assert_eq!(s.sigma_squared_poly.len(), s.rank + 1);
            // g(0) != 0: no zero roots remain.
            if s.rank > 0 {
                assert!(!s.sigma_squared_poly[0].is_zero());
            }
        }
    }

    #[test]
    fn square_nonsingular_product_is_det_squared() {
        let m = int_matrix(&[&[1, 2], &[3, 5]]); // det -1
        let s = svd_structure(&m);
        assert_eq!(s.rank, 2);
        assert_eq!(
            s.sigma_squared_product(),
            Rational::from(Integer::from(1i64))
        );
        let m2 = int_matrix(&[&[2, 0], &[1, 3]]); // det 6
        let s2 = svd_structure(&m2);
        assert_eq!(
            s2.sigma_squared_product(),
            Rational::from(Integer::from(36i64))
        );
    }

    #[test]
    fn distinct_sigma_counts_exactly() {
        // Identity: one distinct singular value (1, with multiplicity n).
        let i3 = int_matrix(&[&[1, 0, 0], &[0, 1, 0], &[0, 0, 1]]);
        let s = svd_structure(&i3);
        assert_eq!(s.rank, 3);
        assert_eq!(distinct_sigma_count(&s), 1);

        // diag(1, 2, 3): three distinct singular values.
        let d = int_matrix(&[&[1, 0, 0], &[0, 2, 0], &[0, 0, 3]]);
        assert_eq!(distinct_sigma_count(&svd_structure(&d)), 3);

        // diag(2, 2, 5): two distinct.
        let d2 = int_matrix(&[&[2, 0, 0], &[0, 2, 0], &[0, 0, 5]]);
        assert_eq!(distinct_sigma_count(&svd_structure(&d2)), 2);

        // Zero matrix: none.
        let z = int_matrix(&[&[0, 0], &[0, 0]]);
        assert_eq!(distinct_sigma_count(&svd_structure(&z)), 0);
    }

    #[test]
    fn distinct_sigma_bounded_by_rank_randomized() {
        let mut rng = StdRng::seed_from_u64(77);
        for _ in 0..15 {
            let rows = rng.gen_range(1..=4);
            let cols = rng.gen_range(1..=4);
            let m = Matrix::from_fn(rows, cols, |_, _| Integer::from(rng.gen_range(-3i64..=3)));
            let s = svd_structure(&m);
            let distinct = distinct_sigma_count(&s);
            assert!(distinct <= s.rank, "more distinct σ than rank on {m:?}");
            if s.rank > 0 {
                assert!(distinct >= 1);
            }
        }
    }

    #[test]
    fn singular_matrix_has_fewer_sigmas() {
        let m = int_matrix(&[&[1, 2, 3], &[2, 4, 6], &[0, 0, 1]]);
        let s = svd_structure(&m);
        assert_eq!(s.rank, 2);
        let mask = s.sigma_mask();
        assert_eq!((0..3).filter(|&i| mask[(i, i)]).count(), 2);
    }
}
