//! The kernel-engine layer: batched residue reduction and incremental
//! singularity evaluation.
//!
//! Two amortization engines sit here, both feeding the enumeration
//! stack:
//!
//! * [`ResiduePlan`] — a one-pass multi-prime reducer. The CRT pipeline
//!   used to call [`MontgomeryField::reduce`] (a full bigint division)
//!   per entry *per prime*; the plan instead walks the bigint matrix
//!   once and folds each entry's limbs against precomputed per-prime
//!   radix powers (one REDC per limb per prime, no bigint division), or
//!   descends a remainder tree for large prime plans. The residue
//!   matrices then fan out to the `*_from_residues` elimination kernels
//!   in [`crate::montgomery`].
//! * [`SingularityEngine`] — exact integer singularity under
//!   single-entry updates. A Gray-coded enumeration flips one input bit
//!   per step, which perturbs one matrix entry by `±2^bit`; the engine
//!   maintains, per CRT prime, the inverse of a base matrix and a small
//!   set of pending rank-one updates, deciding each step's singularity
//!   from an `m × m` capacitance determinant (Sherman–Morrison for
//!   `m = 1`) and reabsorbing updates into the inverse by the Woodbury
//!   identity — `O(n²)` per step instead of an `O(n³)` fresh
//!   elimination. The prime plan's product exceeds the Hadamard bound,
//!   so "singular mod every plan prime" is *exactly* "singular over ℤ".

use ccmx_bigint::{Integer, Natural};

use crate::matrix::Matrix;
use crate::modular::crt_prime_plan;
use crate::montgomery::MontgomeryField;
use crate::parallel;
use crate::pool;

// ----------------------------------------------------------------------
// One-pass multi-prime residue reduction
// ----------------------------------------------------------------------

/// Use a remainder tree instead of direct limb folds once a plan has at
/// least this many primes…
const TREE_MIN_PRIMES: usize = 8;
/// …and the entries are at least this many times wider than the prime
/// product. (With schoolbook bigint arithmetic the tree is a
/// constant-factor trade, not an asymptotic one; the gate keeps it on
/// the shapes where the single root division dominates both paths.)
const TREE_MIN_WIDTH_RATIO: usize = 2;

/// Entries per parallel-reduction task: small enough that prime × chunk
/// cells outnumber the workers (the cursor balances uneven bigint entry
/// widths), large enough that one cell amortizes its output allocation.
const PAR_ENTRY_CHUNK: usize = 256;

/// A reusable multi-prime reduction plan: the Montgomery fields of a
/// CRT prime set plus the precomputed per-prime radix powers (and, for
/// large plans, the prime product tree). Reducing a matrix through the
/// plan makes **one pass** over the bigint entries regardless of how
/// many primes the plan holds.
pub struct ResiduePlan {
    fields: Vec<MontgomeryField>,
    /// `powers[k][l] = 2^{64l}·R² mod p_k`, grown on demand to the
    /// widest entry seen (scratch state reused across reductions).
    powers: Vec<Vec<u64>>,
    /// Product tree over the primes: `levels[0]` = the primes
    /// themselves, each next level pairwise products, last = the full
    /// product. Built lazily on the first reduction that wants it.
    tree: Option<Vec<Vec<Natural>>>,
}

impl ResiduePlan {
    /// Build a plan over `primes` (each must satisfy the
    /// [`MontgomeryField`] constraints).
    pub fn new(primes: &[u64]) -> Self {
        let fields: Vec<MontgomeryField> =
            primes.iter().map(|&p| MontgomeryField::new(p)).collect();
        let powers = vec![Vec::new(); fields.len()];
        ResiduePlan {
            fields,
            powers,
            tree: None,
        }
    }

    /// The fields, in plan order.
    pub fn fields(&self) -> &[MontgomeryField] {
        &self.fields
    }

    fn ensure_powers(&mut self, limbs: usize) {
        if self.powers.first().is_some_and(|p| p.len() >= limbs) {
            return;
        }
        for (field, pw) in self.fields.iter().zip(self.powers.iter_mut()) {
            if pw.len() < limbs {
                *pw = field.limb_radix_powers(limbs);
            }
        }
    }

    fn ensure_tree(&mut self) -> &Vec<Vec<Natural>> {
        if self.tree.is_none() {
            let mut levels = vec![self
                .fields
                .iter()
                .map(|f| Natural::from(f.modulus()))
                .collect::<Vec<_>>()];
            while levels.last().unwrap().len() > 1 {
                let prev = levels.last().unwrap();
                let next: Vec<Natural> = prev
                    .chunks(2)
                    .map(|pair| {
                        if pair.len() == 2 {
                            &pair[0] * &pair[1]
                        } else {
                            pair[0].clone()
                        }
                    })
                    .collect();
                levels.push(next);
            }
            self.tree = Some(levels);
        }
        self.tree.as_ref().unwrap()
    }

    /// Reduce every entry of `m` into lazy Montgomery residues for every
    /// plan prime, in one pass: `out[k][i]` is entry `i` (row-major) mod
    /// prime `k`.
    pub fn reduce_matrix(&mut self, m: &Matrix<Integer>) -> Vec<Vec<u64>> {
        self.reduce_entries(m.data())
    }

    /// [`Self::reduce_matrix`] on a flat entry slice.
    pub fn reduce_entries(&mut self, entries: &[Integer]) -> Vec<Vec<u64>> {
        let max_limbs = entries
            .iter()
            .map(|e| e.magnitude().limbs().len())
            .max()
            .unwrap_or(0);
        self.ensure_powers(max_limbs.max(1));
        let nprimes = self.fields.len();
        let mut out: Vec<Vec<u64>> = (0..nprimes).map(|_| vec![0u64; entries.len()]).collect();
        // ~61 bits of product per prime → the root of the tree spans
        // about `nprimes` limbs.
        let use_tree = nprimes >= TREE_MIN_PRIMES && max_limbs >= TREE_MIN_WIDTH_RATIO * nprimes;
        if use_tree {
            self.ensure_tree();
        }
        for (i, e) in entries.iter().enumerate() {
            if e.is_zero() {
                continue;
            }
            if use_tree && e.magnitude().limbs().len() >= TREE_MIN_WIDTH_RATIO * nprimes {
                self.reduce_entry_tree(e, i, &mut out);
            } else {
                let limbs = e.magnitude().limbs();
                let negative = e.is_negative();
                for (k, field) in self.fields.iter().enumerate() {
                    out[k][i] = field.mont_from_limbs(limbs, negative, &self.powers[k]);
                }
            }
        }
        out
    }

    /// [`Self::reduce_matrix`] fanned out over the worker pool with the
    /// 2D prime × entry-chunk decomposition of
    /// [`Self::reduce_entries_par`].
    pub fn reduce_matrix_par(&mut self, m: &Matrix<Integer>, threads: usize) -> Vec<Vec<u64>> {
        self.reduce_entries_par(m.data(), threads)
    }

    /// [`Self::reduce_entries`] on the worker pool: the work grid is
    /// split two-dimensionally into prime × entry-chunk cells sharing
    /// one work-stealing cursor, replacing the per-prime-only split (a
    /// single prime's column of work can occupy every worker). The tree
    /// path fans out per entry chunk only — each remainder-tree descent
    /// spans all primes at once, so the prime dimension lives inside the
    /// task there. Bitwise-identical output to the serial pass.
    pub fn reduce_entries_par(&mut self, entries: &[Integer], threads: usize) -> Vec<Vec<u64>> {
        let nprimes = self.fields.len();
        let chunks = entries.len().div_ceil(PAR_ENTRY_CHUNK);
        if threads <= 1 || nprimes == 0 || nprimes * chunks < 2 || pool::in_worker() {
            return self.reduce_entries(entries);
        }
        let max_limbs = entries
            .iter()
            .map(|e| e.magnitude().limbs().len())
            .max()
            .unwrap_or(0);
        self.ensure_powers(max_limbs.max(1));
        let use_tree = nprimes >= TREE_MIN_PRIMES && max_limbs >= TREE_MIN_WIDTH_RATIO * nprimes;
        if use_tree {
            self.ensure_tree();
        }
        let bounds = |c: usize| (c * entries.len() / chunks, (c + 1) * entries.len() / chunks);
        let this: &Self = self;
        if use_tree {
            let chunk_outs: Vec<Vec<Vec<u64>>> = parallel::par_map(chunks, threads, |c| {
                let (lo, hi) = bounds(c);
                let mut local: Vec<Vec<u64>> = (0..nprimes).map(|_| vec![0u64; hi - lo]).collect();
                for (li, e) in entries[lo..hi].iter().enumerate() {
                    if e.is_zero() {
                        continue;
                    }
                    if e.magnitude().limbs().len() >= TREE_MIN_WIDTH_RATIO * nprimes {
                        this.reduce_entry_tree(e, li, &mut local);
                    } else {
                        let limbs = e.magnitude().limbs();
                        let negative = e.is_negative();
                        for (k, field) in this.fields.iter().enumerate() {
                            local[k][li] = field.mont_from_limbs(limbs, negative, &this.powers[k]);
                        }
                    }
                }
                local
            });
            let mut out: Vec<Vec<u64>> = (0..nprimes)
                .map(|_| Vec::with_capacity(entries.len()))
                .collect();
            for chunk in chunk_outs {
                for (k, part) in chunk.into_iter().enumerate() {
                    out[k].extend_from_slice(&part);
                }
            }
            out
        } else {
            let parts: Vec<Vec<u64>> = parallel::par_map2(nprimes, chunks, threads, |k, c| {
                let (lo, hi) = bounds(c);
                let field = &this.fields[k];
                let pw = &this.powers[k];
                entries[lo..hi]
                    .iter()
                    .map(|e| {
                        if e.is_zero() {
                            0
                        } else {
                            field.mont_from_limbs(e.magnitude().limbs(), e.is_negative(), pw)
                        }
                    })
                    .collect()
            });
            let mut parts = parts.into_iter();
            (0..nprimes)
                .map(|_| {
                    let mut row = Vec::with_capacity(entries.len());
                    for _ in 0..chunks {
                        row.extend_from_slice(&parts.next().expect("prime × chunk parts"));
                    }
                    row
                })
                .collect()
        }
    }

    /// Remainder-tree descent for one wide entry: reduce the magnitude
    /// by the root product once, then halve down the tree; the per-prime
    /// leaf remainders are single limbs, finished with one limb fold.
    fn reduce_entry_tree(&self, e: &Integer, i: usize, out: &mut [Vec<u64>]) {
        let tree = self.tree.as_ref().expect("tree built by caller");
        let negative = e.is_negative();
        let root = tree.last().unwrap();
        // (level, node index, remainder mod that node's product)
        let mut stack: Vec<(usize, usize, Natural)> =
            vec![(tree.len() - 1, 0, e.magnitude() % &root[0])];
        while let Some((level, node, rem)) = stack.pop() {
            if level == 0 {
                let field = &self.fields[node];
                out[node][i] = field.mont_from_limbs(rem.limbs(), negative, &self.powers[node]);
                continue;
            }
            let child_level = &tree[level - 1];
            let (left, right) = (2 * node, 2 * node + 1);
            if right < child_level.len() {
                stack.push((level - 1, right, &rem % &child_level[right]));
            }
            stack.push((level - 1, left, &rem % &child_level[left]));
        }
    }
}

// ----------------------------------------------------------------------
// Incremental singularity under single-entry updates
// ----------------------------------------------------------------------

/// Pending rank-one updates beyond this trigger a fresh elimination
/// (only reachable while the matrix stays singular across many
/// consecutive updates — the capacitance can't be absorbed then).
const MAX_PENDING: usize = 8;

fn steps_counter() -> &'static ccmx_obs::Counter {
    ccmx_obs::counter!("ccmx_engine_incremental_steps_total")
}
fn refresh_counter() -> &'static ccmx_obs::Counter {
    ccmx_obs::counter!("ccmx_engine_fresh_refreshes_total")
}

/// `(incremental_update_steps, fresh_o_n3_refreshes)` so far in this
/// process, in the style of [`crate::crt::fast_path_stats`]. Healthy
/// Gray-coded enumeration keeps the second counter a small fraction of
/// the first (a refresh happens per [`SingularityEngine::load`], after a
/// pending-set overflow, or while the base matrix is singular).
///
/// Thin view over the shared [`ccmx_obs`] registry series
/// `ccmx_engine_incremental_steps_total` and
/// `ccmx_engine_fresh_refreshes_total`.
pub fn incremental_stats() -> (u64, u64) {
    (steps_counter().get(), refresh_counter().get())
}

/// Per-prime incremental state: the current residue matrix, and — when
/// the *base* matrix (current minus pending updates) is nonsingular —
/// its inverse, all in lazy Montgomery form.
struct PrimeState {
    field: MontgomeryField,
    /// Current matrix residues, row-major, always up to date.
    cur: Vec<u64>,
    /// Inverse of the base matrix (valid iff `has_inv`).
    inv: Vec<u64>,
    has_inv: bool,
    /// Rank-one updates `alpha·e_row·e_colᵀ` applied to the base to get
    /// the current matrix.
    pending: Vec<(usize, usize, u64)>,
    /// Is the *current* matrix singular mod this prime?
    singular: bool,
}

/// Exact singularity of an `n × n` integer matrix under a stream of
/// single-entry updates.
///
/// The prime plan covers the Hadamard bound for entries up to
/// `entry_bound`, so [`Self::is_singular`] ("singular mod every plan
/// prime") is exact over ℤ — callers must keep entries within the bound
/// they constructed the engine with.
pub struct SingularityEngine {
    n: usize,
    primes: Vec<PrimeState>,
    /// Reusable scratch for capacitance/Woodbury temporaries.
    scratch: Vec<u64>,
}

impl SingularityEngine {
    /// Engine for `n × n` matrices with entry magnitudes `<= entry_bound`.
    pub fn new(n: usize, entry_bound: &Natural) -> Self {
        let primes = crt_prime_plan(n, entry_bound)
            .into_iter()
            .map(|p| PrimeState {
                field: MontgomeryField::new(p),
                cur: vec![0; n * n],
                inv: vec![0; n * n],
                has_inv: false,
                pending: Vec::new(),
                singular: true,
            })
            .collect();
        SingularityEngine {
            n,
            primes,
            scratch: Vec::new(),
        }
    }

    /// Number of primes in the plan (each update costs `O(n²)` per
    /// prime).
    pub fn prime_count(&self) -> usize {
        self.primes.len()
    }

    /// Load a full matrix, replacing all incremental state. One batched
    /// reduction pass plus a fresh `O(n³)` elimination per prime.
    pub fn load(&mut self, m: &Matrix<Integer>) {
        assert_eq!(
            (m.rows(), m.cols()),
            (self.n, self.n),
            "engine dimension mismatch"
        );
        let mut plan = ResiduePlan::new(
            &self
                .primes
                .iter()
                .map(|s| s.field.modulus())
                .collect::<Vec<_>>(),
        );
        let residues = plan.reduce_matrix(m);
        for (state, res) in self.primes.iter_mut().zip(residues) {
            state.cur = res;
            state.pending.clear();
            refresh(state, self.n, &mut self.scratch);
        }
    }

    /// Is the current matrix singular over ℤ (det exactly zero)?
    pub fn is_singular(&self) -> bool {
        self.primes.iter().all(|s| s.singular)
    }

    /// Apply `entry[(row, col)] += delta` and return the new exact
    /// singularity verdict. Typical cost: one Sherman–Morrison update,
    /// `O(n²)` per prime.
    pub fn update(&mut self, row: usize, col: usize, delta: &Integer) -> bool {
        assert!(row < self.n && col < self.n, "update out of bounds");
        steps_counter().inc();
        for state in &mut self.primes {
            let alpha = state.field.reduce(delta);
            let idx = row * self.n + col;
            state.cur[idx] = state.field.add(state.cur[idx], alpha);
            if state.field.is_zero(alpha) {
                // The residue didn't move mod this prime; verdict stands.
                continue;
            }
            apply_update(state, self.n, row, col, alpha, &mut self.scratch);
            if cfg!(debug_assertions) && self.n <= 8 {
                let field = state.field;
                let fresh = crate::montgomery::det_from_residues(&field, self.n, &state.cur);
                debug_assert_eq!(
                    state.singular,
                    fresh == 0,
                    "incremental verdict diverged from fresh elimination (p = {})",
                    field.modulus()
                );
            }
        }
        self.is_singular()
    }
}

/// Merge one rank-one update into a prime's state and re-derive its
/// singularity verdict.
fn apply_update(
    state: &mut PrimeState,
    n: usize,
    row: usize,
    col: usize,
    alpha: u64,
    scratch: &mut Vec<u64>,
) {
    if !state.has_inv {
        // No usable base inverse: recompute from the current residues
        // (and capture an inverse if the matrix turned nonsingular).
        refresh(state, n, scratch);
        return;
    }
    let field = state.field;
    // Coalesce with an existing pending update to the same entry.
    if let Some(pos) = state
        .pending
        .iter()
        .position(|&(r, c, _)| r == row && c == col)
    {
        let merged = field.add(state.pending[pos].2, alpha);
        if field.is_zero(merged) {
            state.pending.swap_remove(pos);
        } else {
            state.pending[pos].2 = merged;
        }
    } else {
        state.pending.push((row, col, alpha));
    }
    if state.pending.is_empty() {
        // All updates cancelled: back at the (invertible) base.
        state.singular = false;
        return;
    }
    if state.pending.len() > MAX_PENDING {
        refresh(state, n, scratch);
        return;
    }
    // Capacitance test: with base B, updates A = B + Σ α_t·e_{r_t}e_{c_t}ᵀ
    // = B + U·Vᵀ, det(A) = det(B)·det(C) where
    // C[s][t] = δ_st + α_t · B⁻¹[c_s][r_t]   (m × m, m = |pending|).
    let m = state.pending.len();
    scratch.clear();
    scratch.resize(2 * m * m + 2 * m * n, 0);
    let (cap, rest) = scratch.split_at_mut(m * m);
    for s in 0..m {
        let (_, cs, _) = state.pending[s];
        for t in 0..m {
            let (rt, _, at) = state.pending[t];
            let mut v = field.mul(at, state.inv[cs * n + rt]);
            if s == t {
                v = field.add(v, field.one());
            }
            cap[s * m + t] = v;
        }
    }
    let (cap_inv, rest) = rest.split_at_mut(m * m);
    if !invert_small(&field, m, cap, cap_inv) {
        // det(C) = 0: the current matrix is singular mod p. Keep the
        // base and the pending set; later updates re-test.
        state.singular = true;
        return;
    }
    state.singular = false;
    // Woodbury absorb: A⁻¹ = B⁻¹ − (B⁻¹U)·C⁻¹·(VᵀB⁻¹).
    // X = B⁻¹U (n×m): X[r][t] = α_t·B⁻¹[r][r_t].
    // Z = C⁻¹·(VᵀB⁻¹) (m×n): Z[t][c] = Σ_s C⁻¹[t][s]·B⁻¹[c_s][c].
    let (x, z) = rest.split_at_mut(n * m);
    for r in 0..n {
        for (t, &(rt, _, at)) in state.pending.iter().enumerate() {
            x[r * m + t] = field.mul(at, state.inv[r * n + rt]);
        }
    }
    for t in 0..m {
        for c in 0..n {
            let mut acc = 0u64;
            for (s, &(_, cs, _)) in state.pending.iter().enumerate() {
                acc = field.add(acc, field.mul(cap_inv[t * m + s], state.inv[cs * n + c]));
            }
            z[t * n + c] = acc;
        }
    }
    for r in 0..n {
        for c in 0..n {
            let mut acc = state.inv[r * n + c];
            for t in 0..m {
                acc = field.sub_mul(acc, x[r * m + t], z[t * n + c]);
            }
            state.inv[r * n + c] = acc;
        }
    }
    state.pending.clear();
}

/// Fresh `O(n³)` Gauss–Jordan over the current residues: sets the
/// singularity verdict and, when nonsingular, rebases the inverse.
fn refresh(state: &mut PrimeState, n: usize, scratch: &mut Vec<u64>) {
    refresh_counter().inc();
    let field = state.field;
    state.pending.clear();
    scratch.clear();
    scratch.extend_from_slice(&state.cur);
    let a = &mut scratch[..];
    // Identity into the inverse buffer; Gauss–Jordan keeps it in step.
    state.inv.iter_mut().for_each(|v| *v = 0);
    for i in 0..n {
        state.inv[i * n + i] = field.one();
    }
    for col in 0..n {
        let Some(p_row) = (col..n).find(|&r| !field.is_zero(a[r * n + col])) else {
            state.singular = true;
            state.has_inv = false;
            return;
        };
        if p_row != col {
            for j in 0..n {
                a.swap(p_row * n + j, col * n + j);
                state.inv.swap(p_row * n + j, col * n + j);
            }
        }
        let pivot_inv = field
            .inv(a[col * n + col])
            .expect("nonzero pivot in a prime field");
        for j in 0..n {
            a[col * n + j] = field.mul(a[col * n + j], pivot_inv);
            state.inv[col * n + j] = field.mul(state.inv[col * n + j], pivot_inv);
        }
        for r in 0..n {
            if r == col {
                continue;
            }
            let factor = a[r * n + col];
            if field.is_zero(factor) {
                continue;
            }
            for j in 0..n {
                a[r * n + j] = field.sub_mul(a[r * n + j], factor, a[col * n + j]);
                state.inv[r * n + j] =
                    field.sub_mul(state.inv[r * n + j], factor, state.inv[col * n + j]);
            }
        }
    }
    state.singular = false;
    state.has_inv = true;
}

/// Gauss–Jordan inversion of a small `m × m` matrix (the capacitance).
/// Returns `false` (singular) without touching `out`'s meaning on
/// failure. `a` is clobbered.
fn invert_small(field: &MontgomeryField, m: usize, a: &mut [u64], out: &mut [u64]) -> bool {
    out.iter_mut().for_each(|v| *v = 0);
    for i in 0..m {
        out[i * m + i] = field.one();
    }
    for col in 0..m {
        let Some(p_row) = (col..m).find(|&r| !field.is_zero(a[r * m + col])) else {
            return false;
        };
        if p_row != col {
            for j in 0..m {
                a.swap(p_row * m + j, col * m + j);
                out.swap(p_row * m + j, col * m + j);
            }
        }
        let pivot_inv = field
            .inv(a[col * m + col])
            .expect("nonzero pivot in a prime field");
        for j in 0..m {
            a[col * m + j] = field.mul(a[col * m + j], pivot_inv);
            out[col * m + j] = field.mul(out[col * m + j], pivot_inv);
        }
        for r in 0..m {
            if r == col {
                continue;
            }
            let factor = a[r * m + col];
            if field.is_zero(factor) {
                continue;
            }
            for j in 0..m {
                a[r * m + j] = field.sub_mul(a[r * m + j], factor, a[col * m + j]);
                out[r * m + j] = field.sub_mul(out[r * m + j], factor, out[col * m + j]);
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bareiss;
    use crate::montgomery;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn rand_int_matrix(n: usize, bits: u32, rng: &mut StdRng) -> Matrix<Integer> {
        Matrix::from_fn(n, n, |_, _| {
            let mag = rng.gen_range(0..(1i64 << bits));
            let sign = if rng.gen_bool(0.5) { -1 } else { 1 };
            Integer::from(sign * mag)
        })
    }

    #[test]
    fn batched_reduction_matches_per_prime_reduce() {
        let mut rng = StdRng::seed_from_u64(91);
        let primes: Vec<u64> = {
            let mut v = Vec::new();
            let mut p = ccmx_bigint::prime::next_prime(1 << 61);
            for _ in 0..4 {
                v.push(p);
                p = ccmx_bigint::prime::next_prime(p + 1);
            }
            v
        };
        let mut plan = ResiduePlan::new(&primes);
        for _ in 0..10 {
            let m = rand_int_matrix(5, 40, &mut rng);
            let batched = plan.reduce_matrix(&m);
            for (k, &p) in primes.iter().enumerate() {
                let field = MontgomeryField::new(p);
                for (i, e) in m.data().iter().enumerate() {
                    assert_eq!(
                        field.from_mont(batched[k][i]),
                        field.from_mont(field.reduce(e)),
                        "entry {i} mod {p}"
                    );
                }
            }
        }
    }

    #[test]
    fn remainder_tree_path_matches_direct() {
        // Enough primes and wide enough entries to cross the tree gate.
        let mut rng = StdRng::seed_from_u64(92);
        let primes: Vec<u64> = {
            let mut v = Vec::new();
            let mut p = ccmx_bigint::prime::next_prime(1 << 61);
            for _ in 0..TREE_MIN_PRIMES {
                v.push(p);
                p = ccmx_bigint::prime::next_prime(p + 1);
            }
            v
        };
        let mut plan = ResiduePlan::new(&primes);
        // Entries with ~32 limbs (2048 bits) >= 2 * 8 primes.
        let wide = Matrix::from_fn(3, 3, |_, _| {
            let mut n = Natural::one();
            for _ in 0..32 {
                n = n * Natural::from(rng.gen_range(1u64 << 62..u64::MAX));
            }
            let neg = rng.gen_bool(0.5);
            let i = Integer::from(n);
            if neg {
                -&i
            } else {
                i
            }
        });
        let batched = plan.reduce_entries(wide.data());
        for (k, &p) in primes.iter().enumerate() {
            let field = MontgomeryField::new(p);
            for (i, e) in wide.data().iter().enumerate() {
                assert_eq!(
                    field.from_mont(batched[k][i]),
                    field.from_mont(field.reduce(e)),
                    "wide entry {i} mod {p}"
                );
            }
        }
    }

    #[test]
    fn batched_echelon_agrees_with_echelon_mod() {
        let mut rng = StdRng::seed_from_u64(93);
        let primes = [
            ccmx_bigint::prime::next_prime(1 << 61),
            ccmx_bigint::prime::next_prime((1 << 61) + 1000),
        ];
        let mut plan = ResiduePlan::new(&primes);
        for _ in 0..8 {
            let m = rand_int_matrix(4, 20, &mut rng);
            let residues = plan.reduce_matrix(&m);
            for (k, &p) in primes.iter().enumerate() {
                let via_plan =
                    montgomery::echelon_from_residues(&plan.fields()[k], 4, 4, &residues[k]);
                let fresh = montgomery::echelon_mod(&m, p);
                assert_eq!(via_plan.rref, fresh.rref);
                assert_eq!(via_plan.pivot_cols, fresh.pivot_cols);
                assert_eq!(via_plan.det, fresh.det);
            }
        }
    }

    #[test]
    fn parallel_reduction_matches_serial_direct_path() {
        let mut rng = StdRng::seed_from_u64(95);
        let primes: Vec<u64> = {
            let mut v = Vec::new();
            let mut p = ccmx_bigint::prime::next_prime(1 << 59);
            for _ in 0..5 {
                v.push(p);
                p = ccmx_bigint::prime::next_prime(p + 1);
            }
            v
        };
        // Enough entries to split into several chunks.
        let entries: Vec<Integer> = (0..700)
            .map(|_| {
                let mag = rng.gen_range(0..i64::MAX);
                let sign = if rng.gen_bool(0.5) { -1 } else { 1 };
                Integer::from(sign * mag)
            })
            .collect();
        let serial = ResiduePlan::new(&primes).reduce_entries(&entries);
        for threads in [2usize, 4] {
            let par = ResiduePlan::new(&primes).reduce_entries_par(&entries, threads);
            assert_eq!(par, serial, "threads={threads}");
        }
        // Serial-threads path is the identical code path.
        assert_eq!(
            ResiduePlan::new(&primes).reduce_entries_par(&entries, 1),
            serial
        );
    }

    #[test]
    fn parallel_reduction_matches_serial_tree_path() {
        let mut rng = StdRng::seed_from_u64(96);
        let primes: Vec<u64> = {
            let mut v = Vec::new();
            let mut p = ccmx_bigint::prime::next_prime(1 << 59);
            for _ in 0..TREE_MIN_PRIMES {
                v.push(p);
                p = ccmx_bigint::prime::next_prime(p + 1);
            }
            v
        };
        // Wide entries (cross the tree gate) mixed with narrow and zero.
        let entries: Vec<Integer> = (0..300)
            .map(|i| {
                if i % 7 == 0 {
                    Integer::zero()
                } else if i % 3 == 0 {
                    Integer::from(rng.gen_range(-1000i64..=1000))
                } else {
                    let mut n = Natural::one();
                    for _ in 0..2 * TREE_MIN_PRIMES {
                        n = n * Natural::from(rng.gen_range(1u64 << 62..u64::MAX));
                    }
                    let i = Integer::from(n);
                    if rng.gen_bool(0.5) {
                        -&i
                    } else {
                        i
                    }
                }
            })
            .collect();
        let serial = ResiduePlan::new(&primes).reduce_entries(&entries);
        let par = ResiduePlan::new(&primes).reduce_entries_par(&entries, 4);
        assert_eq!(par, serial);
    }

    #[test]
    fn incremental_engine_tracks_bareiss_over_flip_walk() {
        let mut rng = StdRng::seed_from_u64(94);
        for n in [2usize, 3, 4] {
            let bound = Natural::from(15u64); // 4-bit entries
            let mut engine = SingularityEngine::new(n, &bound);
            let mut m = Matrix::from_fn(n, n, |_, _| Integer::from(rng.gen_range(0i64..=15)));
            engine.load(&m);
            assert_eq!(engine.is_singular(), bareiss::is_singular(&m));
            for _ in 0..120 {
                let (r, c) = (rng.gen_range(0..n), rng.gen_range(0..n));
                let bit = rng.gen_range(0..4u32);
                // Flip bit `bit` of entry (r, c), staying in [0, 15].
                let delta = if m[(r, c)].magnitude().bit(bit as u64) {
                    Integer::from(-(1i64 << bit))
                } else {
                    Integer::from(1i64 << bit)
                };
                m[(r, c)] = &m[(r, c)] + &delta;
                let verdict = engine.update(r, c, &delta);
                assert_eq!(
                    verdict,
                    bareiss::is_singular(&m),
                    "divergence at n={n}, m={m:?}"
                );
            }
        }
    }

    #[test]
    fn incremental_engine_survives_singular_runs() {
        // Walk a 3×3 matrix through a deliberately long singular stretch
        // (zero column) and back out.
        let n = 3;
        let mut engine = SingularityEngine::new(n, &Natural::from(7u64));
        let mut m = Matrix::from_fn(n, n, |i, j| Integer::from(((i * 2 + j * 3) % 7) as i64));
        engine.load(&m);
        // Zero out column 1 step by step: singular once the column dies.
        for i in 0..n {
            let delta = -&m[(i, 1)];
            m[(i, 1)] = Integer::zero();
            let verdict = engine.update(i, 1, &delta);
            assert_eq!(verdict, bareiss::is_singular(&m));
        }
        assert!(engine.is_singular());
        // Restore entries one at a time.
        for i in 0..n {
            let delta = Integer::from((i + 1) as i64);
            m[(i, 1)] = delta.clone();
            let verdict = engine.update(i, 1, &delta);
            assert_eq!(verdict, bareiss::is_singular(&m));
        }
        let (steps, fresh) = incremental_stats();
        assert!(steps > 0);
        assert!(fresh > 0, "load implies at least one refresh");
    }

    #[test]
    fn stats_counters_advance() {
        let (steps0, _) = incremental_stats();
        let mut engine = SingularityEngine::new(2, &Natural::from(3u64));
        engine.load(&Matrix::from_fn(2, 2, |i, j| {
            Integer::from(((i + 2 * j) % 3) as i64)
        }));
        engine.update(0, 0, &Integer::from(1i64));
        let (steps1, _) = incremental_stats();
        assert!(steps1 > steps0);
    }
}
