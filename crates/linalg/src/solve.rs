//! Exact solvability of integer linear systems (Corollary 1.3).
//!
//! The paper's Corollary 1.3 concerns the *decision problem* "does
//! `A·x = b` have a (rational) solution?". We expose this decision
//! exactly over ℚ, plus the witness solution, and the rank-based
//! Rouché–Capelli characterization used to cross-check it.

use ccmx_bigint::{Integer, Rational};

use crate::bareiss;
use crate::gauss;
use crate::matrix::Matrix;
use crate::ring::RationalField;

/// Lift an integer matrix into ℚ.
pub fn to_rational(m: &Matrix<Integer>) -> Matrix<Rational> {
    m.map(|e| Rational::from(e.clone()))
}

/// Does `a·x = b` have a rational solution?
pub fn is_solvable(a: &Matrix<Integer>, b: &[Integer]) -> bool {
    let f = RationalField;
    let aq = to_rational(a);
    let bq: Vec<Rational> = b.iter().map(|e| Rational::from(e.clone())).collect();
    gauss::solve(&f, &aq, &bq).is_some()
}

/// One exact rational solution of `a·x = b`, if any.
pub fn solve(a: &Matrix<Integer>, b: &[Integer]) -> Option<Vec<Rational>> {
    let f = RationalField;
    let aq = to_rational(a);
    let bq: Vec<Rational> = b.iter().map(|e| Rational::from(e.clone())).collect();
    gauss::solve(&f, &aq, &bq)
}

/// Rouché–Capelli check: solvable iff `rank(A) = rank([A | b])`.
/// Used as an independent oracle against [`is_solvable`].
pub fn is_solvable_by_rank(a: &Matrix<Integer>, b: &[Integer]) -> bool {
    assert_eq!(a.rows(), b.len());
    let aug = Matrix::from_fn(a.rows(), a.cols() + 1, |i, j| {
        if j < a.cols() {
            a[(i, j)].clone()
        } else {
            b[i].clone()
        }
    });
    bareiss::rank(a) == bareiss::rank(&aug)
}

/// Cramer-style exact solve for square nonsingular systems, entirely in
/// integer arithmetic: `x_i = det(A_i) / det(A)` where `A_i` replaces
/// column `i` with `b`. Exponentially cleaner to audit than elimination —
/// used as a second oracle in tests and benches.
pub fn solve_cramer(a: &Matrix<Integer>, b: &[Integer]) -> Option<Vec<Rational>> {
    assert!(a.is_square());
    assert_eq!(a.rows(), b.len());
    let d = bareiss::det(a);
    if d.is_zero() {
        return None;
    }
    let n = a.rows();
    let mut xs = Vec::with_capacity(n);
    for i in 0..n {
        let ai = Matrix::from_fn(n, n, |r, c| {
            if c == i {
                b[r].clone()
            } else {
                a[(r, c)].clone()
            }
        });
        xs.push(Rational::new(bareiss::det(&ai), d.clone()));
    }
    Some(xs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrix::int_matrix;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn iv(vals: &[i64]) -> Vec<Integer> {
        vals.iter().map(|&v| Integer::from(v)).collect()
    }

    #[test]
    fn solvable_full_rank() {
        let a = int_matrix(&[&[2, 1], &[1, -1]]);
        let b = iv(&[5, 1]);
        assert!(is_solvable(&a, &b));
        let x = solve(&a, &b).unwrap();
        // 2x + y = 5, x - y = 1 → x = 2, y = 1.
        assert_eq!(x[0], Rational::from(Integer::from(2i64)));
        assert_eq!(x[1], Rational::from(Integer::from(1i64)));
    }

    #[test]
    fn unsolvable_inconsistent() {
        let a = int_matrix(&[&[1, 1], &[2, 2]]);
        assert!(!is_solvable(&a, &iv(&[1, 3])));
        assert!(is_solvable(&a, &iv(&[1, 2])));
    }

    #[test]
    fn rank_characterization_agrees_randomized() {
        let mut rng = StdRng::seed_from_u64(17);
        for _ in 0..100 {
            let rows = rng.gen_range(1..=5);
            let cols = rng.gen_range(1..=5);
            let a = Matrix::from_fn(rows, cols, |_, _| Integer::from(rng.gen_range(-3i64..=3)));
            let b: Vec<Integer> = (0..rows)
                .map(|_| Integer::from(rng.gen_range(-3i64..=3)))
                .collect();
            assert_eq!(
                is_solvable(&a, &b),
                is_solvable_by_rank(&a, &b),
                "oracles disagree on A={a:?}, b={b:?}"
            );
            if let Some(x) = solve(&a, &b) {
                let f = RationalField;
                let ax = to_rational(&a).mul_vec(&f, &x);
                let bq: Vec<Rational> = b.iter().map(|e| Rational::from(e.clone())).collect();
                assert_eq!(ax, bq, "claimed solution does not satisfy the system");
            }
        }
    }

    #[test]
    fn cramer_matches_elimination() {
        let mut rng = StdRng::seed_from_u64(18);
        for _ in 0..30 {
            let n = rng.gen_range(1..=4);
            let a = Matrix::from_fn(n, n, |_, _| Integer::from(rng.gen_range(-5i64..=5)));
            let b: Vec<Integer> = (0..n)
                .map(|_| Integer::from(rng.gen_range(-5i64..=5)))
                .collect();
            let cram = solve_cramer(&a, &b);
            match cram {
                None => assert!(bareiss::det(&a).is_zero()),
                Some(x) => {
                    let e = solve(&a, &b).expect("nonsingular system must be solvable");
                    assert_eq!(x, e);
                }
            }
        }
    }

    #[test]
    fn rational_solution_for_integer_unsolvable_system() {
        // 2x = 1 has no integer solution but a rational one; Corollary 1.3
        // is about rational solvability.
        let a = int_matrix(&[&[2]]);
        let x = solve(&a, &iv(&[1])).unwrap();
        assert_eq!(x[0], Rational::new(Integer::one(), Integer::from(2i64)));
    }

    #[test]
    fn zero_matrix_cases() {
        let a = int_matrix(&[&[0, 0], &[0, 0]]);
        assert!(is_solvable(&a, &iv(&[0, 0])));
        assert!(!is_solvable(&a, &iv(&[0, 1])));
    }
}
