//! Freivalds' probabilistic verification of matrix products.
//!
//! The paper derives its Corollary 1.2 bound for "is `A·B = C`?" — and the
//! classic randomized contrast to that deterministic hardness is
//! Freivalds' check: `A·(B·r) = C·r` for a random vector `r` costs `O(n²)`
//! ring operations and errs (one-sided) with probability `<= 1/s` when `r`
//! is drawn from a set of `s` scalars. We run it over GF(p).

use ccmx_bigint::Integer;
use rand::Rng;

use crate::matrix::Matrix;
use crate::modular::reduce_matrix;
use crate::ring::PrimeField;

/// One Freivalds round over GF(p): returns `false` only if `A·B != C`
/// (one-sided). `true` may be wrong with probability `<= 1/p`.
pub fn freivalds_round<R: Rng + ?Sized>(
    a: &Matrix<u64>,
    b: &Matrix<u64>,
    c: &Matrix<u64>,
    field: &PrimeField,
    rng: &mut R,
) -> bool {
    assert_eq!(a.cols(), b.rows());
    assert_eq!((a.rows(), b.cols()), (c.rows(), c.cols()));
    let r: Vec<u64> = (0..b.cols())
        .map(|_| rng.gen_range(0..field.modulus()))
        .collect();
    let br = b.mul_vec(field, &r);
    let abr = a.mul_vec(field, &br);
    let cr = c.mul_vec(field, &r);
    abr == cr
}

/// Verify `A·B = C` for integer matrices with error `<= 2^-rounds`
/// (one-sided: a `false` answer is always correct).
pub fn verify_product<R: Rng + ?Sized>(
    a: &Matrix<Integer>,
    b: &Matrix<Integer>,
    c: &Matrix<Integer>,
    rounds: u32,
    rng: &mut R,
) -> bool {
    // A large prime makes the per-round error ~1/p; rounds add margin and
    // guard against unlucky primes dividing entries of A·B - C.
    for _ in 0..rounds {
        let p = ccmx_bigint::prime::PrimeWindow::new(62).sample(rng);
        let field = PrimeField::new(p);
        let (am, bm, cm) = (
            reduce_matrix(a, &field),
            reduce_matrix(b, &field),
            reduce_matrix(c, &field),
        );
        if !freivalds_round(&am, &bm, &cm, &field, rng) {
            return false;
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrix::int_matrix;
    use crate::ring::IntegerRing;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn accepts_true_products() {
        let mut rng = StdRng::seed_from_u64(1);
        let zz = IntegerRing;
        let a = int_matrix(&[&[1, 2], &[3, 4]]);
        let b = int_matrix(&[&[5, 6], &[7, 8]]);
        let c = a.mul(&zz, &b);
        assert!(verify_product(&a, &b, &c, 10, &mut rng));
    }

    #[test]
    fn rejects_wrong_products() {
        let mut rng = StdRng::seed_from_u64(2);
        let zz = IntegerRing;
        let a = int_matrix(&[&[1, 2], &[3, 4]]);
        let b = int_matrix(&[&[5, 6], &[7, 8]]);
        let mut c = a.mul(&zz, &b);
        c[(1, 1)] += &Integer::one();
        assert!(!verify_product(&a, &b, &c, 10, &mut rng));
    }

    #[test]
    fn rejects_subtle_single_entry_error_whp() {
        let mut rng = StdRng::seed_from_u64(3);
        let zz = IntegerRing;
        let n = 8;
        let a = Matrix::from_fn(n, n, |i, j| Integer::from(((i * 31 + j * 17) % 11) as i64));
        let b = Matrix::from_fn(n, n, |i, j| Integer::from(((i * 13 + j * 7) % 9) as i64));
        let mut c = a.mul(&zz, &b);
        c[(5, 2)] -= &Integer::one();
        let mut rejected = 0;
        for _ in 0..20 {
            if !verify_product(&a, &b, &c, 1, &mut rng) {
                rejected += 1;
            }
        }
        assert!(
            rejected >= 19,
            "Freivalds missed an error too often: {rejected}/20"
        );
    }

    #[test]
    fn rectangular_products() {
        let mut rng = StdRng::seed_from_u64(4);
        let zz = IntegerRing;
        let a = int_matrix(&[&[1, 2, 3], &[4, 5, 6]]); // 2x3
        let b = int_matrix(&[&[1], &[0], &[-1]]); // 3x1
        let c = a.mul(&zz, &b); // 2x1
        assert!(verify_product(&a, &b, &c, 8, &mut rng));
        let wrong = int_matrix(&[&[0], &[0]]);
        assert!(!verify_product(&a, &b, &wrong, 8, &mut rng));
    }
}
