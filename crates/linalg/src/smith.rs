//! Smith normal form over ℤ.
//!
//! Every integer matrix `A` factors as `U·A·V = D` with `U`, `V`
//! unimodular (determinant ±1) and `D` diagonal with
//! `d₁ | d₂ | … | d_r` (the invariant factors). This extends the
//! workspace beyond the paper's rational questions: it decides
//! solvability of `A·x = b` **over ℤ** (the natural integral sharpening
//! of Corollary 1.3), exposes the determinant as `±∏ dᵢ`, and gives the
//! rank yet another independent oracle.
//!
//! The implementation is the classical reduction: drive the smallest
//! nonzero entry to the pivot, kill its row and column by Euclidean
//! steps, restore the divisibility chain, recurse — with `U` and `V`
//! accumulated so the factorization is *verified*, not just claimed.

use ccmx_bigint::Integer;

use crate::matrix::Matrix;
use crate::ring::IntegerRing;

/// A verified Smith normal form `U·A·V = D`.
#[derive(Clone, Debug)]
pub struct SmithNormalForm {
    /// Left unimodular transform (`rows × rows`).
    pub u: Matrix<Integer>,
    /// Right unimodular transform (`cols × cols`).
    pub v: Matrix<Integer>,
    /// The diagonal matrix (same shape as the input).
    pub d: Matrix<Integer>,
}

impl SmithNormalForm {
    /// The nonzero invariant factors `d₁ | d₂ | …`, all positive.
    pub fn invariant_factors(&self) -> Vec<Integer> {
        let r = self.d.rows().min(self.d.cols());
        (0..r)
            .map(|i| self.d[(i, i)].clone())
            .filter(|x| !x.is_zero())
            .collect()
    }

    /// Rank = number of nonzero invariant factors.
    pub fn rank(&self) -> usize {
        self.invariant_factors().len()
    }
}

fn find_min_nonzero(a: &Matrix<Integer>, from: usize) -> Option<(usize, usize)> {
    let mut best: Option<(usize, usize)> = None;
    for i in from..a.rows() {
        for j in from..a.cols() {
            if a[(i, j)].is_zero() {
                continue;
            }
            match best {
                None => best = Some((i, j)),
                Some((bi, bj)) => {
                    if a[(i, j)].magnitude() < a[(bi, bj)].magnitude() {
                        best = Some((i, j));
                    }
                }
            }
        }
    }
    best
}

/// `row_i -= q * row_j` on `m` (used for both the working matrix and U).
fn row_sub(m: &mut Matrix<Integer>, i: usize, j: usize, q: &Integer) {
    if q.is_zero() {
        return;
    }
    for c in 0..m.cols() {
        let delta = q * &m[(j, c)];
        m[(i, c)] -= &delta;
    }
}

/// `col_i -= q * col_j` on `m` (working matrix and V).
fn col_sub(m: &mut Matrix<Integer>, i: usize, j: usize, q: &Integer) {
    if q.is_zero() {
        return;
    }
    for r in 0..m.rows() {
        let delta = q * &m[(r, j)];
        m[(r, i)] -= &delta;
    }
}

/// Compute the Smith normal form of `a`.
///
/// ```
/// use ccmx_linalg::{smith, matrix::int_matrix};
/// let a = int_matrix(&[&[4, 0], &[0, 6]]);
/// let s = smith::smith_normal_form(&a);
/// assert!(smith::verify_smith(&a, &s));
/// let f: Vec<i64> = s.invariant_factors().iter().map(|x| x.to_i64().unwrap()).collect();
/// assert_eq!(f, vec![2, 12]); // gcd then lcm
/// ```
pub fn smith_normal_form(a: &Matrix<Integer>) -> SmithNormalForm {
    let zz = IntegerRing;
    let (rows, cols) = (a.rows(), a.cols());
    let mut d = a.clone();
    let mut u = Matrix::identity(&zz, rows);
    let mut v = Matrix::identity(&zz, cols);
    let steps = rows.min(cols);

    for t in 0..steps {
        // Phase 1: clear row t and column t below/right of the pivot.
        loop {
            let Some((pi, pj)) = find_min_nonzero(&d, t) else {
                // Everything from (t, t) on is zero: done.
                return finish(d, u, v);
            };
            // Move the pivot to (t, t).
            if pi != t {
                d.swap_rows(pi, t);
                u.swap_rows(pi, t);
            }
            if pj != t {
                d.swap_cols(pj, t);
                v.swap_cols(pj, t);
            }
            // Reduce column t by the pivot.
            let mut clean = true;
            for i in t + 1..rows {
                if d[(i, t)].is_zero() {
                    continue;
                }
                let q = &d[(i, t)] / &d[(t, t)];
                row_sub(&mut d, i, t, &q);
                u_row_op(&mut u, i, t, &q);
                if !d[(i, t)].is_zero() {
                    clean = false; // remainder left; loop again with a smaller pivot
                }
            }
            // Reduce row t by the pivot.
            for j in t + 1..cols {
                if d[(t, j)].is_zero() {
                    continue;
                }
                let q = &d[(t, j)] / &d[(t, t)];
                col_sub(&mut d, j, t, &q);
                v_col_op(&mut v, j, t, &q);
                if !d[(t, j)].is_zero() {
                    clean = false;
                }
            }
            if clean {
                break;
            }
        }
        // Phase 2: enforce divisibility d[t][t] | every later entry. If
        // some d[i][j] is not divisible, add row i to row t and redo.
        let pivot = d[(t, t)].clone();
        let mut violator = None;
        'scan: for i in t + 1..rows {
            for j in t + 1..cols {
                if !d[(i, j)].div_rem(&pivot).1.is_zero() {
                    violator = Some(i);
                    break 'scan;
                }
            }
        }
        if let Some(i) = violator {
            // row t += row i, then redo this step.
            let minus_one = -Integer::one();
            row_sub(&mut d, t, i, &minus_one);
            u_row_op(&mut u, t, i, &minus_one);
            // Redo the same t (decrement and continue).
            return smith_continue(d, u, v, t);
        }
    }
    finish(d, u, v)
}

// Helper wrappers so the U/V updates mirror the D updates exactly.
fn u_row_op(u: &mut Matrix<Integer>, i: usize, j: usize, q: &Integer) {
    row_sub(u, i, j, q);
}
fn v_col_op(v: &mut Matrix<Integer>, i: usize, j: usize, q: &Integer) {
    col_sub(v, i, j, q);
}

/// Restart the elimination from step `t` with accumulated transforms.
/// (Divisibility fix-ups strictly shrink the pivot's magnitude, so this
/// recursion terminates.)
fn smith_continue(
    d: Matrix<Integer>,
    u: Matrix<Integer>,
    v: Matrix<Integer>,
    _t: usize,
) -> SmithNormalForm {
    // Re-run the main loop on the current state. Since the state already
    // carries the transforms, we wrap it through a private entry point:
    // simplest correct approach — run the full algorithm on `d` and
    // compose transforms.
    let zz = IntegerRing;
    let inner = smith_normal_form(&d);
    SmithNormalForm {
        u: inner.u.mul(&zz, &u),
        v: v.mul(&zz, &inner.v),
        d: inner.d,
    }
}

fn finish(mut d: Matrix<Integer>, mut u: Matrix<Integer>, v: Matrix<Integer>) -> SmithNormalForm {
    // Normalize signs: make all diagonal entries non-negative.
    let steps = d.rows().min(d.cols());
    for t in 0..steps {
        if d[(t, t)].is_negative() {
            for c in 0..d.cols() {
                d[(t, c)] = -&d[(t, c)];
            }
            for c in 0..u.cols() {
                u[(t, c)] = -&u[(t, c)];
            }
        }
    }
    SmithNormalForm { u, v, d }
}

/// Verify `U·A·V = D`, `D` diagonal with the divisibility chain, and
/// `U`, `V` unimodular.
pub fn verify_smith(a: &Matrix<Integer>, s: &SmithNormalForm) -> bool {
    let zz = IntegerRing;
    if s.u.mul(&zz, a).mul(&zz, &s.v) != s.d {
        return false;
    }
    // Diagonality.
    for i in 0..s.d.rows() {
        for j in 0..s.d.cols() {
            if i != j && !s.d[(i, j)].is_zero() {
                return false;
            }
        }
    }
    // Divisibility chain and non-negativity.
    let factors: Vec<&Integer> = (0..s.d.rows().min(s.d.cols()))
        .map(|i| &s.d[(i, i)])
        .collect();
    for w in factors.windows(2) {
        if w[0].is_zero() && !w[1].is_zero() {
            return false; // zeros must come last
        }
        if !w[0].is_zero() && !w[1].is_zero() && !w[1].divisible_by(w[0]) {
            return false;
        }
    }
    if factors.iter().any(|f| f.is_negative()) {
        return false;
    }
    // Unimodularity.
    let det_u = crate::bareiss::det(&s.u);
    let det_v = crate::bareiss::det(&s.v);
    det_u.magnitude().is_one() && det_v.magnitude().is_one()
}

/// Does `a·x = b` have an **integer** solution? (Via SNF: substitute
/// `x = V·y`; then `D·y = U·b` needs `dᵢ | (U·b)ᵢ` and zero rows of `D`
/// to meet zero entries of `U·b`.)
pub fn is_solvable_over_z(a: &Matrix<Integer>, b: &[Integer]) -> bool {
    assert_eq!(a.rows(), b.len());
    let zz = IntegerRing;
    let s = smith_normal_form(a);
    let ub = s.u.mul_vec(&zz, b);
    let r = a.rows().min(a.cols());
    for (i, ubi) in ub.iter().enumerate() {
        if i < r && !s.d[(i, i)].is_zero() {
            if !ubi.divisible_by(&s.d[(i, i)]) {
                return false;
            }
        } else if !ubi.is_zero() {
            return false;
        }
    }
    true
}

/// An integer solution of `a·x = b`, if one exists.
pub fn solve_over_z(a: &Matrix<Integer>, b: &[Integer]) -> Option<Vec<Integer>> {
    assert_eq!(a.rows(), b.len());
    let zz = IntegerRing;
    let s = smith_normal_form(a);
    let ub = s.u.mul_vec(&zz, b);
    let r = a.rows().min(a.cols());
    let mut y = vec![Integer::zero(); a.cols()];
    for (i, ubi) in ub.iter().enumerate() {
        if i < r && !s.d[(i, i)].is_zero() {
            let (q, rem) = ubi.div_rem(&s.d[(i, i)]);
            if !rem.is_zero() {
                return None;
            }
            y[i] = q;
        } else if !ubi.is_zero() {
            return None;
        }
    }
    Some(s.v.mul_vec(&zz, &y))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bareiss;
    use crate::matrix::int_matrix;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn textbook_example() {
        // [[2,4,4],[-6,6,12],[10,4,16]]: det = 624; d₁ = gcd(entries) = 2,
        // d₁d₂ = gcd(2×2 minors) = 4, d₁d₂d₃ = |det| = 624 →
        // invariant factors 2 | 2 | 156.
        let a = int_matrix(&[&[2, 4, 4], &[-6, 6, 12], &[10, 4, 16]]);
        let s = smith_normal_form(&a);
        assert!(verify_smith(&a, &s), "U·A·V != D or invariants broken");
        let f: Vec<i64> = s
            .invariant_factors()
            .iter()
            .map(|x| x.to_i64().unwrap())
            .collect();
        assert_eq!(f, vec![2, 2, 156]);
    }

    #[test]
    fn identity_and_zero() {
        let zz = IntegerRing;
        let i3: Matrix<Integer> = Matrix::identity(&zz, 3);
        let s = smith_normal_form(&i3);
        assert!(verify_smith(&i3, &s));
        assert_eq!(s.rank(), 3);
        assert!(s.invariant_factors().iter().all(|f| f.is_one()));

        let z = Matrix::zero(&zz, 2, 3);
        let s = smith_normal_form(&z);
        assert!(verify_smith(&z, &s));
        assert_eq!(s.rank(), 0);
    }

    #[test]
    fn randomized_verification() {
        let mut rng = StdRng::seed_from_u64(41);
        for _ in 0..30 {
            let rows = rng.gen_range(1..=4);
            let cols = rng.gen_range(1..=4);
            let a = Matrix::from_fn(rows, cols, |_, _| Integer::from(rng.gen_range(-9i64..=9)));
            let s = smith_normal_form(&a);
            assert!(verify_smith(&a, &s), "failed on {a:?}");
            assert_eq!(s.rank(), bareiss::rank(&a), "rank disagreement on {a:?}");
        }
    }

    #[test]
    fn determinant_is_product_of_factors() {
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..15 {
            let n = rng.gen_range(1..=4);
            let a = Matrix::from_fn(n, n, |_, _| Integer::from(rng.gen_range(-5i64..=5)));
            let s = smith_normal_form(&a);
            assert!(verify_smith(&a, &s));
            let mut prod = Integer::one();
            for i in 0..n {
                prod *= &s.d[(i, i)];
            }
            assert_eq!(
                prod.magnitude(),
                bareiss::det(&a).magnitude(),
                "|det| mismatch on {a:?}"
            );
        }
    }

    #[test]
    fn integer_solvability_stricter_than_rational() {
        // 2x = 1: rationally solvable, not integrally.
        let a = int_matrix(&[&[2]]);
        let b = [Integer::one()];
        assert!(crate::solve::is_solvable(&a, &b));
        assert!(!is_solvable_over_z(&a, &b));
        // 2x = 4: both.
        let b2 = [Integer::from(4i64)];
        assert!(is_solvable_over_z(&a, &b2));
        assert_eq!(solve_over_z(&a, &b2).unwrap(), vec![Integer::from(2i64)]);
    }

    #[test]
    fn integer_solutions_verify() {
        let mut rng = StdRng::seed_from_u64(43);
        let zz = IntegerRing;
        let mut solvable_seen = 0;
        for _ in 0..40 {
            let rows = rng.gen_range(1..=4);
            let cols = rng.gen_range(1..=4);
            let a = Matrix::from_fn(rows, cols, |_, _| Integer::from(rng.gen_range(-4i64..=4)));
            // Build a guaranteed-solvable b = A·x₀.
            let x0: Vec<Integer> = (0..cols)
                .map(|_| Integer::from(rng.gen_range(-3i64..=3)))
                .collect();
            let b = a.mul_vec(&zz, &x0);
            assert!(
                is_solvable_over_z(&a, &b),
                "constructed system must be solvable"
            );
            let x = solve_over_z(&a, &b).expect("solution exists");
            assert_eq!(
                a.mul_vec(&zz, &x),
                b,
                "solution does not satisfy the system"
            );
            solvable_seen += 1;
        }
        assert_eq!(solvable_seen, 40);
    }

    #[test]
    fn unsolvable_integer_systems_detected() {
        // [[2, 0], [0, 3]] x = (1, 1): needs x1 = 1/2.
        let a = int_matrix(&[&[2, 0], &[0, 3]]);
        assert!(!is_solvable_over_z(&a, &[Integer::one(), Integer::one()]));
        assert!(is_solvable_over_z(
            &a,
            &[Integer::from(2i64), Integer::from(3i64)]
        ));
        // Inconsistent even over Q.
        let dup = int_matrix(&[&[1, 1], &[1, 1]]);
        assert!(!is_solvable_over_z(
            &dup,
            &[Integer::zero(), Integer::one()]
        ));
        assert!(solve_over_z(&dup, &[Integer::zero(), Integer::one()]).is_none());
    }

    #[test]
    fn divisibility_chain_on_structured_matrix() {
        // diag(4, 6) has SNF diag(2, 12): gcd then lcm.
        let a = int_matrix(&[&[4, 0], &[0, 6]]);
        let s = smith_normal_form(&a);
        assert!(verify_smith(&a, &s));
        let f: Vec<i64> = s
            .invariant_factors()
            .iter()
            .map(|x| x.to_i64().unwrap())
            .collect();
        assert_eq!(f, vec![2, 12]);
    }

    #[test]
    fn large_entries_exercise_bigint() {
        let mut rng = StdRng::seed_from_u64(44);
        let big = 1i64 << 35;
        let a = Matrix::from_fn(3, 3, |_, _| Integer::from(rng.gen_range(-big..=big)));
        let s = smith_normal_form(&a);
        assert!(verify_smith(&a, &s));
    }
}
