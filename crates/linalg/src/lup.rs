//! LUP decomposition over an arbitrary field (Corollary 1.2(e)).
//!
//! Factors `P·M = L·U` with `L` unit lower triangular, `U` upper
//! triangular (echelon for singular/rectangular inputs) and `P` a row
//! permutation. The paper notes its Ω(k n²) bound holds "even if we only
//! require that we know the nonzero structure of the factor matrices" —
//! [`LupDecomposition::nonzero_structure`] exposes exactly that.

use crate::matrix::Matrix;
use crate::ring::Field;

/// An LUP factorization `P·M = L·U`.
#[derive(Clone, Debug)]
pub struct LupDecomposition<T> {
    /// Unit lower-triangular factor (square, `rows × rows`).
    pub l: Matrix<T>,
    /// Upper-triangular / echelon factor (same shape as the input).
    pub u: Matrix<T>,
    /// Row permutation: row `i` of `P·M` is row `perm[i]` of `M`.
    pub perm: Vec<usize>,
    /// Sign of the permutation (`+1` or `-1`).
    pub perm_sign: i8,
}

impl<T: Clone> LupDecomposition<T> {
    /// The permutation as a matrix over the given field.
    pub fn p_matrix<F: Field<Elem = T>>(&self, field: &F) -> Matrix<T> {
        let n = self.perm.len();
        Matrix::from_fn(n, n, |i, j| {
            if self.perm[i] == j {
                field.one()
            } else {
                field.zero()
            }
        })
    }

    /// Boolean masks of the nonzero structure of `(L, U)` — the
    /// information content the paper's Corollary 1.2 lower-bounds.
    pub fn nonzero_structure<F: Field<Elem = T>>(&self, field: &F) -> (Matrix<bool>, Matrix<bool>) {
        (
            self.l.map(|e| !field.is_zero(e)),
            self.u.map(|e| !field.is_zero(e)),
        )
    }
}

/// Compute an LUP decomposition. Works for any (possibly singular or
/// rectangular) matrix: `U` is then an echelon form rather than strictly
/// upper triangular in the square-invertible sense.
pub fn lup<F: Field>(field: &F, m: &Matrix<F::Elem>) -> LupDecomposition<F::Elem> {
    let rows = m.rows();
    let cols = m.cols();
    let mut u = m.clone();
    let mut l = Matrix::identity(field, rows);
    let mut perm: Vec<usize> = (0..rows).collect();
    let mut perm_sign = 1i8;
    let mut pivot_row = 0usize;

    for col in 0..cols {
        if pivot_row == rows {
            break;
        }
        let Some(p) = (pivot_row..rows).find(|&r| !field.is_zero(&u[(r, col)])) else {
            continue;
        };
        if p != pivot_row {
            u.swap_rows(p, pivot_row);
            perm.swap(p, pivot_row);
            perm_sign = -perm_sign;
            // Swap the already-built (strictly lower) part of L.
            for j in 0..pivot_row {
                let tmp = l[(p, j)].clone();
                l[(p, j)] = l[(pivot_row, j)].clone();
                l[(pivot_row, j)] = tmp;
            }
        }
        let pivot = u[(pivot_row, col)].clone();
        for r in (pivot_row + 1)..rows {
            if field.is_zero(&u[(r, col)]) {
                continue;
            }
            let factor = field.div(&u[(r, col)], &pivot);
            l[(r, pivot_row)] = factor.clone();
            let (target, source) = u.two_rows_mut(r, pivot_row);
            for j in col..cols {
                let delta = field.mul(&factor, &source[j]);
                target[j] = field.sub(&target[j], &delta);
            }
        }
        pivot_row += 1;
    }

    LupDecomposition {
        l,
        u,
        perm,
        perm_sign,
    }
}

/// Verify `P·M = L·U` exactly.
pub fn verify_lup<F: Field>(field: &F, m: &Matrix<F::Elem>, d: &LupDecomposition<F::Elem>) -> bool {
    let pm = m.permute_rows(&d.perm);
    let lu = d.l.mul(field, &d.u);
    pm == lu
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrix::{int_matrix, Matrix};
    use crate::ring::{PrimeField, RationalField};
    use ccmx_bigint::{Integer, Rational};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn qq_mat(rows: &[&[i64]]) -> Matrix<Rational> {
        int_matrix(rows).map(|i| Rational::from(i.clone()))
    }

    fn is_unit_lower<F: Field>(field: &F, l: &Matrix<F::Elem>) -> bool {
        for i in 0..l.rows() {
            for j in 0..l.cols() {
                if i == j && l[(i, j)] != field.one() {
                    return false;
                }
                if j > i && !field.is_zero(&l[(i, j)]) {
                    return false;
                }
            }
        }
        true
    }

    fn is_echelon<F: Field>(field: &F, u: &Matrix<F::Elem>) -> bool {
        let mut last_lead: Option<usize> = None;
        for i in 0..u.rows() {
            let lead = (0..u.cols()).find(|&j| !field.is_zero(&u[(i, j)]));
            match (last_lead, lead) {
                (_, None) => last_lead = Some(u.cols()),
                (None, Some(_)) => last_lead = lead,
                (Some(prev), Some(cur)) => {
                    if prev >= cur {
                        return false;
                    }
                    last_lead = Some(cur);
                }
            }
        }
        true
    }

    #[test]
    fn small_known_decomposition() {
        let f = RationalField;
        let m = qq_mat(&[&[4, 3], &[6, 3]]);
        let d = lup(&f, &m);
        assert!(verify_lup(&f, &m, &d));
        assert!(is_unit_lower(&f, &d.l));
        assert!(is_echelon(&f, &d.u));
    }

    #[test]
    fn pivoting_required_case() {
        let f = RationalField;
        // Leading zero forces a swap.
        let m = qq_mat(&[&[0, 1], &[1, 0]]);
        let d = lup(&f, &m);
        assert!(verify_lup(&f, &m, &d));
        assert_eq!(d.perm_sign, -1);
    }

    #[test]
    fn singular_and_rectangular() {
        let f = RationalField;
        for m in [
            qq_mat(&[&[1, 2], &[2, 4]]),
            qq_mat(&[&[0, 0], &[0, 0]]),
            qq_mat(&[&[1, 2, 3], &[4, 5, 6]]),
            qq_mat(&[&[1, 2], &[3, 4], &[5, 6]]),
        ] {
            let d = lup(&f, &m);
            assert!(verify_lup(&f, &m, &d), "failed on {m:?}");
            assert!(is_unit_lower(&f, &d.l));
            assert!(is_echelon(&f, &d.u));
        }
    }

    #[test]
    fn randomized_roundtrip_rational_and_gfp() {
        let mut rng = StdRng::seed_from_u64(77);
        let f = RationalField;
        for n in 1..=6usize {
            for _ in 0..10 {
                let m = Matrix::from_fn(n, n, |_, _| {
                    Rational::from(Integer::from(rng.gen_range(-9i64..=9)))
                });
                let d = lup(&f, &m);
                assert!(verify_lup(&f, &m, &d));
            }
        }
        let f7 = PrimeField::new(7);
        for _ in 0..10 {
            let m = Matrix::from_fn(5, 5, |_, _| rng.gen_range(0u64..7));
            let d = lup(&f7, &m);
            assert!(verify_lup(&f7, &m, &d));
        }
    }

    #[test]
    fn permutation_is_valid() {
        let f = RationalField;
        let m = qq_mat(&[&[0, 0, 1], &[0, 1, 0], &[1, 0, 0]]);
        let d = lup(&f, &m);
        let mut sorted = d.perm.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, vec![0, 1, 2]);
        assert!(verify_lup(&f, &m, &d));
        let p = d.p_matrix(&f);
        assert_eq!(p.mul(&f, &m), m.permute_rows(&d.perm));
    }

    #[test]
    fn nonzero_structure_exposed() {
        let f = RationalField;
        let m = qq_mat(&[&[1, 1], &[1, 2]]);
        let d = lup(&f, &m);
        let (ls, us) = d.nonzero_structure(&f);
        assert_eq!(ls, Matrix::from_vec(2, 2, vec![true, false, true, true]));
        assert_eq!(us, Matrix::from_vec(2, 2, vec![true, true, false, true]));
    }
}
