//! Gaussian elimination over an arbitrary field.
//!
//! One generic elimination kernel drives everything the lemma checkers
//! need: reduced row echelon form, rank, determinant, nullspace, linear
//! solve, and — central to Lemma 3.2/3.3 — *span membership* ("is `B·u`
//! in Span(A)?") and span equality/intersection dimensions (Lemma 3.6).

use crate::matrix::Matrix;
use crate::ring::Field;

/// The outcome of an elimination pass: the echelon form plus bookkeeping.
#[derive(Clone, Debug)]
pub struct Echelon<T> {
    /// Reduced row echelon form of the input.
    pub rref: Matrix<T>,
    /// Column index of each pivot, in row order.
    pub pivot_cols: Vec<usize>,
    /// Determinant of the input if it was square, else `None`.
    pub det: Option<T>,
}

impl<T> Echelon<T> {
    /// The rank.
    pub fn rank(&self) -> usize {
        self.pivot_cols.len()
    }
}

/// Compute the reduced row echelon form with full bookkeeping.
pub fn echelon<F: Field>(field: &F, m: &Matrix<F::Elem>) -> Echelon<F::Elem> {
    let mut a = m.clone();
    let (rows, cols) = (a.rows(), a.cols());
    let mut pivot_cols = Vec::new();
    let mut det = if m.is_square() {
        Some(field.one())
    } else {
        None
    };
    let mut pivot_row = 0usize;
    for col in 0..cols {
        // Find a pivot in this column at or below pivot_row.
        let Some(p) = (pivot_row..rows).find(|&r| !field.is_zero(&a[(r, col)])) else {
            continue;
        };
        if p != pivot_row {
            a.swap_rows(p, pivot_row);
            if let Some(d) = det.take() {
                det = Some(field.neg(&d));
            }
        }
        let pivot = a[(pivot_row, col)].clone();
        if let Some(d) = det.take() {
            det = Some(field.mul(&d, &pivot));
        }
        // Scale the pivot row to make the pivot 1.
        let inv = field.inv(&pivot).expect("nonzero pivot");
        for j in col..cols {
            let v = field.mul(&a[(pivot_row, j)], &inv);
            a[(pivot_row, j)] = v;
        }
        // Eliminate the column everywhere else (full reduction).
        for r in 0..rows {
            if r == pivot_row || field.is_zero(&a[(r, col)]) {
                continue;
            }
            let factor = a[(r, col)].clone();
            let (target, source) = a.two_rows_mut(r, pivot_row);
            for j in col..cols {
                let delta = field.mul(&factor, &source[j]);
                target[j] = field.sub(&target[j], &delta);
            }
        }
        pivot_cols.push(col);
        pivot_row += 1;
        if pivot_row == rows {
            break;
        }
    }
    if m.is_square() && pivot_cols.len() < rows {
        det = Some(field.zero());
    }
    Echelon {
        rref: a,
        pivot_cols,
        det,
    }
}

/// Rank over a field.
pub fn rank<F: Field>(field: &F, m: &Matrix<F::Elem>) -> usize {
    echelon(field, m).rank()
}

/// Determinant of a square matrix over a field.
pub fn det<F: Field>(field: &F, m: &Matrix<F::Elem>) -> F::Elem {
    assert!(m.is_square(), "determinant of non-square matrix");
    echelon(field, m)
        .det
        .expect("square input has a determinant")
}

/// Is the square matrix singular?
pub fn is_singular<F: Field>(field: &F, m: &Matrix<F::Elem>) -> bool {
    field.is_zero(&det(field, m))
}

/// A basis of the nullspace (right kernel) of `m`: vectors `v` with
/// `m·v = 0`, one per free column.
pub fn nullspace<F: Field>(field: &F, m: &Matrix<F::Elem>) -> Vec<Vec<F::Elem>> {
    let e = echelon(field, m);
    let cols = m.cols();
    let pivot_set: Vec<Option<usize>> = {
        let mut v = vec![None; cols];
        for (row, &pc) in e.pivot_cols.iter().enumerate() {
            v[pc] = Some(row);
        }
        v
    };
    let mut basis = Vec::new();
    for free in 0..cols {
        if pivot_set[free].is_some() {
            continue;
        }
        let mut vec = vec![field.zero(); cols];
        vec[free] = field.one();
        for (col, &pr) in pivot_set.iter().enumerate() {
            if let Some(row) = pr {
                // pivot col value = -rref[row][free]
                vec[col] = field.neg(&e.rref[(row, free)]);
            }
        }
        basis.push(vec);
    }
    basis
}

/// Solve `m · x = b`. Returns `None` if inconsistent, else one particular
/// solution (free variables set to zero).
pub fn solve<F: Field>(field: &F, m: &Matrix<F::Elem>, b: &[F::Elem]) -> Option<Vec<F::Elem>> {
    assert_eq!(m.rows(), b.len(), "rhs length mismatch");
    // Eliminate the augmented matrix [m | b].
    let aug = Matrix::from_fn(m.rows(), m.cols() + 1, |i, j| {
        if j < m.cols() {
            m[(i, j)].clone()
        } else {
            b[i].clone()
        }
    });
    let e = echelon(field, &aug);
    // Inconsistent iff a pivot lands in the augmented column.
    if e.pivot_cols.last() == Some(&m.cols()) {
        return None;
    }
    let mut x = vec![field.zero(); m.cols()];
    for (row, &pc) in e.pivot_cols.iter().enumerate() {
        x[pc] = e.rref[(row, m.cols())].clone();
    }
    Some(x)
}

/// Is the vector `v` in the column span of `m`?
///
/// This is the predicate of Lemma 3.2: `M` is singular iff `B·u ∈ Span(A)`.
pub fn in_column_span<F: Field>(field: &F, m: &Matrix<F::Elem>, v: &[F::Elem]) -> bool {
    solve(field, m, v).is_some()
}

/// A factored solver for many right-hand sides against one matrix.
///
/// Precomputes a row-reduction transform `T` with `T·A = R` (the RREF),
/// so each subsequent `solve(b)` costs one matrix–vector product plus a
/// consistency scan — the work the restricted-truth-matrix enumerator
/// does per column, amortized. (`T` is the product of the elementary row
/// operations, obtained by reducing the augmented `[A | I]`.)
pub struct LinearSolver<F: Field> {
    field: F,
    /// Row transform: `t · a = rref`.
    t: Matrix<F::Elem>,
    /// The RREF of `a`.
    rref: Matrix<F::Elem>,
    pivot_cols: Vec<usize>,
}

impl<F: Field + Clone> LinearSolver<F> {
    /// Factor `a`.
    pub fn new(field: F, a: &Matrix<F::Elem>) -> Self {
        let (rows, cols) = (a.rows(), a.cols());
        let aug = Matrix::from_fn(rows, cols + rows, |i, j| {
            if j < cols {
                a[(i, j)].clone()
            } else if j - cols == i {
                field.one()
            } else {
                field.zero()
            }
        });
        // Reduce only over the first `cols` columns: run the elimination
        // manually so identity columns never become pivots.
        let mut m = aug;
        let mut pivot_cols = Vec::new();
        let mut pivot_row = 0usize;
        for col in 0..cols {
            let Some(p) = (pivot_row..rows).find(|&r| !field.is_zero(&m[(r, col)])) else {
                continue;
            };
            m.swap_rows(p, pivot_row);
            let inv = field.inv(&m[(pivot_row, col)]).expect("nonzero pivot");
            for j in 0..cols + rows {
                let v = field.mul(&m[(pivot_row, j)], &inv);
                m[(pivot_row, j)] = v;
            }
            for r in 0..rows {
                if r == pivot_row || field.is_zero(&m[(r, col)]) {
                    continue;
                }
                let factor = m[(r, col)].clone();
                let (target, source) = m.two_rows_mut(r, pivot_row);
                for j in 0..cols + rows {
                    let delta = field.mul(&factor, &source[j]);
                    target[j] = field.sub(&target[j], &delta);
                }
            }
            pivot_cols.push(col);
            pivot_row += 1;
            if pivot_row == rows {
                break;
            }
        }
        let all_rows: Vec<usize> = (0..rows).collect();
        let rref = m.submatrix(&all_rows, &(0..cols).collect::<Vec<_>>());
        let t = m.submatrix(&all_rows, &(cols..cols + rows).collect::<Vec<_>>());
        LinearSolver {
            field,
            t,
            rref,
            pivot_cols,
        }
    }

    /// The rank of the factored matrix.
    pub fn rank(&self) -> usize {
        self.pivot_cols.len()
    }

    /// Solve `a·x = b`: `None` if inconsistent, else the particular
    /// solution with free variables zero (identical to [`solve`]).
    pub fn solve(&self, b: &[F::Elem]) -> Option<Vec<F::Elem>> {
        assert_eq!(b.len(), self.t.rows(), "rhs length mismatch");
        let tb = self.t.mul_vec(&self.field, b);
        // Consistency: rows of rref beyond the rank are zero; T·b must
        // vanish there too.
        for (i, v) in tb.iter().enumerate().skip(self.rank()) {
            if !self.field.is_zero(v) {
                let _ = i;
                return None;
            }
        }
        let mut x = vec![self.field.zero(); self.rref.cols()];
        for (row, &pc) in self.pivot_cols.iter().enumerate() {
            x[pc] = tb[row].clone();
        }
        Some(x)
    }

    /// Membership in the column span (Lemma 3.2's predicate, amortized).
    pub fn contains(&self, b: &[F::Elem]) -> bool {
        self.solve(b).is_some()
    }
}

/// Dimension of the intersection of the column spans of `a` and `b`:
/// `dim(span(a) ∩ span(b)) = rank(a) + rank(b) - rank([a | b])`.
///
/// Lemma 3.6 is a statement about exactly this quantity across many `A_i`.
pub fn span_intersection_dim<F: Field>(
    field: &F,
    a: &Matrix<F::Elem>,
    b: &Matrix<F::Elem>,
) -> usize {
    assert_eq!(a.rows(), b.rows(), "spans live in different ambient spaces");
    let concat = Matrix::from_fn(a.rows(), a.cols() + b.cols(), |i, j| {
        if j < a.cols() {
            a[(i, j)].clone()
        } else {
            b[(i, j - a.cols())].clone()
        }
    });
    rank(field, a) + rank(field, b) - rank(field, &concat)
}

/// Do the columns of `a` and `b` span the same subspace?
pub fn same_column_span<F: Field>(field: &F, a: &Matrix<F::Elem>, b: &Matrix<F::Elem>) -> bool {
    let ra = rank(field, a);
    let rb = rank(field, b);
    ra == rb && span_intersection_dim(field, a, b) == ra
}

/// A canonical form for the column span of `m`: the RREF of the transpose,
/// with zero rows dropped. Two matrices have equal column spans iff their
/// canonical forms are equal — used by Lemma 3.4 to count distinct spans.
pub fn span_canonical_form<F: Field>(field: &F, m: &Matrix<F::Elem>) -> Matrix<F::Elem> {
    let e = echelon(field, &m.transpose());
    let r = e.rank();
    Matrix::from_fn(r, m.rows(), |i, j| e.rref[(i, j)].clone())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrix::int_matrix;
    use crate::ring::{PrimeField, RationalField};
    use ccmx_bigint::{Integer, Rational};

    fn qq_mat(rows: &[&[i64]]) -> Matrix<Rational> {
        int_matrix(rows).map(|i| Rational::from(i.clone()))
    }

    fn q(v: i64) -> Rational {
        Rational::from(Integer::from(v))
    }

    #[test]
    fn rank_examples() {
        let f = RationalField;
        assert_eq!(rank(&f, &qq_mat(&[&[1, 2], &[2, 4]])), 1);
        assert_eq!(rank(&f, &qq_mat(&[&[1, 2], &[3, 4]])), 2);
        assert_eq!(rank(&f, &qq_mat(&[&[0, 0], &[0, 0]])), 0);
        assert_eq!(rank(&f, &qq_mat(&[&[1, 2, 3], &[4, 5, 6], &[7, 8, 9]])), 2);
    }

    #[test]
    fn det_examples() {
        let f = RationalField;
        assert_eq!(det(&f, &qq_mat(&[&[3]])), q(3));
        assert_eq!(det(&f, &qq_mat(&[&[1, 2], &[3, 4]])), q(-2));
        assert_eq!(
            det(&f, &qq_mat(&[&[2, 0, 0], &[0, 3, 0], &[0, 0, 4]])),
            q(24)
        );
        assert_eq!(det(&f, &qq_mat(&[&[1, 2], &[2, 4]])), q(0));
        // Row swap flips sign.
        assert_eq!(det(&f, &qq_mat(&[&[0, 1], &[1, 0]])), q(-1));
    }

    #[test]
    fn det_vandermonde() {
        // det V(x0..x3) = prod_{i<j} (xj - xi), a stringent correctness check.
        let xs = [2i64, 3, 5, 7];
        let f = RationalField;
        let v = Matrix::from_fn(4, 4, |i, j| q(xs[i].pow(j as u32)));
        let mut expect = q(1);
        for i in 0..4 {
            for j in (i + 1)..4 {
                expect = &expect * &q(xs[j] - xs[i]);
            }
        }
        assert_eq!(det(&f, &v), expect);
    }

    #[test]
    fn rref_is_idempotent_and_reduced() {
        let f = RationalField;
        let m = qq_mat(&[&[2, 4, 1], &[4, 8, 3], &[1, 2, 0]]);
        let e = echelon(&f, &m);
        let e2 = echelon(&f, &e.rref);
        assert_eq!(e.rref, e2.rref);
        // Pivot columns contain exactly one 1.
        for (row, &pc) in e.pivot_cols.iter().enumerate() {
            for r in 0..m.rows() {
                let v = &e.rref[(r, pc)];
                if r == row {
                    assert!(v.is_one());
                } else {
                    assert!(v.is_zero());
                }
            }
        }
    }

    #[test]
    fn nullspace_vectors_annihilate() {
        let f = RationalField;
        let m = qq_mat(&[&[1, 2, 3], &[4, 5, 6]]);
        let ns = nullspace(&f, &m);
        assert_eq!(ns.len(), 1);
        for v in &ns {
            let mv = m.mul_vec(&f, v);
            assert!(mv.iter().all(|e| e.is_zero()));
        }
        // rank-nullity
        assert_eq!(rank(&f, &m) + ns.len(), m.cols());
    }

    #[test]
    fn solve_consistent_and_inconsistent() {
        let f = RationalField;
        let m = qq_mat(&[&[1, 1], &[1, -1]]);
        let b = vec![q(3), q(1)];
        let x = solve(&f, &m, &b).unwrap();
        assert_eq!(m.mul_vec(&f, &x), b);

        // Inconsistent: x + y = 1, x + y = 2.
        let m2 = qq_mat(&[&[1, 1], &[1, 1]]);
        assert!(solve(&f, &m2, &[q(1), q(2)]).is_none());
        // Underdetermined consistent: returns a particular solution.
        let m3 = qq_mat(&[&[1, 1]]);
        let x3 = solve(&f, &m3, &[q(5)]).unwrap();
        assert_eq!(m3.mul_vec(&f, &x3), vec![q(5)]);
    }

    #[test]
    fn span_membership() {
        let f = RationalField;
        // Span of [[1,0],[0,1],[0,0]] is the z=0 plane.
        let a = qq_mat(&[&[1, 0], &[0, 1], &[0, 0]]);
        assert!(in_column_span(&f, &a, &[q(3), q(-2), q(0)]));
        assert!(!in_column_span(&f, &a, &[q(3), q(-2), q(1)]));
        // Every vector is in the span of a full-rank square matrix.
        let full = qq_mat(&[&[2, 1], &[1, 1]]);
        assert!(in_column_span(&f, &full, &[q(100), q(-100)]));
    }

    #[test]
    fn span_intersection_dims() {
        let f = RationalField;
        let xy = qq_mat(&[&[1, 0], &[0, 1], &[0, 0]]); // z = 0 plane
        let xz = qq_mat(&[&[1, 0], &[0, 0], &[0, 1]]); // y = 0 plane
        assert_eq!(span_intersection_dim(&f, &xy, &xz), 1); // the x axis
        assert_eq!(span_intersection_dim(&f, &xy, &xy), 2);
        let x = qq_mat(&[&[1], &[0], &[0]]);
        assert_eq!(span_intersection_dim(&f, &xy, &x), 1);
    }

    #[test]
    fn same_span_detection() {
        let f = RationalField;
        let a = qq_mat(&[&[1, 0], &[0, 1], &[0, 0]]);
        let b = qq_mat(&[&[1, 1], &[1, -1], &[0, 0]]); // same plane, different basis
        let c = qq_mat(&[&[1, 0], &[0, 0], &[0, 1]]);
        assert!(same_column_span(&f, &a, &b));
        assert!(!same_column_span(&f, &a, &c));
        assert_eq!(span_canonical_form(&f, &a), span_canonical_form(&f, &b));
        assert_ne!(span_canonical_form(&f, &a), span_canonical_form(&f, &c));
    }

    #[test]
    fn linear_solver_matches_direct_solve() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(71);
        let f = RationalField;
        for _ in 0..30 {
            let rows = rng.gen_range(1..=5);
            let cols = rng.gen_range(1..=5);
            let m = Matrix::from_fn(rows, cols, |_, _| q(rng.gen_range(-4i64..=4)));
            let solver = LinearSolver::new(f, &m);
            assert_eq!(solver.rank(), rank(&f, &m));
            for _ in 0..5 {
                let b: Vec<Rational> = (0..rows).map(|_| q(rng.gen_range(-4i64..=4))).collect();
                assert_eq!(
                    solver.solve(&b),
                    solve(&f, &m, &b),
                    "solver disagrees on m={m:?}, b={b:?}"
                );
                assert_eq!(solver.contains(&b), in_column_span(&f, &m, &b));
            }
        }
    }

    #[test]
    fn linear_solver_amortizes_on_gfp() {
        let f7 = PrimeField::new(7);
        let m = Matrix::from_vec(3, 2, vec![1u64, 2, 3, 4, 5, 6]);
        let solver = LinearSolver::new(f7, &m);
        assert_eq!(solver.rank(), 2);
        // b = first column: trivially in span.
        assert!(solver.contains(&[1, 3, 5]));
        // b outside the span: columns span a 2D subspace of GF(7)³.
        let outside = [1u64, 0, 0];
        assert_eq!(solver.contains(&outside), in_column_span(&f7, &m, &outside));
    }

    #[test]
    fn gf_p_elimination() {
        let f = PrimeField::new(5);
        // [[1,2],[3,4]] over GF(5): det = 4 - 6 = -2 = 3 mod 5.
        let m = Matrix::from_vec(2, 2, vec![1u64, 2, 3, 4]);
        assert_eq!(det(&f, &m), 3);
        assert_eq!(rank(&f, &m), 2);
        // [[1,2],[3,6]] has det 0 mod 5 (6 - 6).
        let s = Matrix::from_vec(2, 2, vec![1u64, 2, 3, 6 % 5]);
        assert!(is_singular(&f, &s));
    }

    #[test]
    fn rank_differs_across_fields() {
        // [[2, 0], [0, 2]] is invertible over Q but singular over GF(2).
        let zz = int_matrix(&[&[2, 0], &[0, 2]]);
        let f2 = PrimeField::new(2);
        let over_f2 = zz.map(|e| f2.reduce(e));
        assert_eq!(rank(&f2, &over_f2), 0);
        let qq = RationalField;
        let over_q = zz.map(|e| Rational::from(e.clone()));
        assert_eq!(rank(&qq, &over_q), 2);
    }
}
