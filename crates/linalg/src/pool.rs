//! Persistent work-stealing worker pool.
//!
//! [`crate::parallel::par_map`] used to spawn a fresh `crossbeam::scope`
//! per call — fine for one-shot determinants, wasteful for the
//! enumeration stack, which issues thousands of small CRT batches and
//! paid a thread spawn/join per batch. This module keeps one
//! process-wide pool of parked workers (grown lazily to the highest
//! concurrency any caller has requested, never shrunk) and hands them
//! *batches*: an atomic cursor over `0..n` plus a borrowed task closure.
//!
//! Design points:
//!
//! * **Submitter participates.** [`run`] pushes the batch on the injector
//!   queue, wakes the workers, then claims indices itself until the
//!   cursor is exhausted, and finally blocks on the batch's condvar until
//!   every claimed index has completed. Progress therefore never depends
//!   on pool capacity — with zero free workers the submitter simply runs
//!   the whole batch inline, which is also the 1-CPU behaviour.
//! * **Borrowed tasks, checked lifetime.** The task is a `&(dyn
//!   Fn(usize) + Sync)` whose lifetime is erased into a raw pointer. This
//!   is sound because `run` does not return until `completed == n`, and a
//!   worker only dereferences the pointer for an index it successfully
//!   claimed (`i < n`), which it then completes; after `run` returns no
//!   worker can observe an unclaimed index.
//! * **Nested calls run inline.** Worker threads are flagged via a
//!   thread-local; [`in_worker`] lets `par_map` detect
//!   parallelism-inside-parallelism (CRT inside an enumeration row) and
//!   degrade to a serial loop instead of deadlocking on, or
//!   oversubscribing, the same pool.
//! * **Panic containment.** Worker panics are caught, recorded on the
//!   batch, and re-raised in the submitter after the batch drains, so a
//!   panicking task cannot poison the long-lived workers.
use std::cell::Cell;
use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock};

use parking_lot::{Condvar, Mutex};

/// Hard cap on pool size, far above any sensible `CCMX_THREADS`.
const MAX_WORKERS: usize = 32;

thread_local! {
    static IN_WORKER: Cell<bool> = const { Cell::new(false) };
}

/// Is the current thread a pool worker (or a thread currently executing
/// a batch)? Used by `par_map`/`par_fold` to run nested calls inline.
pub fn in_worker() -> bool {
    IN_WORKER.with(|f| f.get())
}

/// Type-erased borrowed task pointer. See the module docs for the
/// lifetime argument; `Send + Sync` are sound because the pointee is
/// `Sync` and only ever shared, never mutated.
struct TaskPtr(*const (dyn Fn(usize) + Sync));
unsafe impl Send for TaskPtr {}
unsafe impl Sync for TaskPtr {}

/// One submitted parallel batch: indices `0..n` handed out by `cursor`,
/// drained when `completed == n`.
struct Batch {
    n: usize,
    /// Span open on the submitting thread when the batch was created;
    /// every executor segment (submitter or stolen worker) opens its
    /// span as a child of this id, so traces stay consistent across
    /// work stealing.
    parent_span: ccmx_obs::SpanId,
    /// Next unclaimed index (may run past `n`; claims test `i < n`).
    cursor: AtomicUsize,
    /// Indices fully executed. The release sequence on this counter is
    /// what publishes each worker's result writes to the submitter.
    completed: AtomicUsize,
    /// How many more pool workers may join (the submitter is not
    /// counted). Prevents a tiny batch from waking the whole pool.
    slots: AtomicUsize,
    panicked: AtomicBool,
    task: TaskPtr,
    done: Mutex<bool>,
    done_cv: Condvar,
}

impl Batch {
    /// Claim a join slot if the batch still has unclaimed work.
    fn try_join(&self) -> bool {
        if self.cursor.load(Ordering::Relaxed) >= self.n {
            return false;
        }
        self.slots
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |s| s.checked_sub(1))
            .is_ok()
    }

    /// Claim-and-run loop shared by workers and the submitter.
    /// `stolen` marks segments executed by pool workers (vs the
    /// submitting thread) for the steal counter.
    fn execute(&self, stolen: bool) {
        let task = unsafe { &*self.task.0 };
        let _seg = ccmx_obs::child_of("pool.exec", self.parent_span);
        let mut claimed = 0u64;
        loop {
            let i = self.cursor.fetch_add(1, Ordering::Relaxed);
            if i >= self.n {
                break;
            }
            claimed += 1;
            if catch_unwind(AssertUnwindSafe(|| task(i))).is_err() {
                self.panicked.store(true, Ordering::SeqCst);
            }
            // AcqRel: the release publishes this index's writes into the
            // counter's release sequence; the final increment's acquire
            // half (or the condvar mutex) hands them to the submitter.
            if self.completed.fetch_add(1, Ordering::AcqRel) + 1 == self.n {
                let mut g = self.done.lock();
                *g = true;
                self.done_cv.notify_all();
            }
        }
        // One relaxed add per segment, not per task: the hot path stays
        // a single atomic RMW on the cursor.
        if claimed > 0 {
            tasks_counter().add(claimed);
            if stolen {
                stolen_counter().add(claimed);
            }
        }
    }
}

struct Shared {
    queue: Mutex<VecDeque<Arc<Batch>>>,
    work_cv: Condvar,
}

struct Pool {
    shared: Arc<Shared>,
    /// Worker threads spawned so far (high-water mark, never shrinks).
    spawned: AtomicUsize,
    grow_lock: Mutex<()>,
}

/// Registry-backed pool counters. `ccmx_pool_tasks_total` counts every
/// executed index, `ccmx_pool_tasks_stolen_total` the subset run by pool
/// workers rather than the submitting thread, `ccmx_pool_batches_total`
/// submitted batches; `ccmx_pool_workers` mirrors the spawn high-water
/// mark as a gauge.
fn tasks_counter() -> &'static ccmx_obs::Counter {
    ccmx_obs::counter!("ccmx_pool_tasks_total")
}
fn stolen_counter() -> &'static ccmx_obs::Counter {
    ccmx_obs::counter!("ccmx_pool_tasks_stolen_total")
}
fn batches_counter() -> &'static ccmx_obs::Counter {
    ccmx_obs::counter!("ccmx_pool_batches_total")
}
fn workers_gauge() -> &'static ccmx_obs::Gauge {
    ccmx_obs::gauge!("ccmx_pool_workers")
}

fn global() -> &'static Pool {
    static POOL: OnceLock<Pool> = OnceLock::new();
    POOL.get_or_init(|| Pool {
        shared: Arc::new(Shared {
            queue: Mutex::new(VecDeque::new()),
            work_cv: Condvar::new(),
        }),
        spawned: AtomicUsize::new(0),
        grow_lock: Mutex::new(()),
    })
}

fn worker_loop(shared: Arc<Shared>) {
    IN_WORKER.with(|f| f.set(true));
    loop {
        let batch: Arc<Batch> = {
            let mut q = shared.queue.lock();
            loop {
                if let Some(b) = q.iter().find(|b| b.try_join()).cloned() {
                    break b;
                }
                shared.work_cv.wait(&mut q);
            }
        };
        batch.execute(true);
    }
}

impl Pool {
    /// Grow the pool to at least `want` workers (capped). Amortized
    /// no-op: after the high-water mark is reached no submission ever
    /// spawns again.
    fn ensure_workers(&self, want: usize) {
        let want = want.min(MAX_WORKERS);
        if self.spawned.load(Ordering::Acquire) >= want {
            return;
        }
        let _g = self.grow_lock.lock();
        let cur = self.spawned.load(Ordering::Acquire);
        for _ in cur..want {
            let shared = Arc::clone(&self.shared);
            std::thread::Builder::new()
                .name("ccmx-pool-worker".into())
                .spawn(move || worker_loop(shared))
                .expect("failed to spawn pool worker");
        }
        self.spawned.store(cur.max(want), Ordering::Release);
        workers_gauge().set(cur.max(want) as i64);
    }
}

/// `(workers_spawned, batches_submitted)` so far in this process. The
/// worker count reaching a plateau while batches keep climbing is the
/// observable form of "no per-call thread spawns".
///
/// Thin view over the shared [`ccmx_obs`] registry
/// (`ccmx_pool_workers`, `ccmx_pool_batches_total`; per-index execution
/// is `ccmx_pool_tasks_total` / `ccmx_pool_tasks_stolen_total`). The
/// worker count is structural (spawn high-water mark) and survives a
/// registry reset; the gauge is refreshed here so a scrape after a
/// reset still sees it.
pub fn pool_stats() -> (usize, u64) {
    let workers = global().spawned.load(Ordering::Relaxed);
    workers_gauge().set(workers as i64);
    (workers, batches_counter().get())
}

/// Run `task` for every index in `0..n` on the shared pool, using at
/// most `threads` concurrent executors (including the calling thread).
/// Blocks until every index has completed; propagates task panics.
///
/// Callers wanting a serial path (nested calls, `threads <= 1`) must
/// branch *before* calling — `run` always enqueues.
pub fn run(n: usize, threads: usize, task: &(dyn Fn(usize) + Sync)) {
    if n == 0 {
        return;
    }
    let pool = global();
    let helpers = threads.saturating_sub(1).min(n.saturating_sub(1));
    pool.ensure_workers(helpers);
    batches_counter().inc();
    let batch_span = ccmx_obs::span("pool.batch");
    // SAFETY: lifetime erasure, sound per the module docs — `run` does
    // not return until `completed == n`, and no worker dereferences the
    // pointer after completing its claimed indices.
    let task: &'static (dyn Fn(usize) + Sync) = unsafe { std::mem::transmute(task) };
    let batch = Arc::new(Batch {
        n,
        parent_span: batch_span.id(),
        cursor: AtomicUsize::new(0),
        completed: AtomicUsize::new(0),
        slots: AtomicUsize::new(helpers),
        panicked: AtomicBool::new(false),
        task: TaskPtr(task as *const (dyn Fn(usize) + Sync)),
        done: Mutex::new(false),
        done_cv: Condvar::new(),
    });
    if helpers > 0 {
        let mut q = pool.shared.queue.lock();
        q.push_back(Arc::clone(&batch));
        drop(q);
        pool.shared.work_cv.notify_all();
    }
    // The submitter is an executor too: mark it so tasks that call back
    // into par_map degrade to serial instead of re-entering the pool.
    let was_worker = IN_WORKER.with(|f| f.replace(true));
    batch.execute(false);
    IN_WORKER.with(|f| f.set(was_worker));
    {
        let mut g = batch.done.lock();
        while !*g {
            batch.done_cv.wait(&mut g);
        }
    }
    if helpers > 0 {
        let mut q = pool.shared.queue.lock();
        q.retain(|b| !Arc::ptr_eq(b, &batch));
    }
    if batch.panicked.load(Ordering::SeqCst) {
        panic!("pool task panicked");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn run_covers_every_index_exactly_once() {
        let hits: Vec<AtomicUsize> = (0..257).map(|_| AtomicUsize::new(0)).collect();
        run(hits.len(), 4, &|i| {
            hits[i].fetch_add(1, Ordering::SeqCst);
        });
        for (i, h) in hits.iter().enumerate() {
            assert_eq!(h.load(Ordering::SeqCst), 1, "index {i}");
        }
    }

    /// Every executor segment — whether run by the submitting thread or
    /// stolen by a pool worker — must parent its `pool.exec` span on the
    /// batch's submit-side `pool.batch` span, so traces stay a single
    /// tree across work stealing.
    #[test]
    fn stolen_segments_parent_on_the_submit_span() {
        let outer_id = {
            let outer = ccmx_obs::span("test.pool.outer");
            // Slow tasks so pool workers have time to steal segments.
            run(64, 4, &|_| {
                std::thread::sleep(std::time::Duration::from_micros(200));
            });
            outer.id()
        };
        let spans = ccmx_obs::recent_spans();
        // Other tests in this binary run pools concurrently; our batch is
        // the one parented on our unique outer span.
        let batch = spans
            .iter()
            .find(|s| s.name == "pool.batch" && s.parent == outer_id)
            .expect("pool.batch span recorded under the outer span");
        let segs: Vec<_> = spans
            .iter()
            .filter(|s| s.name == "pool.exec" && s.parent == batch.id)
            .collect();
        assert!(
            !segs.is_empty(),
            "at least one executor segment parented on the batch span"
        );
        // The submitter participates, so its thread recorded one segment;
        // with slow tasks and 4 threads, workers steal the rest on other
        // threads. Either way every segment shares the same parent —
        // assert the cross-thread case when it occurred.
        let threads: std::collections::BTreeSet<u64> = segs.iter().map(|s| s.thread).collect();
        if threads.len() > 1 {
            assert!(segs.iter().any(|s| s.thread != batch.thread));
        }
    }

    #[test]
    fn pool_reuses_workers_across_batches() {
        run(8, 4, &|_| {});
        let (workers_before, batches_before) = pool_stats();
        for _ in 0..16 {
            run(8, 4, &|_| {});
        }
        let (workers_after, batches_after) = pool_stats();
        assert_eq!(
            workers_after, workers_before,
            "repeat batches must not spawn new workers"
        );
        assert!(batches_after >= batches_before + 16);
    }

    #[test]
    fn nested_run_detected_as_worker_context() {
        let saw_nested = AtomicBool::new(false);
        run(4, 4, &|_| {
            if in_worker() {
                saw_nested.store(true, Ordering::SeqCst);
            }
        });
        assert!(saw_nested.load(Ordering::SeqCst));
        assert!(!in_worker(), "flag must be restored after run");
    }

    #[test]
    fn panicking_task_propagates_without_poisoning_pool() {
        let result = std::panic::catch_unwind(|| {
            run(8, 4, &|i| {
                if i == 3 {
                    panic!("boom");
                }
            });
        });
        assert!(result.is_err());
        // Pool still serves batches afterwards.
        let count = AtomicUsize::new(0);
        run(8, 4, &|_| {
            count.fetch_add(1, Ordering::SeqCst);
        });
        assert_eq!(count.load(Ordering::SeqCst), 8);
    }
}
