//! Algebraic structure traits.
//!
//! A *ring object* carries ambient context (e.g. the prime `p` of GF(p))
//! while elements are plain data. All elimination and decomposition
//! algorithms in this crate are generic over these traits, so the same
//! code path decides rank over ℚ for the lemma checkers and over GF(p)
//! for the randomized protocol.

use std::fmt::Debug;

use ccmx_bigint::modular::{add_mod_u64, inv_mod_u64, mul_mod_u64, sub_mod_u64};
use ccmx_bigint::{Integer, Rational};

/// A commutative ring with identity.
pub trait Ring: Sync {
    /// Element type. Plain data; any context lives in the ring object.
    type Elem: Clone + PartialEq + Debug + Send + Sync;

    /// Additive identity.
    fn zero(&self) -> Self::Elem;
    /// Multiplicative identity.
    fn one(&self) -> Self::Elem;
    /// `a + b`.
    fn add(&self, a: &Self::Elem, b: &Self::Elem) -> Self::Elem;
    /// `a - b`.
    fn sub(&self, a: &Self::Elem, b: &Self::Elem) -> Self::Elem;
    /// `a * b`.
    fn mul(&self, a: &Self::Elem, b: &Self::Elem) -> Self::Elem;
    /// `-a`.
    fn neg(&self, a: &Self::Elem) -> Self::Elem;
    /// Is `a` the additive identity?
    fn is_zero(&self, a: &Self::Elem) -> bool {
        *a == self.zero()
    }
    /// Embed a small integer.
    #[allow(clippy::wrong_self_convention)]
    fn from_i64(&self, v: i64) -> Self::Elem;
    /// `a + b*c`, the fused kernel of elimination inner loops.
    fn add_mul(&self, a: &Self::Elem, b: &Self::Elem, c: &Self::Elem) -> Self::Elem {
        self.add(a, &self.mul(b, c))
    }
}

/// An integral domain supporting exact division (used by Bareiss).
pub trait ExactDivisionRing: Ring {
    /// `a / b`, panicking if `b` does not divide `a` exactly.
    fn exact_div(&self, a: &Self::Elem, b: &Self::Elem) -> Self::Elem;
}

/// A field.
pub trait Field: Ring {
    /// Multiplicative inverse; `None` for zero.
    fn inv(&self, a: &Self::Elem) -> Option<Self::Elem>;
    /// `a / b`; panics if `b` is zero.
    fn div(&self, a: &Self::Elem, b: &Self::Elem) -> Self::Elem {
        self.mul(a, &self.inv(b).expect("division by zero field element"))
    }
}

// ----------------------------------------------------------------------
// ℤ
// ----------------------------------------------------------------------

/// The ring of integers ℤ, with [`Integer`] elements.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct IntegerRing;

impl Ring for IntegerRing {
    type Elem = Integer;

    fn zero(&self) -> Integer {
        Integer::zero()
    }
    fn one(&self) -> Integer {
        Integer::one()
    }
    fn add(&self, a: &Integer, b: &Integer) -> Integer {
        a + b
    }
    fn sub(&self, a: &Integer, b: &Integer) -> Integer {
        a - b
    }
    fn mul(&self, a: &Integer, b: &Integer) -> Integer {
        a * b
    }
    fn neg(&self, a: &Integer) -> Integer {
        -a
    }
    fn is_zero(&self, a: &Integer) -> bool {
        a.is_zero()
    }
    fn from_i64(&self, v: i64) -> Integer {
        Integer::from(v)
    }
}

impl ExactDivisionRing for IntegerRing {
    fn exact_div(&self, a: &Integer, b: &Integer) -> Integer {
        let (q, r) = a.div_rem(b);
        assert!(r.is_zero(), "exact_div: {b:?} does not divide {a:?}");
        q
    }
}

// ----------------------------------------------------------------------
// ℚ
// ----------------------------------------------------------------------

/// The field of rationals ℚ, with [`Rational`] elements.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RationalField;

impl Ring for RationalField {
    type Elem = Rational;

    fn zero(&self) -> Rational {
        Rational::zero()
    }
    fn one(&self) -> Rational {
        Rational::one()
    }
    fn add(&self, a: &Rational, b: &Rational) -> Rational {
        a + b
    }
    fn sub(&self, a: &Rational, b: &Rational) -> Rational {
        a - b
    }
    fn mul(&self, a: &Rational, b: &Rational) -> Rational {
        a * b
    }
    fn neg(&self, a: &Rational) -> Rational {
        -a
    }
    fn is_zero(&self, a: &Rational) -> bool {
        a.is_zero()
    }
    fn from_i64(&self, v: i64) -> Rational {
        Rational::from(Integer::from(v))
    }
}

impl Field for RationalField {
    fn inv(&self, a: &Rational) -> Option<Rational> {
        (!a.is_zero()).then(|| a.recip())
    }
}

// ----------------------------------------------------------------------
// GF(p)
// ----------------------------------------------------------------------

/// The prime field GF(p) for a `u64` prime `p`, with `u64` elements in
/// `[0, p)`. The hot path of the modular rank engine and of the randomized
/// singularity protocol.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PrimeField {
    p: u64,
}

impl PrimeField {
    /// Construct GF(p). Panics if `p < 2`. (Primality is the caller's
    /// responsibility; a composite modulus silently yields ℤ/m which is
    /// *not* a field — `inv` may then return `None` for nonzero elements.)
    pub fn new(p: u64) -> Self {
        assert!(p >= 2, "PrimeField modulus must be >= 2");
        PrimeField { p }
    }

    /// The modulus.
    #[inline]
    pub fn modulus(&self) -> u64 {
        self.p
    }

    /// Reduce an arbitrary [`Integer`] into the field.
    pub fn reduce(&self, a: &Integer) -> u64 {
        ccmx_bigint::modular::reduce_integer_u64(a, self.p)
    }
}

impl Ring for PrimeField {
    type Elem = u64;

    #[inline]
    fn zero(&self) -> u64 {
        0
    }
    #[inline]
    fn one(&self) -> u64 {
        1 % self.p
    }
    #[inline]
    fn add(&self, a: &u64, b: &u64) -> u64 {
        add_mod_u64(*a, *b, self.p)
    }
    #[inline]
    fn sub(&self, a: &u64, b: &u64) -> u64 {
        sub_mod_u64(*a, *b, self.p)
    }
    #[inline]
    fn mul(&self, a: &u64, b: &u64) -> u64 {
        mul_mod_u64(*a, *b, self.p)
    }
    #[inline]
    fn neg(&self, a: &u64) -> u64 {
        if *a == 0 {
            0
        } else {
            self.p - *a
        }
    }
    #[inline]
    fn is_zero(&self, a: &u64) -> bool {
        *a == 0
    }
    fn from_i64(&self, v: i64) -> u64 {
        if v >= 0 {
            v as u64 % self.p
        } else {
            let r = v.unsigned_abs() % self.p;
            if r == 0 {
                0
            } else {
                self.p - r
            }
        }
    }
}

impl Field for PrimeField {
    #[inline]
    fn inv(&self, a: &u64) -> Option<u64> {
        if *a == 0 {
            None
        } else {
            inv_mod_u64(*a, self.p)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn integer_ring_ops() {
        let zz = IntegerRing;
        let a = zz.from_i64(6);
        let b = zz.from_i64(-4);
        assert_eq!(zz.add(&a, &b), zz.from_i64(2));
        assert_eq!(zz.mul(&a, &b), zz.from_i64(-24));
        assert_eq!(zz.exact_div(&zz.from_i64(-24), &a), b);
        assert!(zz.is_zero(&zz.sub(&a, &a)));
        assert_eq!(zz.add_mul(&a, &b, &b), zz.from_i64(22));
    }

    #[test]
    #[should_panic(expected = "exact_div")]
    fn integer_exact_div_rejects_inexact() {
        let zz = IntegerRing;
        let _ = zz.exact_div(&zz.from_i64(7), &zz.from_i64(2));
    }

    #[test]
    fn rational_field_ops() {
        let qq = RationalField;
        let half = qq.div(&qq.one(), &qq.from_i64(2));
        assert_eq!(qq.add(&half, &half), qq.one());
        assert_eq!(qq.inv(&qq.zero()), None);
        assert_eq!(
            qq.inv(&qq.from_i64(4)).unwrap(),
            Rational::new(Integer::one(), Integer::from(4i64))
        );
    }

    #[test]
    fn prime_field_table_small() {
        let f5 = PrimeField::new(5);
        for a in 0..5u64 {
            for b in 0..5u64 {
                assert_eq!(f5.add(&a, &b), (a + b) % 5);
                assert_eq!(f5.sub(&a, &b), (a + 5 - b) % 5);
                assert_eq!(f5.mul(&a, &b), (a * b) % 5);
            }
            assert_eq!(f5.add(&a, &f5.neg(&a)), 0);
        }
        for a in 1..5u64 {
            assert_eq!(f5.mul(&a, &f5.inv(&a).unwrap()), 1);
        }
        assert_eq!(f5.inv(&0), None);
    }

    #[test]
    fn prime_field_reduce_signed() {
        let f7 = PrimeField::new(7);
        assert_eq!(f7.reduce(&Integer::from(-1i64)), 6);
        assert_eq!(f7.reduce(&Integer::from(14i64)), 0);
        assert_eq!(f7.from_i64(-1), 6);
        assert_eq!(f7.from_i64(-8), 6);
        assert_eq!(f7.from_i64(7), 0);
    }

    #[test]
    fn gf2_is_supported() {
        let f2 = PrimeField::new(2);
        assert_eq!(f2.one(), 1);
        assert_eq!(f2.add(&1, &1), 0);
        assert_eq!(f2.inv(&1), Some(1));
    }
}
