//! Data-parallel kernels on the persistent worker pool.
//!
//! Following the workspace's hpc-parallel guidance: row-blocked matrix
//! multiplication and a generic parallel map over index ranges, used by
//! the truth-matrix enumerators in `ccmx-comm` and the CRT determinant in
//! [`crate::modular`]. Work is handed out via an atomic cursor so threads
//! self-balance on irregular per-row costs (bigint entry sizes vary).
//!
//! Since the kernel-engine rework the executors come from
//! [`crate::pool`] — a lazily grown, process-wide pool of parked worker
//! threads — instead of a fresh `crossbeam::scope` per call, so a tight
//! loop of small `par_map` batches (the CRT enumeration pattern) costs
//! zero thread spawns after warm-up. Calls made *from inside* a pool
//! task run serially inline: nested parallelism (CRT inside an
//! enumeration row) must not oversubscribe the machine.

use crate::matrix::Matrix;
use crate::pool;
use crate::ring::Ring;

/// Parse a `CCMX_THREADS`-style override: positive integer, capped to
/// the pool's practical maximum. `None` on unset, empty or garbage.
fn threads_override(raw: Option<&str>) -> Option<usize> {
    raw.and_then(|s| s.trim().parse::<usize>().ok())
        .filter(|&n| n >= 1)
        .map(|n| n.min(64))
}

/// Number of worker threads to use by default: the `CCMX_THREADS`
/// environment variable when set (for reproducible benches and CI),
/// otherwise the available parallelism capped to 8 (the kernels here
/// saturate memory bandwidth quickly).
pub fn default_threads() -> usize {
    if let Some(n) = threads_override(std::env::var("CCMX_THREADS").ok().as_deref()) {
        return n;
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .min(8)
}

/// Parallel map over `0..n`: applies `f` to every index on the shared
/// worker pool and returns the results in index order.
///
/// Scheduling is work-stealing via a shared atomic cursor: each executor
/// claims the next unclaimed index, so wildly uneven per-index costs
/// (CRT residue batches, variable bigint row weights) never idle a
/// thread behind a static chunk boundary. Results are written lock-free:
/// the cursor hands each index to exactly one executor, so each slot has
/// a unique writer, and the batch completion protocol orders all writes
/// before this thread reads them back.
///
/// `f` must be `Sync` (shared across workers by reference).
pub fn par_map<T, F>(n: usize, threads: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    if n == 0 {
        return Vec::new();
    }
    if threads <= 1 || n == 1 || pool::in_worker() {
        return (0..n).map(f).collect();
    }
    let mut slots: Vec<Option<T>> = (0..n).map(|_| None).collect();

    struct SlotWriter<T>(*mut Option<T>);
    // SAFETY: workers write disjoint slots (unique index from the cursor).
    unsafe impl<T: Send> Sync for SlotWriter<T> {}
    let writer = SlotWriter(slots.as_mut_ptr());
    let writer_ref = &writer;

    pool::run(n, threads, &|i| {
        let v = f(i);
        // SAFETY: `i < n` is in bounds and no other executor ever
        // receives the same `i`; batch completion publishes the write.
        unsafe { *writer_ref.0.add(i) = Some(v) };
    });
    slots
        .into_iter()
        .map(|slot| slot.expect("all slots filled"))
        .collect()
}

/// Two-dimensional parallel map over the grid `0..n0 × 0..n1`, results
/// flattened row-major (`i0 * n1 + i1`). The whole grid shares one
/// atomic cursor, so *both* dimensions balance together: a worker
/// finishing its share of one `i0` immediately steals cells of another,
/// which is what lets the CRT reduction split work by prime × entry
/// chunk instead of per prime only.
pub fn par_map2<T, F>(n0: usize, n1: usize, threads: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize, usize) -> T + Sync,
{
    if n1 == 0 {
        return Vec::new();
    }
    par_map(n0 * n1, threads, |i| f(i / n1, i % n1))
}

/// Parallel fold: maps `f` over `0..n` and combines results with `merge`
/// starting from `init` (combination order is unspecified; `merge` must be
/// associative and commutative).
///
/// Implemented as a chunked [`par_map`]: each executor folds a
/// contiguous index range locally, and the per-chunk partials are merged
/// on the calling thread — one allocation of `O(threads)` partials, no
/// shared accumulator lock in the hot loop.
pub fn par_fold<T, F, M>(n: usize, threads: usize, init: T, f: F, merge: M) -> T
where
    T: Send + Clone,
    F: Fn(usize) -> T + Sync,
    M: Fn(T, T) -> T + Sync + Send + Copy,
{
    if threads <= 1 || n <= 1 || pool::in_worker() {
        return (0..n).map(f).fold(init, merge);
    }
    // More chunks than executors so the atomic cursor can still balance
    // moderately skewed per-index costs.
    let chunks = (threads * 4).min(n);
    let partials = par_map(chunks, threads, |c| {
        let lo = c * n / chunks;
        let hi = (c + 1) * n / chunks;
        (lo..hi).map(&f).fold(None, |acc: Option<T>, v| {
            Some(match acc {
                None => v,
                Some(a) => merge(a, v),
            })
        })
    });
    partials.into_iter().flatten().fold(init, merge)
}

/// Row-parallel matrix multiplication over any ring.
pub fn par_matmul<R: Ring>(
    ring: &R,
    a: &Matrix<R::Elem>,
    b: &Matrix<R::Elem>,
    threads: usize,
) -> Matrix<R::Elem> {
    assert_eq!(a.cols(), b.rows(), "matmul dimension mismatch");
    let rows = par_map(a.rows(), threads, |i| {
        let mut row = Vec::with_capacity(b.cols());
        for j in 0..b.cols() {
            let mut acc = ring.zero();
            for k in 0..a.cols() {
                acc = ring.add_mul(&acc, &a[(i, k)], &b[(k, j)]);
            }
            row.push(acc);
        }
        row
    });
    Matrix::from_vec(a.rows(), b.cols(), rows.into_iter().flatten().collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrix::int_matrix;
    use crate::ring::{IntegerRing, PrimeField};
    use ccmx_bigint::Integer;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn par_map_preserves_order() {
        let out = par_map(100, 4, |i| i * i);
        assert_eq!(out, (0..100).map(|i| i * i).collect::<Vec<_>>());
        assert!(par_map(0, 4, |i| i).is_empty());
        assert_eq!(par_map(1, 4, |i| i + 7), vec![7]);
    }

    #[test]
    fn par_map_balances_skewed_work() {
        // One pathological index costs ~1000× the rest. Work-stealing
        // must still return correct, ordered results (a static chunker
        // would too, but slower — correctness under skew is what a unit
        // test can pin; the timing shows up in the benches).
        use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
        let light_started = AtomicUsize::new(0);
        let overlapped = AtomicBool::new(false);
        let spin = |iters: u64| {
            let mut acc = 0u64;
            for i in 0..iters {
                acc = acc.wrapping_mul(6364136223846793005).wrapping_add(i);
            }
            acc
        };
        let out = par_map(64, 4, |i| {
            if i == 0 {
                // The heavy item stays busy until a light item has been
                // picked up by another worker (bounded wait, so a broken
                // scheduler fails the assert instead of hanging).
                let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
                while light_started.load(Ordering::SeqCst) == 0
                    && std::time::Instant::now() < deadline
                {
                    std::hint::spin_loop();
                }
                if light_started.load(Ordering::SeqCst) > 0 {
                    overlapped.store(true, Ordering::SeqCst);
                }
            } else {
                light_started.fetch_add(1, Ordering::SeqCst);
            }
            (i, spin(2_000))
        });
        for (i, (idx, val)) in out.iter().enumerate() {
            assert_eq!(*idx, i);
            assert_eq!(*val, spin(2_000));
        }
        // The light indices must have run while index 0 was still busy.
        assert!(
            overlapped.load(Ordering::SeqCst),
            "workers never overlapped"
        );
    }

    #[test]
    fn par_map_runs_serially_inside_pool_tasks() {
        // A nested par_map must not re-enter the pool (oversubscription /
        // deadlock risk); the inner call degrades to a serial loop on the
        // executing thread.
        let nested = par_map(4, 4, |i| par_map(3, 4, move |j| i * 10 + j));
        for (i, inner) in nested.iter().enumerate() {
            assert_eq!(*inner, vec![i * 10, i * 10 + 1, i * 10 + 2]);
        }
    }

    #[test]
    fn par_map2_flattens_row_major() {
        let out = par_map2(5, 7, 4, |i, j| (i, j));
        assert_eq!(out.len(), 35);
        for (idx, &(i, j)) in out.iter().enumerate() {
            assert_eq!((i, j), (idx / 7, idx % 7));
        }
        assert!(par_map2(0, 7, 4, |i, j| i + j).is_empty());
        assert!(par_map2(7, 0, 4, |i, j| i + j).is_empty());
        assert_eq!(par_map2(1, 1, 1, |i, j| i + j), vec![0]);
    }

    #[test]
    fn par_fold_sums() {
        let total = par_fold(1000, 4, 0u64, |i| i as u64, |a, b| a + b);
        assert_eq!(total, 999 * 1000 / 2);
        let serial = par_fold(1000, 1, 0u64, |i| i as u64, |a, b| a + b);
        assert_eq!(serial, total);
    }

    #[test]
    fn par_fold_with_nonzero_init_and_tiny_n() {
        assert_eq!(par_fold(0, 4, 5u64, |i| i as u64, |a, b| a + b), 5);
        assert_eq!(par_fold(1, 4, 5u64, |i| i as u64 + 1, |a, b| a + b), 6);
        assert_eq!(par_fold(3, 8, 0u64, |i| i as u64, |a, b| a + b), 3);
    }

    #[test]
    fn threads_override_parsing() {
        assert_eq!(threads_override(None), None);
        assert_eq!(threads_override(Some("")), None);
        assert_eq!(threads_override(Some("abc")), None);
        assert_eq!(threads_override(Some("0")), None);
        assert_eq!(threads_override(Some("1")), Some(1));
        assert_eq!(threads_override(Some(" 6 ")), Some(6));
        assert_eq!(threads_override(Some("9999")), Some(64));
    }

    #[test]
    fn par_matmul_matches_serial() {
        let mut rng = StdRng::seed_from_u64(55);
        let zz = IntegerRing;
        let a = Matrix::from_fn(7, 5, |_, _| Integer::from(rng.gen_range(-9i64..=9)));
        let b = Matrix::from_fn(5, 6, |_, _| Integer::from(rng.gen_range(-9i64..=9)));
        let serial = a.mul(&zz, &b);
        for threads in [1, 2, 4] {
            assert_eq!(par_matmul(&zz, &a, &b, threads), serial);
        }
    }

    #[test]
    fn par_matmul_gfp() {
        let f = PrimeField::new(101);
        let a = Matrix::from_fn(8, 8, |i, j| ((i * 13 + j * 29) % 101) as u64);
        let b = Matrix::from_fn(8, 8, |i, j| ((i * 7 + j * 3) % 101) as u64);
        assert_eq!(par_matmul(&f, &a, &b, 4), a.mul(&f, &b));
    }

    #[test]
    fn identity_preserved_in_parallel() {
        let zz = IntegerRing;
        let m = int_matrix(&[&[1, 2, 3], &[4, 5, 6], &[7, 8, 9]]);
        let i = Matrix::identity(&zz, 3);
        assert_eq!(par_matmul(&zz, &m, &i, 3), m);
    }
}
