//! CRT-certified exact rank, nullspace, span and solve over ℚ for
//! integer matrices — the fast path of every lemma verifier.
//!
//! Strategy: run the Montgomery elimination kernel
//! ([`crate::montgomery`]) modulo enough 61-bit primes that the product
//! exceeds twice the square of the Hadamard bound on the input's minors,
//! CRT-combine the residues, recover the rational RREF entries by
//! rational reconstruction, and then **certify** the result with exact
//! integer arithmetic:
//!
//! * a nullspace candidate `v` is accepted only after verifying
//!   `M·v = 0` over ℤ (denominators cleared) — together with one prime
//!   exhibiting rank `r`, this pins `rank_ℚ(M) = r` exactly (the modular
//!   rank is a lower bound via a nonzero minor; the verified independent
//!   nullspace vectors force `rank ≤ r` by rank–nullity);
//! * a solve candidate `x` is accepted only after verifying `A·x = b`
//!   over ℤ.
//!
//! Results are therefore *never heuristic*: every `try_*` function
//! either returns a certified-exact answer or `None`, and the `*_int`
//! wrappers fall back to rational Gaussian elimination (the original
//! oracle, kept bit-for-bit) when certification fails — which the
//! fallback counters make observable.

use ccmx_bigint::bounds::hadamard_bound;
use ccmx_bigint::modular::inv_mod_u64;
use ccmx_bigint::prime::next_prime;
use ccmx_bigint::{Integer, Natural, Rational};
use std::collections::BTreeMap;
use std::sync::OnceLock;

use crate::gauss;
use crate::matrix::Matrix;
use crate::montgomery::{self, ModEchelon};
use crate::parallel::{default_threads, par_map};
use crate::ring::RationalField;

// ----------------------------------------------------------------------
// Backend identification (cache keys, reports, observability)
// ----------------------------------------------------------------------

/// Which exact-arithmetic backend produced (or would produce) a result.
/// Downstream caches key on [`Backend::id`] so entries computed by
/// different engines can never be confused across an upgrade.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Backend {
    /// Gaussian elimination over ℚ with full `Rational` arithmetic.
    RationalGauss,
    /// Fraction-free integer elimination.
    Bareiss,
    /// Montgomery-kernel multi-prime CRT with exact certification.
    MontgomeryCrt,
}

impl Backend {
    /// Stable string identifier (wire-safe, cache-key-safe).
    pub fn id(self) -> &'static str {
        match self {
            Backend::RationalGauss => "rational",
            Backend::Bareiss => "bareiss",
            Backend::MontgomeryCrt => "crt",
        }
    }
}

/// The backend the certified fast path runs on. Bound computations that
/// memoize results include this in their cache keys.
pub fn active_backend() -> Backend {
    Backend::MontgomeryCrt
}

/// Registry-backed counter of certified fast-path results
/// (`ccmx_crt_certified_total`).
fn certified_counter() -> &'static ccmx_obs::Counter {
    ccmx_obs::counter!("ccmx_crt_certified_total")
}

/// Registry-backed counter of rational-Gauss fallbacks
/// (`ccmx_crt_fallback_total`).
fn fallback_counter() -> &'static ccmx_obs::Counter {
    ccmx_obs::counter!("ccmx_crt_fallback_total")
}

/// `(certified_fast_path_results, rational_fallbacks)` so far in this
/// process — the fallback rate should be ~0 in healthy operation.
///
/// Thin view over the shared [`ccmx_obs`] registry: the same numbers are
/// exported as `ccmx_crt_certified_total` / `ccmx_crt_fallback_total`.
pub fn fast_path_stats() -> (u64, u64) {
    (certified_counter().get(), fallback_counter().get())
}

/// Content fingerprint of an integer matrix: FNV-1a 64 over the shape
/// and the canonical decimal rendering of every entry in row-major
/// order. Stable across processes and backends, so it can key persisted
/// certified verdicts (the store's CRT keyspace) — two matrices with
/// the same fingerprint are, for cache purposes, the same matrix.
pub fn matrix_fingerprint(m: &Matrix<Integer>) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut eat = |bytes: &[u8]| {
        for &b in bytes {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    };
    eat(&(m.rows() as u64).to_le_bytes());
    eat(&(m.cols() as u64).to_le_bytes());
    for e in m.data() {
        eat(e.to_string().as_bytes());
        eat(b";");
    }
    h
}

// ----------------------------------------------------------------------
// Prime pool
// ----------------------------------------------------------------------

/// All CRT primes are drawn from `[2^59, 2^60)`: odd, Montgomery-lazy
/// compatible, below the grouped-REDC ceiling (so every per-prime
/// elimination takes the blocked communication-avoiding kernel), and big
/// enough that a handful covers any minor bound the verifiers produce.
/// The pool is grown lazily and shared process-wide.
fn with_primes<T>(f: impl FnOnce(&mut Vec<u64>) -> T) -> T {
    static POOL: OnceLock<parking_lot::Mutex<Vec<u64>>> = OnceLock::new();
    let pool = POOL.get_or_init(|| parking_lot::Mutex::new(vec![next_prime(1 << 59)]));
    f(&mut pool.lock())
}

/// Consecutive pool primes starting at `offset` whose product exceeds
/// `target`.
fn plan_primes(target: &Natural, offset: usize) -> Vec<u64> {
    with_primes(|pool| {
        let mut out = Vec::new();
        let mut product = Natural::one();
        let mut i = offset;
        while product <= *target {
            while pool.len() <= i {
                let next = next_prime(pool.last().unwrap() + 1);
                assert!(next < montgomery::MAX_MODULUS, "prime pool exhausted");
                pool.push(next);
            }
            let p = pool[i];
            out.push(p);
            product = product * Natural::from(p);
            i += 1;
        }
        out
    })
}

/// The `i`-th pool prime (for single-prime probes).
fn pool_prime(i: usize) -> u64 {
    with_primes(|pool| {
        while pool.len() <= i {
            let next = next_prime(pool.last().unwrap() + 1);
            pool.push(next);
        }
        pool[i]
    })
}

/// Largest entry magnitude of `m` (at least 1).
fn entry_bound(m: &Matrix<Integer>) -> Natural {
    m.data()
        .iter()
        .map(|e| e.magnitude().clone())
        .max()
        .unwrap_or_else(Natural::one)
        .max(Natural::one())
}

/// `2·H²` where `H` is the Hadamard bound on `d × d` minors of a matrix
/// with entries bounded by `bound` — the modulus target that makes
/// rational reconstruction of RREF entries (quotients of minors) unique.
fn reconstruction_target(d: usize, bound: &Natural) -> (Natural, Natural) {
    let h = hadamard_bound(d, bound);
    let target = &(&h * &h) << 1u64;
    (h, target)
}

// ----------------------------------------------------------------------
// CRT reconstruction of the rational RREF
// ----------------------------------------------------------------------

/// The reconstructed (not yet verified) rational RREF structure.
struct QRref {
    rank: usize,
    pivot_cols: Vec<usize>,
    /// Rows `0..rank` of each **non-pivot** column of the RREF over ℚ.
    cols: BTreeMap<usize, Vec<Rational>>,
}

/// Residue RREFs mod each prime: one batched reduction pass over the
/// bigint matrix ([`crate::engine::ResiduePlan`]), itself fanned out in
/// the 2D prime × entry-chunk decomposition, then the per-prime
/// eliminations fan out over the pre-reduced residue matrices on the
/// worker pool (elimination is sequential per prime, so the prime axis
/// is its natural split).
fn rref_residues(m: &Matrix<Integer>, primes: &[u64], threads: usize) -> Vec<ModEchelon> {
    let mut plan = crate::engine::ResiduePlan::new(primes);
    let residues = plan.reduce_matrix_par(m, threads);
    let fields = plan.fields();
    let (rows, cols) = (m.rows(), m.cols());
    par_map(primes.len(), threads, |i| {
        montgomery::echelon_from_residues(&fields[i], rows, cols, &residues[i])
    })
}

/// Choose the reference echelon structure: maximum rank, then
/// lexicographically smallest pivot set (bad primes can only lose rank
/// or push pivots rightward). Returns indices of the matching residues.
fn consistent_subset(rrefs: &[ModEchelon]) -> Vec<usize> {
    // Compare by reference — no pivot-set clones per comparison.
    fn key(e: &ModEchelon) -> (std::cmp::Reverse<usize>, &[usize]) {
        (std::cmp::Reverse(e.rank()), &e.pivot_cols)
    }
    let best = rrefs
        .iter()
        .min_by(|a, b| key(a).cmp(&key(b)))
        .expect("at least one residue");
    rrefs
        .iter()
        .enumerate()
        .filter(|(_, e)| key(e) == key(best))
        .map(|(i, _)| i)
        .collect()
}

/// Reconstruct the rational RREF of `m` from modular images: rank, pivot
/// columns, and every non-pivot column (rows `0..rank`). `None` when the
/// prime windows keep disagreeing or a reconstruction fails — callers
/// fall back; exactness is certified by the *caller's* integer check.
fn reconstruct_rref(m: &Matrix<Integer>, threads: usize) -> Option<QRref> {
    let d = m.rows().min(m.cols());
    let bound = entry_bound(m);
    let (minor_bound, target) = reconstruction_target(d, &bound);

    let mut offset = 0usize;
    for _attempt in 0..3 {
        let primes = plan_primes(&target, offset);
        let used = primes.len();
        let rrefs = rref_residues(m, &primes, threads);
        let keep = consistent_subset(&rrefs);
        let modulus = keep
            .iter()
            .fold(Natural::one(), |acc, &i| acc * Natural::from(rrefs[i].p));
        if modulus <= target {
            // A deviant prime shrank the window below the bound: shift
            // to a fresh window and retry (astronomically rare).
            offset += used;
            continue;
        }
        let kept: Vec<&ModEchelon> = keep.iter().map(|&i| &rrefs[i]).collect();
        if let Some(q) = combine_and_reconstruct(&kept, &modulus, &minor_bound, m.cols()) {
            return Some(q);
        }
        offset += used;
    }
    None
}

/// Garner-style combination: precompute the CRT basis `c_i = M_i ·
/// (M_i^{-1} mod p_i)` once, then each entry is `Σ r_i·c_i mod M`.
fn combine_and_reconstruct(
    rrefs: &[&ModEchelon],
    modulus: &Natural,
    minor_bound: &Natural,
    cols: usize,
) -> Option<QRref> {
    let pivot_cols = rrefs[0].pivot_cols.clone();
    let rank = pivot_cols.len();
    let basis: Vec<Natural> = rrefs
        .iter()
        .map(|e| {
            let mi = modulus / &Natural::from(e.p);
            let mi_mod = (&mi % &Natural::from(e.p)).to_u64().expect("fits u64");
            let inv = inv_mod_u64(mi_mod, e.p).expect("coprime CRT moduli");
            mi * Natural::from(inv)
        })
        .collect();
    let reconstruct_entry = |row: usize, col: usize| -> Option<Rational> {
        let mut acc = Natural::zero();
        for (e, c) in rrefs.iter().zip(&basis) {
            let r = e.rref[(row, col)];
            if r != 0 {
                acc += c * &Natural::from(r);
            }
        }
        let x = &acc % modulus;
        crate::dixon::rational_reconstruct(&x, modulus, minor_bound)
    };
    let mut out = BTreeMap::new();
    let pivot_set: Vec<bool> = {
        let mut v = vec![false; cols];
        for &pc in &pivot_cols {
            v[pc] = true;
        }
        v
    };
    for (col, &is_pivot) in pivot_set.iter().enumerate() {
        if is_pivot {
            continue;
        }
        let mut entries = Vec::with_capacity(rank);
        for row in 0..rank {
            entries.push(reconstruct_entry(row, col)?);
        }
        out.insert(col, entries);
    }
    Some(QRref {
        rank,
        pivot_cols,
        cols: out,
    })
}

/// Clear denominators: `v·lcm(denoms)` as integers, plus the scale.
fn clear_denominators(v: &[Rational]) -> (Vec<Integer>, Natural) {
    let scale = v.iter().fold(Natural::one(), |acc, r| {
        ccmx_bigint::gcd::lcm(&acc, r.denominator())
    });
    let scale_q = Rational::from(Integer::from(scale.clone()));
    let ints = v
        .iter()
        .map(|r| (r * &scale_q).to_integer().expect("lcm clears denominator"))
        .collect();
    (ints, scale)
}

/// Does `m · v = 0` hold exactly (integer arithmetic, denominators
/// cleared)? The certification step of the nullspace fast path.
fn verify_in_kernel(m: &Matrix<Integer>, v: &[Rational]) -> bool {
    let (ints, _) = clear_denominators(v);
    (0..m.rows()).all(|i| {
        let mut acc = Integer::zero();
        for (j, x) in ints.iter().enumerate() {
            if !x.is_zero() && !m[(i, j)].is_zero() {
                acc += &(&m[(i, j)] * x);
            }
        }
        acc.is_zero()
    })
}

// ----------------------------------------------------------------------
// Certified computations (`try_*`: Some = certified exact, None = punt)
// ----------------------------------------------------------------------

/// Certified rank of an integer matrix over ℚ.
///
/// Fast exit: a single residue rank equal to `min(rows, cols)` is
/// already exact (modular rank never exceeds the rational rank). The
/// rank-deficient case goes through the verified nullspace.
pub fn try_rank(m: &Matrix<Integer>, threads: usize) -> Option<usize> {
    let d = m.rows().min(m.cols());
    if d == 0 {
        return Some(0);
    }
    let r = montgomery::rank_mod(m, pool_prime(0));
    if r == d {
        return Some(r);
    }
    try_nullspace(m, threads).map(|ns| m.cols() - ns.len())
}

/// Certified nullspace basis of `m` over ℚ, identical in shape and
/// value to [`gauss::nullspace`] over [`RationalField`]: one vector per
/// free column, unit at its free position.
pub fn try_nullspace(m: &Matrix<Integer>, threads: usize) -> Option<Vec<Vec<Rational>>> {
    if m.cols() == 0 {
        return Some(Vec::new());
    }
    if m.rows() == 0 {
        // Everything is in the kernel: the identity basis.
        return Some(
            (0..m.cols())
                .map(|f| {
                    let mut v = vec![Rational::zero(); m.cols()];
                    v[f] = Rational::one();
                    v
                })
                .collect(),
        );
    }
    let q = reconstruct_rref(m, threads)?;
    let pivot_of_col: Vec<Option<usize>> = {
        let mut v = vec![None; m.cols()];
        for (row, &pc) in q.pivot_cols.iter().enumerate() {
            v[pc] = Some(row);
        }
        v
    };
    let mut basis = Vec::new();
    for (free, entries) in &q.cols {
        let mut v = vec![Rational::zero(); m.cols()];
        v[*free] = Rational::one();
        for (col, pr) in pivot_of_col.iter().enumerate() {
            if let Some(row) = pr {
                v[col] = -&entries[*row];
            }
        }
        if !verify_in_kernel(m, &v) {
            return None;
        }
        basis.push(v);
    }
    // rank ≥ q.rank from the residues (a nonzero minor mod p), rank ≤
    // q.rank from the cols − rank verified independent kernel vectors:
    // the basis is certified complete.
    debug_assert_eq!(basis.len(), m.cols() - q.rank);
    Some(basis)
}

/// Certified particular solution of `a·x = b` over ℚ (free variables
/// zero, matching [`gauss::solve`]). `None` means "could not certify" —
/// including the possibly-inconsistent case, which the fallback decides.
pub fn try_solve(a: &Matrix<Integer>, b: &[Integer], threads: usize) -> Option<Vec<Rational>> {
    assert_eq!(a.rows(), b.len(), "rhs length mismatch");
    if a.rows() == 0 {
        return Some(vec![Rational::zero(); a.cols()]);
    }
    let aug = Matrix::from_fn(a.rows(), a.cols() + 1, |i, j| {
        if j < a.cols() {
            a[(i, j)].clone()
        } else {
            b[i].clone()
        }
    });
    let q = reconstruct_rref(&aug, threads)?;
    if q.pivot_cols.last() == Some(&a.cols()) {
        // Inconsistent modulo every consistent prime; let the exact
        // fallback produce the (certified) verdict.
        return None;
    }
    let mut x = vec![Rational::zero(); a.cols()];
    if let Some(entries) = q.cols.get(&a.cols()) {
        for (row, &pc) in q.pivot_cols.iter().enumerate() {
            x[pc] = entries[row].clone();
        }
    }
    // Certify: a·x = b exactly, denominators cleared.
    let (ints, scale) = clear_denominators(&x);
    let scale_i = Integer::from(scale);
    let ok = (0..a.rows()).all(|i| {
        let mut acc = Integer::zero();
        for (j, v) in ints.iter().enumerate() {
            if !v.is_zero() && !a[(i, j)].is_zero() {
                acc += &(&a[(i, j)] * v);
            }
        }
        acc == &b[i] * &scale_i
    });
    ok.then_some(x)
}

/// Certified `v ∈ column-span(a)` over ℚ.
pub fn try_in_column_span(a: &Matrix<Integer>, v: &[Integer], threads: usize) -> Option<bool> {
    assert_eq!(a.rows(), v.len(), "vector/matrix size mismatch");
    let ra = try_rank(a, threads)?;
    let aug = Matrix::from_fn(a.rows(), a.cols() + 1, |i, j| {
        if j < a.cols() {
            a[(i, j)].clone()
        } else {
            v[i].clone()
        }
    });
    let raug = try_rank(&aug, threads)?;
    Some(ra == raug)
}

/// Certified `dim(span(a) ∩ span(b))` over ℚ.
pub fn try_span_intersection_dim(
    a: &Matrix<Integer>,
    b: &Matrix<Integer>,
    threads: usize,
) -> Option<usize> {
    assert_eq!(a.rows(), b.rows(), "spans live in different ambient spaces");
    let concat = Matrix::from_fn(a.rows(), a.cols() + b.cols(), |i, j| {
        if j < a.cols() {
            a[(i, j)].clone()
        } else {
            b[(i, j - a.cols())].clone()
        }
    });
    let (ra, rb, rc) = (
        try_rank(a, threads)?,
        try_rank(b, threads)?,
        try_rank(&concat, threads)?,
    );
    Some(ra + rb - rc)
}

// ----------------------------------------------------------------------
// Fallback wrappers: certified fast path, rational-Gauss oracle on miss
// ----------------------------------------------------------------------

fn to_q(m: &Matrix<Integer>) -> Matrix<Rational> {
    m.map(|e| Rational::from(e.clone()))
}

fn certified<T>(fast: Option<T>, slow: impl FnOnce() -> T) -> T {
    match fast {
        Some(v) => {
            certified_counter().inc();
            v
        }
        None => {
            fallback_counter().inc();
            let _sp = ccmx_obs::span("crt.fallback");
            slow()
        }
    }
}

/// Exact rank over ℚ: certified CRT fast path, rational-Gauss fallback.
pub fn rank_int(m: &Matrix<Integer>) -> usize {
    certified(try_rank(m, default_threads()), || {
        gauss::rank(&RationalField, &to_q(m))
    })
}

/// Exact nullspace basis over ℚ (same basis as [`gauss::nullspace`]).
pub fn nullspace_int(m: &Matrix<Integer>) -> Vec<Vec<Rational>> {
    certified(try_nullspace(m, default_threads()), || {
        gauss::nullspace(&RationalField, &to_q(m))
    })
}

/// Exact span membership over ℚ (the Lemma 3.2/3.3 predicate).
pub fn in_column_span_int(a: &Matrix<Integer>, v: &[Integer]) -> bool {
    certified(try_in_column_span(a, v, default_threads()), || {
        let vq: Vec<Rational> = v.iter().map(|e| Rational::from(e.clone())).collect();
        gauss::in_column_span(&RationalField, &to_q(a), &vq)
    })
}

/// Exact particular solution of `a·x = b` over ℚ, or `None` if the
/// system is inconsistent (matches [`gauss::solve`]).
pub fn solve_q_int(a: &Matrix<Integer>, b: &[Integer]) -> Option<Vec<Rational>> {
    match try_solve(a, b, default_threads()) {
        Some(x) => {
            certified_counter().inc();
            Some(x)
        }
        None => {
            fallback_counter().inc();
            let bq: Vec<Rational> = b.iter().map(|e| Rational::from(e.clone())).collect();
            gauss::solve(&RationalField, &to_q(a), &bq)
        }
    }
}

/// Exact `dim(span(a) ∩ span(b))` over ℚ (the Lemma 3.6 quantity).
pub fn span_intersection_dim_int(a: &Matrix<Integer>, b: &Matrix<Integer>) -> usize {
    certified(try_span_intersection_dim(a, b, default_threads()), || {
        gauss::span_intersection_dim(&RationalField, &to_q(a), &to_q(b))
    })
}

/// Exact column-span equality over ℚ.
pub fn same_column_span_int(a: &Matrix<Integer>, b: &Matrix<Integer>) -> bool {
    let ra = rank_int(a);
    let rb = rank_int(b);
    ra == rb && span_intersection_dim_int(a, b) == ra
}

/// Indices of a certified maximal independent column set of `m` (so the
/// submatrix on them is a basis of the column space): candidate pivots
/// from a residue echelon, accepted when their count equals the exact
/// rank (independence mod `p` implies independence over ℚ). Falls back
/// to rational-Gauss pivots.
pub fn independent_columns_int(m: &Matrix<Integer>) -> Vec<usize> {
    let r = rank_int(m);
    for i in 0..3 {
        let e = montgomery::echelon_mod(m, pool_prime(i));
        if e.rank() == r {
            return e.pivot_cols;
        }
    }
    fallback_counter().inc();
    gauss::echelon(&RationalField, &to_q(m)).pivot_cols
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrix::int_matrix;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn rand_matrix(rows: usize, cols: usize, bound: i64, rng: &mut StdRng) -> Matrix<Integer> {
        Matrix::from_fn(rows, cols, |_, _| {
            Integer::from(rng.gen_range(-bound..=bound))
        })
    }

    #[test]
    fn backend_ids_are_distinct() {
        let ids = [
            Backend::RationalGauss.id(),
            Backend::Bareiss.id(),
            Backend::MontgomeryCrt.id(),
        ];
        assert_eq!(
            ids.iter().collect::<std::collections::HashSet<_>>().len(),
            3
        );
        assert_eq!(active_backend(), Backend::MontgomeryCrt);
    }

    #[test]
    fn certified_rank_matches_oracle() {
        let mut rng = StdRng::seed_from_u64(71);
        for _ in 0..40 {
            let rows = rng.gen_range(1..=7);
            let cols = rng.gen_range(1..=7);
            let bound = [1i64, 100, 1 << 20][rng.gen_range(0..3)];
            let m = rand_matrix(rows, cols, bound, &mut rng);
            let oracle = gauss::rank(&RationalField, &to_q(&m));
            assert_eq!(try_rank(&m, 1), Some(oracle), "m = {m:?}");
            assert_eq!(rank_int(&m), oracle);
        }
    }

    #[test]
    fn certified_rank_on_engineered_deficiency() {
        // Duplicate and scaled columns: rank must drop and be certified.
        let m = int_matrix(&[&[1, 2, 3, 2], &[4, 5, 9, 10], &[7, 8, 15, 16]]);
        let oracle = gauss::rank(&RationalField, &to_q(&m));
        assert_eq!(try_rank(&m, 1), Some(oracle));
    }

    #[test]
    fn certified_nullspace_equals_oracle_exactly() {
        let mut rng = StdRng::seed_from_u64(72);
        for _ in 0..30 {
            let rows = rng.gen_range(1..=6);
            let cols = rng.gen_range(1..=6);
            let m = rand_matrix(rows, cols, 9, &mut rng);
            let oracle = gauss::nullspace(&RationalField, &to_q(&m));
            let fast = try_nullspace(&m, 1).expect("certification must succeed");
            assert_eq!(fast, oracle, "nullspace mismatch on {m:?}");
        }
    }

    #[test]
    fn nullspace_handles_degenerate_shapes() {
        let zero_rows = Matrix::from_fn(0, 3, |_, _| Integer::zero());
        let ns = nullspace_int(&zero_rows);
        assert_eq!(ns.len(), 3);
        let zero = Matrix::from_fn(2, 2, |_, _| Integer::zero());
        assert_eq!(nullspace_int(&zero).len(), 2);
        assert_eq!(rank_int(&zero), 0);
        let no_cols = Matrix::from_fn(3, 0, |_, _| Integer::zero());
        assert!(nullspace_int(&no_cols).is_empty());
        assert_eq!(rank_int(&no_cols), 0);
    }

    #[test]
    fn solve_matches_oracle() {
        let mut rng = StdRng::seed_from_u64(73);
        let f = RationalField;
        for _ in 0..30 {
            let rows = rng.gen_range(1..=5);
            let cols = rng.gen_range(1..=5);
            let a = rand_matrix(rows, cols, 6, &mut rng);
            let b: Vec<Integer> = (0..rows)
                .map(|_| Integer::from(rng.gen_range(-6i64..=6)))
                .collect();
            let bq: Vec<Rational> = b.iter().map(|e| Rational::from(e.clone())).collect();
            let oracle = gauss::solve(&f, &to_q(&a), &bq);
            assert_eq!(solve_q_int(&a, &b), oracle, "solve mismatch on {a:?} {b:?}");
        }
    }

    #[test]
    fn span_membership_and_intersection_match_oracle() {
        let mut rng = StdRng::seed_from_u64(74);
        let f = RationalField;
        for _ in 0..25 {
            let rows = rng.gen_range(1..=6);
            let a = rand_matrix(rows, rng.gen_range(1..=4), 5, &mut rng);
            let b = rand_matrix(rows, rng.gen_range(1..=4), 5, &mut rng);
            let v: Vec<Integer> = (0..rows)
                .map(|_| Integer::from(rng.gen_range(-5i64..=5)))
                .collect();
            let vq: Vec<Rational> = v.iter().map(|e| Rational::from(e.clone())).collect();
            assert_eq!(
                in_column_span_int(&a, &v),
                gauss::in_column_span(&f, &to_q(&a), &vq)
            );
            assert_eq!(
                span_intersection_dim_int(&a, &b),
                gauss::span_intersection_dim(&f, &to_q(&a), &to_q(&b))
            );
            assert_eq!(
                same_column_span_int(&a, &b),
                gauss::same_column_span(&f, &to_q(&a), &to_q(&b))
            );
        }
    }

    #[test]
    fn independent_columns_give_a_basis() {
        let mut rng = StdRng::seed_from_u64(75);
        for _ in 0..20 {
            let rows = rng.gen_range(1..=6);
            let cols = rng.gen_range(1..=6);
            let m = rand_matrix(rows, cols, 4, &mut rng);
            let sel = independent_columns_int(&m);
            assert_eq!(sel.len(), rank_int(&m));
            let sub = m.submatrix(&(0..rows).collect::<Vec<_>>(), &sel);
            assert_eq!(rank_int(&sub), sel.len());
        }
    }

    #[test]
    fn large_entries_still_certify() {
        // Entries far beyond u64: multi-prime CRT plus reconstruction.
        let big = Integer::from(1i64 << 62);
        let big2 = &big * &big; // 2^124
        let m = Matrix::from_fn(3, 4, |i, j| {
            if j == 3 {
                // Last column = first + second: engineered dependency.
                &m_entry(i, 0, &big2) + &m_entry(i, 1, &big2)
            } else {
                m_entry(i, j, &big2)
            }
        });
        let oracle = gauss::rank(&RationalField, &to_q(&m));
        assert_eq!(try_rank(&m, 2), Some(oracle));
        let ns = try_nullspace(&m, 2).expect("certified");
        assert_eq!(ns, gauss::nullspace(&RationalField, &to_q(&m)));
    }

    fn m_entry(i: usize, j: usize, scale: &Integer) -> Integer {
        &Integer::from((i * 3 + j + 1) as i64) * scale
    }

    #[test]
    fn fast_path_is_actually_taken() {
        let before = fast_path_stats();
        let m = int_matrix(&[&[1, 2], &[3, 4]]);
        assert_eq!(rank_int(&m), 2);
        let after = fast_path_stats();
        assert!(after.0 > before.0, "certified counter must advance");
    }
}
