//! The Hong–Kung I/O model: a second communication meter.
//!
//! The paper meters bits moved *between parties*; Ballard–Demmel–Holtz–
//! Schwartz (arXiv:0905.2485) meter words moved *between memory levels*:
//! a kernel owns a fast memory of `M` words and pays one word of I/O for
//! every word it moves to or from slow memory. Classical Gaussian
//! elimination must move Ω(n³/√M) words (the Hong–Kung pebbling bound);
//! a cache-blocked elimination with √(M/3)-sized tiles attains it up to
//! a constant.
//!
//! This module holds the knob and the meter:
//!
//! * [`fast_mem_words`] — the modelled fast-memory capacity `M`, from
//!   the `CCMX_FAST_MEM_WORDS` environment variable (default
//!   [`DEFAULT_FAST_MEM_WORDS`]), read once per process;
//! * [`panel_width`] — the tile/panel width `b` the blocked kernels in
//!   [`crate::montgomery`] derive from `M`: the largest multiple of 4
//!   with `3·b² ≤ M` (three `b × b` tiles resident: one each of the
//!   factor block, the pivot block and the update block), clamped to
//!   `[4, 16]`;
//! * [`IoMeter`] — a per-call word counter the kernels accumulate into
//!   locally (one `u64` add per block operation, nothing shared), flushed
//!   once per kernel call into the `ccmx_iomodel_*` registry families.
//!
//! Exported series, scraped live like every other family
//! (`ccmx client <addr> stats`):
//!
//! * `ccmx_iomodel_fast_mem_words` — gauge, the active `M`;
//! * `ccmx_iomodel_words_moved_total{kernel,path}` — modelled words
//!   moved, `kernel ∈ {det, rank, rref}`, `path ∈ {blocked, scalar}`;
//! * `ccmx_iomodel_kernel_calls_total{kernel,path}` — kernel-scale calls
//!   (shapes below [`METER_MIN_DIM`] skip the meter entirely so the
//!   enumeration hot loops never touch the registry).

use std::sync::OnceLock;

/// Default modelled fast-memory capacity in words. Sized for the
/// register file plus the L1-resident working tile: `3·8² = 192 ≤ 256`,
/// so the default panel width is 8 — the sweet spot measured for the
/// grouped-REDC kernels on small CRT matrices.
pub const DEFAULT_FAST_MEM_WORDS: usize = 256;

/// Kernels at or above this min-dimension meter their I/O (and are
/// candidates for the blocked path); smaller shapes skip both.
pub const METER_MIN_DIM: usize = 16;

/// The modelled fast-memory capacity `M` in words: `CCMX_FAST_MEM_WORDS`
/// when set to a positive integer, otherwise
/// [`DEFAULT_FAST_MEM_WORDS`]. Cached after the first read; the
/// `ccmx_iomodel_fast_mem_words` gauge is set as a side effect.
pub fn fast_mem_words() -> usize {
    static M: OnceLock<usize> = OnceLock::new();
    *M.get_or_init(|| {
        let m = std::env::var("CCMX_FAST_MEM_WORDS")
            .ok()
            .and_then(|s| s.trim().parse::<usize>().ok())
            .filter(|&m| m > 0)
            .unwrap_or(DEFAULT_FAST_MEM_WORDS);
        ccmx_obs::gauge!("ccmx_iomodel_fast_mem_words").set(m as i64);
        m
    })
}

/// Panel width for a fast memory of `m_words`: the largest multiple of 4
/// whose three square tiles fit (`3·b² ≤ m_words`), clamped to `[4, 16]`.
/// The upper clamp keeps the panel-factorization fraction of the total
/// work (~`3b/4n`) small at the CRT matrix sizes this lab runs.
pub fn panel_width_for(m_words: usize) -> usize {
    let mut b = 4usize;
    while b + 4 <= 16 && 3 * (b + 4) * (b + 4) <= m_words {
        b += 4;
    }
    b
}

/// The active panel width: [`panel_width_for`] of [`fast_mem_words`].
pub fn panel_width() -> usize {
    static B: OnceLock<usize> = OnceLock::new();
    *B.get_or_init(|| panel_width_for(fast_mem_words()))
}

/// Which elimination kernel a meter belongs to.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Kernel {
    /// Forward elimination for the determinant.
    Det,
    /// Forward elimination for the rank.
    Rank,
    /// Full reduced-row-echelon elimination.
    Rref,
}

/// A per-call Hong–Kung word counter: accumulate locally, flush once.
pub struct IoMeter {
    kernel: Kernel,
    words: u64,
}

impl IoMeter {
    /// Fresh meter for one kernel invocation.
    pub fn new(kernel: Kernel) -> Self {
        IoMeter { kernel, words: 0 }
    }

    /// Count `words` moved between fast and slow memory.
    #[inline(always)]
    pub fn add(&mut self, words: u64) {
        self.words += words;
    }

    /// Words counted so far.
    pub fn words(&self) -> u64 {
        self.words
    }

    /// Flush into the registry under the given path label and consume
    /// the meter. One registry touch per kernel call.
    pub fn flush(self, blocked: bool) {
        let (words, calls) = series(self.kernel, blocked);
        words.add(self.words);
        calls.inc();
    }
}

/// The `(words_moved, kernel_calls)` counters for a kernel/path pair.
/// Six match arms so every combination keeps the `counter!` macro's
/// per-call-site handle cache (labels must be `'static`).
fn series(
    kernel: Kernel,
    blocked: bool,
) -> (&'static ccmx_obs::Counter, &'static ccmx_obs::Counter) {
    use ccmx_obs::counter;
    match (kernel, blocked) {
        (Kernel::Det, true) => (
            counter!("ccmx_iomodel_words_moved_total", "kernel" => "det", "path" => "blocked"),
            counter!("ccmx_iomodel_kernel_calls_total", "kernel" => "det", "path" => "blocked"),
        ),
        (Kernel::Det, false) => (
            counter!("ccmx_iomodel_words_moved_total", "kernel" => "det", "path" => "scalar"),
            counter!("ccmx_iomodel_kernel_calls_total", "kernel" => "det", "path" => "scalar"),
        ),
        (Kernel::Rank, true) => (
            counter!("ccmx_iomodel_words_moved_total", "kernel" => "rank", "path" => "blocked"),
            counter!("ccmx_iomodel_kernel_calls_total", "kernel" => "rank", "path" => "blocked"),
        ),
        (Kernel::Rank, false) => (
            counter!("ccmx_iomodel_words_moved_total", "kernel" => "rank", "path" => "scalar"),
            counter!("ccmx_iomodel_kernel_calls_total", "kernel" => "rank", "path" => "scalar"),
        ),
        (Kernel::Rref, true) => (
            counter!("ccmx_iomodel_words_moved_total", "kernel" => "rref", "path" => "blocked"),
            counter!("ccmx_iomodel_kernel_calls_total", "kernel" => "rref", "path" => "blocked"),
        ),
        (Kernel::Rref, false) => (
            counter!("ccmx_iomodel_words_moved_total", "kernel" => "rref", "path" => "scalar"),
            counter!("ccmx_iomodel_kernel_calls_total", "kernel" => "rref", "path" => "scalar"),
        ),
    }
}

/// Current `(words_moved, calls)` for a kernel/path pair — the bench and
/// gate read-back.
pub fn kernel_stats(kernel: Kernel, blocked: bool) -> (u64, u64) {
    let (words, calls) = series(kernel, blocked);
    (words.get(), calls.get())
}

/// The Hong–Kung lower-bound scale `n³/√M` for an `n × n` elimination
/// against the active fast-memory size (as a float; the bench reports
/// measured words as a multiple of this).
pub fn hong_kung_bound(n: usize) -> f64 {
    let m = fast_mem_words() as f64;
    (n as f64).powi(3) / m.sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn panel_width_derivation() {
        assert_eq!(panel_width_for(0), 4);
        assert_eq!(panel_width_for(191), 4);
        assert_eq!(panel_width_for(192), 8); // 3·64
        assert_eq!(panel_width_for(256), 8);
        assert_eq!(panel_width_for(431), 8);
        assert_eq!(panel_width_for(432), 12); // 3·144
        assert_eq!(panel_width_for(768), 16); // 3·256
        assert_eq!(panel_width_for(1 << 20), 16, "clamped");
    }

    #[test]
    fn meter_accumulates_and_flushes() {
        let (w0, c0) = kernel_stats(Kernel::Det, true);
        let mut m = IoMeter::new(Kernel::Det);
        m.add(100);
        m.add(23);
        assert_eq!(m.words(), 123);
        m.flush(true);
        let (w1, c1) = kernel_stats(Kernel::Det, true);
        assert!(w1 >= w0 + 123);
        assert!(c1 > c0);
    }

    #[test]
    fn bound_scales_with_n() {
        let b32 = hong_kung_bound(32);
        let b64 = hong_kung_bound(64);
        assert!(b64 > 7.9 * b32 && b64 < 8.1 * b32, "n³ scaling");
    }
}
