//! Dense row-major matrices.
//!
//! [`Matrix<T>`] is a plain container; all algebra is performed by the
//! algorithms in the sibling modules, parameterized by a [`crate::Ring`].
//! The block-construction helpers mirror the matrix surgery the paper
//! performs constantly: the `[[I, B], [A, C]]` trick of Corollary 1.2, the
//! Fig. 1 restricted format, and the row/column permutations of Lemma 3.9.

use std::fmt;
use std::ops::{Index, IndexMut};

use crate::ring::Ring;

/// A dense `rows × cols` matrix in row-major order.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct Matrix<T> {
    rows: usize,
    cols: usize,
    data: Vec<T>,
}

impl<T> Matrix<T> {
    /// Build from a row-major data vector. Panics on size mismatch.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<T>) -> Self {
        assert_eq!(data.len(), rows * cols, "matrix data length mismatch");
        Matrix { rows, cols, data }
    }

    /// Build entry-by-entry from a function of `(row, col)`.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> T) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for i in 0..rows {
            for j in 0..cols {
                data.push(f(i, j));
            }
        }
        Matrix { rows, cols, data }
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Is this a square matrix?
    #[inline]
    pub fn is_square(&self) -> bool {
        self.rows == self.cols
    }

    /// Row-major data slice.
    #[inline]
    pub fn data(&self) -> &[T] {
        &self.data
    }

    /// Borrow row `i` as a slice.
    #[inline]
    pub fn row(&self, i: usize) -> &[T] {
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Mutably borrow row `i` as a slice.
    #[inline]
    pub fn row_mut(&mut self, i: usize) -> &mut [T] {
        &mut self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Two distinct rows, mutably (for elimination updates).
    pub fn two_rows_mut(&mut self, i: usize, j: usize) -> (&mut [T], &mut [T]) {
        assert_ne!(i, j);
        let c = self.cols;
        if i < j {
            let (a, b) = self.data.split_at_mut(j * c);
            (&mut a[i * c..(i + 1) * c], &mut b[..c])
        } else {
            let (a, b) = self.data.split_at_mut(i * c);
            (&mut b[..c], &mut a[j * c..(j + 1) * c])
        }
    }

    /// Swap rows `i` and `j`.
    pub fn swap_rows(&mut self, i: usize, j: usize) {
        if i == j {
            return;
        }
        for k in 0..self.cols {
            self.data.swap(i * self.cols + k, j * self.cols + k);
        }
    }

    /// Swap columns `i` and `j`.
    pub fn swap_cols(&mut self, i: usize, j: usize) {
        if i == j {
            return;
        }
        for r in 0..self.rows {
            self.data.swap(r * self.cols + i, r * self.cols + j);
        }
    }

    /// Map every entry.
    pub fn map<U>(&self, f: impl FnMut(&T) -> U) -> Matrix<U> {
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(f).collect(),
        }
    }

    /// Column `j` as an owned vector.
    pub fn col(&self, j: usize) -> Vec<T>
    where
        T: Clone,
    {
        (0..self.rows).map(|i| self[(i, j)].clone()).collect()
    }

    /// Transpose.
    pub fn transpose(&self) -> Matrix<T>
    where
        T: Clone,
    {
        Matrix::from_fn(self.cols, self.rows, |i, j| self[(j, i)].clone())
    }

    /// The submatrix with the given (ordered) rows and columns.
    pub fn submatrix(&self, rows: &[usize], cols: &[usize]) -> Matrix<T>
    where
        T: Clone,
    {
        Matrix::from_fn(rows.len(), cols.len(), |i, j| {
            self[(rows[i], cols[j])].clone()
        })
    }

    /// Apply a row permutation: row `i` of the result is row `perm[i]` of
    /// `self`.
    pub fn permute_rows(&self, perm: &[usize]) -> Matrix<T>
    where
        T: Clone,
    {
        assert_eq!(perm.len(), self.rows);
        Matrix::from_fn(self.rows, self.cols, |i, j| self[(perm[i], j)].clone())
    }

    /// Apply a column permutation: column `j` of the result is column
    /// `perm[j]` of `self`.
    pub fn permute_cols(&self, perm: &[usize]) -> Matrix<T>
    where
        T: Clone,
    {
        assert_eq!(perm.len(), self.cols);
        Matrix::from_fn(self.rows, self.cols, |i, j| self[(i, perm[j])].clone())
    }

    /// Stack four blocks as `[[tl, tr], [bl, br]]`.
    pub fn from_blocks(tl: &Matrix<T>, tr: &Matrix<T>, bl: &Matrix<T>, br: &Matrix<T>) -> Matrix<T>
    where
        T: Clone,
    {
        assert_eq!(tl.rows, tr.rows, "top blocks row mismatch");
        assert_eq!(bl.rows, br.rows, "bottom blocks row mismatch");
        assert_eq!(tl.cols, bl.cols, "left blocks col mismatch");
        assert_eq!(tr.cols, br.cols, "right blocks col mismatch");
        Matrix::from_fn(tl.rows + bl.rows, tl.cols + tr.cols, |i, j| {
            if i < tl.rows {
                if j < tl.cols {
                    tl[(i, j)].clone()
                } else {
                    tr[(i, j - tl.cols)].clone()
                }
            } else if j < tl.cols {
                bl[(i - tl.rows, j)].clone()
            } else {
                br[(i - tl.rows, j - tl.cols)].clone()
            }
        })
    }
}

impl<T> Matrix<T> {
    /// The `n × n` identity over a ring.
    pub fn identity<R: Ring<Elem = T>>(ring: &R, n: usize) -> Matrix<T> {
        Matrix::from_fn(n, n, |i, j| if i == j { ring.one() } else { ring.zero() })
    }

    /// The `rows × cols` zero matrix over a ring.
    pub fn zero<R: Ring<Elem = T>>(ring: &R, rows: usize, cols: usize) -> Matrix<T> {
        Matrix::from_fn(rows, cols, |_, _| ring.zero())
    }

    /// Matrix product over a ring (serial; see [`crate::parallel`] for the
    /// threaded kernel).
    pub fn mul<R: Ring<Elem = T>>(&self, ring: &R, other: &Matrix<T>) -> Matrix<T>
    where
        T: Clone,
    {
        assert_eq!(self.cols, other.rows, "matmul dimension mismatch");
        Matrix::from_fn(self.rows, other.cols, |i, j| {
            let mut acc = ring.zero();
            for k in 0..self.cols {
                acc = ring.add_mul(&acc, &self[(i, k)], &other[(k, j)]);
            }
            acc
        })
    }

    /// Matrix–vector product over a ring.
    pub fn mul_vec<R: Ring<Elem = T>>(&self, ring: &R, v: &[T]) -> Vec<T>
    where
        T: Clone,
    {
        assert_eq!(self.cols, v.len(), "matvec dimension mismatch");
        (0..self.rows)
            .map(|i| {
                let mut acc = ring.zero();
                for k in 0..self.cols {
                    acc = ring.add_mul(&acc, &self[(i, k)], &v[k]);
                }
                acc
            })
            .collect()
    }

    /// Entrywise sum over a ring.
    pub fn add<R: Ring<Elem = T>>(&self, ring: &R, other: &Matrix<T>) -> Matrix<T> {
        assert_eq!((self.rows, self.cols), (other.rows, other.cols));
        Matrix::from_fn(self.rows, self.cols, |i, j| {
            ring.add(&self[(i, j)], &other[(i, j)])
        })
    }

    /// Entrywise difference over a ring.
    pub fn sub<R: Ring<Elem = T>>(&self, ring: &R, other: &Matrix<T>) -> Matrix<T> {
        assert_eq!((self.rows, self.cols), (other.rows, other.cols));
        Matrix::from_fn(self.rows, self.cols, |i, j| {
            ring.sub(&self[(i, j)], &other[(i, j)])
        })
    }

    /// Is this the zero matrix over a ring?
    pub fn is_zero<R: Ring<Elem = T>>(&self, ring: &R) -> bool {
        self.data.iter().all(|e| ring.is_zero(e))
    }
}

impl<T> Index<(usize, usize)> for Matrix<T> {
    type Output = T;
    #[inline]
    fn index(&self, (i, j): (usize, usize)) -> &T {
        debug_assert!(
            i < self.rows && j < self.cols,
            "index ({i},{j}) out of bounds"
        );
        &self.data[i * self.cols + j]
    }
}

impl<T> IndexMut<(usize, usize)> for Matrix<T> {
    #[inline]
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut T {
        debug_assert!(
            i < self.rows && j < self.cols,
            "index ({i},{j}) out of bounds"
        );
        &mut self.data[i * self.cols + j]
    }
}

impl<T: fmt::Debug> fmt::Debug for Matrix<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix {}x{} [", self.rows, self.cols)?;
        for i in 0..self.rows {
            write!(f, "  [")?;
            for j in 0..self.cols {
                if j > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{:?}", self[(i, j)])?;
            }
            writeln!(f, "]")?;
        }
        write!(f, "]")
    }
}

impl<T: fmt::Display> fmt::Display for Matrix<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for i in 0..self.rows {
            for j in 0..self.cols {
                if j > 0 {
                    write!(f, " ")?;
                }
                write!(f, "{:>6}", self[(i, j)])?;
            }
            if i + 1 < self.rows {
                writeln!(f)?;
            }
        }
        Ok(())
    }
}

/// Build an integer matrix from `i64` literals (test/demo convenience).
pub fn int_matrix(rows: &[&[i64]]) -> Matrix<ccmx_bigint::Integer> {
    let r = rows.len();
    let c = rows.first().map_or(0, |row| row.len());
    assert!(rows.iter().all(|row| row.len() == c), "ragged rows");
    Matrix::from_fn(r, c, |i, j| ccmx_bigint::Integer::from(rows[i][j]))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ring::{IntegerRing, PrimeField};
    use ccmx_bigint::Integer;

    #[test]
    fn indexing_and_rows() {
        let m = int_matrix(&[&[1, 2, 3], &[4, 5, 6]]);
        assert_eq!(m.rows(), 2);
        assert_eq!(m.cols(), 3);
        assert_eq!(m[(1, 2)], Integer::from(6i64));
        assert_eq!(
            m.row(0),
            &[
                Integer::from(1i64),
                Integer::from(2i64),
                Integer::from(3i64)
            ]
        );
        assert_eq!(m.col(1), vec![Integer::from(2i64), Integer::from(5i64)]);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn from_vec_checks_size() {
        let _ = Matrix::from_vec(2, 2, vec![1, 2, 3]);
    }

    #[test]
    fn identity_and_mul() {
        let zz = IntegerRing;
        let m = int_matrix(&[&[1, 2], &[3, 4]]);
        let i = Matrix::identity(&zz, 2);
        assert_eq!(m.mul(&zz, &i), m);
        assert_eq!(i.mul(&zz, &m), m);
        let sq = m.mul(&zz, &m);
        assert_eq!(sq, int_matrix(&[&[7, 10], &[15, 22]]));
    }

    #[test]
    fn mul_vec_matches_mul() {
        let zz = IntegerRing;
        let m = int_matrix(&[&[1, 2], &[3, 4], &[5, 6]]);
        let v = vec![Integer::from(10i64), Integer::from(-1i64)];
        let mv = m.mul_vec(&zz, &v);
        assert_eq!(
            mv,
            vec![
                Integer::from(8i64),
                Integer::from(26i64),
                Integer::from(44i64)
            ]
        );
    }

    #[test]
    fn transpose_involution() {
        let m = int_matrix(&[&[1, 2, 3], &[4, 5, 6]]);
        assert_eq!(m.transpose().transpose(), m);
        assert_eq!(m.transpose()[(2, 1)], Integer::from(6i64));
    }

    #[test]
    fn swaps() {
        let mut m = int_matrix(&[&[1, 2], &[3, 4]]);
        m.swap_rows(0, 1);
        assert_eq!(m, int_matrix(&[&[3, 4], &[1, 2]]));
        m.swap_cols(0, 1);
        assert_eq!(m, int_matrix(&[&[4, 3], &[2, 1]]));
        m.swap_rows(1, 1);
        assert_eq!(m, int_matrix(&[&[4, 3], &[2, 1]]));
    }

    #[test]
    fn two_rows_mut_disjoint() {
        let mut m = int_matrix(&[&[1, 2], &[3, 4], &[5, 6]]);
        {
            let (a, b) = m.two_rows_mut(2, 0);
            std::mem::swap(&mut a[0], &mut b[0]);
        }
        assert_eq!(m, int_matrix(&[&[5, 2], &[3, 4], &[1, 6]]));
    }

    #[test]
    fn permutations() {
        let m = int_matrix(&[&[1, 2], &[3, 4], &[5, 6]]);
        let p = m.permute_rows(&[2, 0, 1]);
        assert_eq!(p, int_matrix(&[&[5, 6], &[1, 2], &[3, 4]]));
        let q = m.permute_cols(&[1, 0]);
        assert_eq!(q, int_matrix(&[&[2, 1], &[4, 3], &[6, 5]]));
    }

    #[test]
    fn blocks_corollary12_shape() {
        // The paper's M = [[I, B], [A, C]] block trick.
        let zz = IntegerRing;
        let i = Matrix::identity(&zz, 2);
        let a = int_matrix(&[&[1, 0], &[0, 1]]);
        let b = int_matrix(&[&[5, 6], &[7, 8]]);
        let c = int_matrix(&[&[5, 6], &[7, 8]]);
        let m = Matrix::from_blocks(&i, &b, &a, &c);
        assert_eq!(m.rows(), 4);
        assert_eq!(m[(0, 2)], Integer::from(5i64));
        assert_eq!(m[(2, 0)], Integer::from(1i64));
        assert_eq!(m[(3, 3)], Integer::from(8i64));
    }

    #[test]
    fn submatrix_selects() {
        let m = int_matrix(&[&[1, 2, 3], &[4, 5, 6], &[7, 8, 9]]);
        let s = m.submatrix(&[0, 2], &[1, 2]);
        assert_eq!(s, int_matrix(&[&[2, 3], &[8, 9]]));
    }

    #[test]
    fn prime_field_matrices() {
        let f7 = PrimeField::new(7);
        let m = Matrix::from_fn(2, 2, |i, j| ((i * 2 + j) * 3) as u64 % 7);
        let sq = m.mul(&f7, &m);
        // m = [[0,3],[6,2]]; m^2 = [[18, 6],[12, 22]] mod 7 = [[4,6],[5,1]]
        assert_eq!(sq, Matrix::from_vec(2, 2, vec![4, 6, 5, 1]));
    }

    #[test]
    fn add_sub_zero() {
        let zz = IntegerRing;
        let m = int_matrix(&[&[1, -2], &[3, 4]]);
        let z = Matrix::zero(&zz, 2, 2);
        assert_eq!(m.add(&zz, &z), m);
        assert!(m.sub(&zz, &m).is_zero(&zz));
    }
}
