//! Matrix inverses and adjugates.
//!
//! Over a field: Gauss–Jordan inversion (used by the unimodularity
//! checks and as another oracle for singularity — `M` singular iff no
//! inverse). Over ℤ: the **adjugate** `adj(M)` with the exact identity
//! `M·adj(M) = det(M)·I`, computed fraction-free from cofactors — the
//! classical object behind Cramer's rule and the integrality of `det·M⁻¹`.

use ccmx_bigint::Integer;

use crate::bareiss;
use crate::matrix::Matrix;
use crate::ring::{Field, IntegerRing};

/// Inverse of a square matrix over a field; `None` if singular.
pub fn inverse<F: Field>(field: &F, m: &Matrix<F::Elem>) -> Option<Matrix<F::Elem>> {
    assert!(m.is_square(), "inverse of non-square matrix");
    let n = m.rows();
    // Gauss–Jordan on [M | I].
    let mut a = Matrix::from_fn(n, 2 * n, |i, j| {
        if j < n {
            m[(i, j)].clone()
        } else if j - n == i {
            field.one()
        } else {
            field.zero()
        }
    });
    for col in 0..n {
        let Some(p) = (col..n).find(|&r| !field.is_zero(&a[(r, col)])) else {
            return None; // singular
        };
        a.swap_rows(p, col);
        let inv = field.inv(&a[(col, col)]).expect("nonzero pivot");
        for j in 0..2 * n {
            let v = field.mul(&a[(col, j)], &inv);
            a[(col, j)] = v;
        }
        for r in 0..n {
            if r == col || field.is_zero(&a[(r, col)]) {
                continue;
            }
            let factor = a[(r, col)].clone();
            let (target, source) = a.two_rows_mut(r, col);
            for j in 0..2 * n {
                let delta = field.mul(&factor, &source[j]);
                target[j] = field.sub(&target[j], &delta);
            }
        }
    }
    Some(Matrix::from_fn(n, n, |i, j| a[(i, j + n)].clone()))
}

/// The `(i, j)` minor: determinant of `m` with row `i` and column `j`
/// removed.
pub fn minor(m: &Matrix<Integer>, i: usize, j: usize) -> Integer {
    assert!(m.is_square() && m.rows() >= 1);
    let rows: Vec<usize> = (0..m.rows()).filter(|&r| r != i).collect();
    let cols: Vec<usize> = (0..m.cols()).filter(|&c| c != j).collect();
    bareiss::det(&m.submatrix(&rows, &cols))
}

/// The adjugate: `adj(M)[i][j] = (−1)^{i+j} · minor(M, j, i)`.
///
/// Satisfies `M·adj(M) = adj(M)·M = det(M)·I` over ℤ — even for singular
/// `M` (both sides are then the zero matrix times... `det = 0`).
pub fn adjugate(m: &Matrix<Integer>) -> Matrix<Integer> {
    assert!(m.is_square());
    let n = m.rows();
    if n == 0 {
        return m.clone();
    }
    Matrix::from_fn(n, n, |i, j| {
        let c = minor(m, j, i);
        if (i + j) % 2 == 0 {
            c
        } else {
            -c
        }
    })
}

/// Verify the fundamental identity `M·adj(M) = det(M)·I`.
pub fn verify_adjugate(m: &Matrix<Integer>) -> bool {
    let zz = IntegerRing;
    let adj = adjugate(m);
    let d = bareiss::det(m);
    let prod = m.mul(&zz, &adj);
    let expect = Matrix::from_fn(m.rows(), m.rows(), |i, j| {
        if i == j {
            d.clone()
        } else {
            Integer::zero()
        }
    });
    prod == expect && adj.mul(&zz, m) == expect
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrix::int_matrix;
    use crate::ring::{PrimeField, RationalField};
    use ccmx_bigint::Rational;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn inverse_roundtrip_rational() {
        let f = RationalField;
        let m = int_matrix(&[&[2, 1], &[1, 1]]).map(|e| Rational::from(e.clone()));
        let inv = inverse(&f, &m).unwrap();
        let i = Matrix::identity(&f, 2);
        assert_eq!(m.mul(&f, &inv), i);
        assert_eq!(inv.mul(&f, &m), i);
    }

    #[test]
    fn singular_has_no_inverse() {
        let f = RationalField;
        let m = int_matrix(&[&[1, 2], &[2, 4]]).map(|e| Rational::from(e.clone()));
        assert!(inverse(&f, &m).is_none());
    }

    #[test]
    fn inverse_over_gfp() {
        let f = PrimeField::new(7);
        let m = Matrix::from_vec(2, 2, vec![2u64, 1, 1, 1]);
        let inv = inverse(&f, &m).unwrap();
        assert_eq!(m.mul(&f, &inv), Matrix::identity(&f, 2));
        // [[1,2],[3,6]] is singular mod 7? det = 6 - 6 = 0 mod 7 → yes...
        // actually det = 0 over Z too.
        let s = Matrix::from_vec(2, 2, vec![1u64, 2, 3, 6]);
        assert!(inverse(&f, &s).is_none());
    }

    #[test]
    fn inverse_randomized_roundtrip() {
        let mut rng = StdRng::seed_from_u64(5);
        let f = RationalField;
        for n in 1..=5usize {
            for _ in 0..8 {
                let m = Matrix::from_fn(n, n, |_, _| {
                    Rational::from(Integer::from(rng.gen_range(-5i64..=5)))
                });
                match inverse(&f, &m) {
                    Some(inv) => {
                        assert_eq!(m.mul(&f, &inv), Matrix::identity(&f, n));
                    }
                    None => {
                        let mz = m.map(|r| {
                            // All test entries are integers.
                            r.to_integer().unwrap()
                        });
                        assert!(bareiss::is_singular(&mz));
                    }
                }
            }
        }
    }

    #[test]
    fn adjugate_identity_randomized() {
        let mut rng = StdRng::seed_from_u64(6);
        for n in 1..=5usize {
            for _ in 0..8 {
                let m = Matrix::from_fn(n, n, |_, _| Integer::from(rng.gen_range(-4i64..=4)));
                assert!(verify_adjugate(&m), "adjugate identity failed on {m:?}");
            }
        }
    }

    #[test]
    fn adjugate_of_singular_matrix() {
        // Even for singular M: M·adj(M) = 0.
        let m = int_matrix(&[&[1, 2], &[2, 4]]);
        assert!(verify_adjugate(&m));
        let zz = IntegerRing;
        let prod = m.mul(&zz, &adjugate(&m));
        assert!(prod.is_zero(&zz));
    }

    #[test]
    fn adjugate_known_value() {
        // adj([[a,b],[c,d]]) = [[d,-b],[-c,a]].
        let m = int_matrix(&[&[1, 2], &[3, 4]]);
        assert_eq!(adjugate(&m), int_matrix(&[&[4, -2], &[-3, 1]]));
        // 1x1: adj = [[1]] (empty minor = 1).
        let one = int_matrix(&[&[7]]);
        assert_eq!(adjugate(&one), int_matrix(&[&[1]]));
    }

    #[test]
    fn cramer_via_adjugate() {
        // x = adj(A)·b / det(A): cross-check against the solver.
        let mut rng = StdRng::seed_from_u64(7);
        let zz = IntegerRing;
        for _ in 0..10 {
            let n = 3;
            let a = Matrix::from_fn(n, n, |_, _| Integer::from(rng.gen_range(-4i64..=4)));
            let d = bareiss::det(&a);
            if d.is_zero() {
                continue;
            }
            let b: Vec<Integer> = (0..n)
                .map(|_| Integer::from(rng.gen_range(-4i64..=4)))
                .collect();
            let adj_b = adjugate(&a).mul_vec(&zz, &b);
            let x = crate::solve::solve_cramer(&a, &b).unwrap();
            for i in 0..n {
                assert_eq!(x[i], Rational::new(adj_b[i].clone(), d.clone()));
            }
        }
    }
}
