//! Fraction-free (Bareiss) elimination over the integers.
//!
//! Bareiss' algorithm performs Gaussian elimination on an integer matrix
//! using only exact integer divisions, keeping every intermediate entry a
//! *minor* of the input — so entry sizes stay polynomial in `n·k` instead
//! of exploding the way naive fraction arithmetic does. This is the exact
//! ground-truth singularity test of the reproduction: `det(M) = 0` decides
//! the paper's central predicate.
//!
//! The ablation bench compares this against rational elimination
//! (`gauss` over [`crate::ring::RationalField`]) and against CRT-modular
//! determinants ([`crate::modular`]).

use ccmx_bigint::Integer;

use crate::matrix::Matrix;

/// Result of a Bareiss elimination sweep.
#[derive(Clone, Debug)]
pub struct BareissResult {
    /// The determinant (exact), if the input was square.
    pub det: Option<Integer>,
    /// The rank of the input.
    pub rank: usize,
}

/// Run fraction-free elimination, returning determinant (for square
/// inputs) and rank.
pub fn bareiss(m: &Matrix<Integer>) -> BareissResult {
    let mut a = m.clone();
    let (rows, cols) = (a.rows(), a.cols());
    let mut sign = 1i64;
    let mut prev_pivot = Integer::one();
    let mut pivot_row = 0usize;
    let mut last_pivot = Integer::one();

    for col in 0..cols {
        if pivot_row == rows {
            break;
        }
        // Find a pivot.
        let Some(p) = (pivot_row..rows).find(|&r| !a[(r, col)].is_zero()) else {
            continue;
        };
        if p != pivot_row {
            a.swap_rows(p, pivot_row);
            sign = -sign;
        }
        let pivot = a[(pivot_row, col)].clone();
        // Fraction-free update of all rows below:
        // a[r][j] = (pivot * a[r][j] - a[r][col] * a[pr][j]) / prev_pivot
        for r in (pivot_row + 1)..rows {
            let factor = a[(r, col)].clone();
            let (target, source) = a.two_rows_mut(r, pivot_row);
            for j in (col + 1)..cols {
                let num = &(&pivot * &target[j]) - &(&factor * &source[j]);
                let (q, rem) = num.div_rem(&prev_pivot);
                debug_assert!(rem.is_zero(), "Bareiss division must be exact");
                target[j] = q;
            }
            target[col] = Integer::zero();
        }
        prev_pivot = pivot.clone();
        last_pivot = pivot;
        pivot_row += 1;
    }

    let rank = pivot_row;
    let det = if rows == cols {
        Some(if rank < rows {
            Integer::zero()
        } else if sign < 0 {
            -last_pivot
        } else {
            last_pivot
        })
    } else {
        None
    };
    BareissResult { det, rank }
}

/// Exact determinant of a square integer matrix.
///
/// ```
/// use ccmx_linalg::{bareiss, matrix::int_matrix};
/// let m = int_matrix(&[&[1, 2], &[3, 4]]);
/// assert_eq!(bareiss::det(&m).to_i64(), Some(-2));
/// ```
pub fn det(m: &Matrix<Integer>) -> Integer {
    assert!(m.is_square(), "determinant of non-square matrix");
    bareiss(m).det.expect("square input")
}

/// Exact rank of an integer matrix (over ℚ).
pub fn rank(m: &Matrix<Integer>) -> usize {
    bareiss(m).rank
}

/// Is the square integer matrix singular? The paper's central predicate.
pub fn is_singular(m: &Matrix<Integer>) -> bool {
    det(m).is_zero()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gauss;
    use crate::matrix::int_matrix;
    use crate::ring::RationalField;
    use ccmx_bigint::Rational;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn dets_match_known_values() {
        assert_eq!(det(&int_matrix(&[&[5]])), Integer::from(5i64));
        assert_eq!(det(&int_matrix(&[&[1, 2], &[3, 4]])), Integer::from(-2i64));
        assert_eq!(
            det(&int_matrix(&[&[6, 1, 1], &[4, -2, 5], &[2, 8, 7]])),
            Integer::from(-306i64)
        );
        assert_eq!(det(&int_matrix(&[&[0, 1], &[1, 0]])), Integer::from(-1i64));
        assert_eq!(det(&int_matrix(&[&[1, 2], &[2, 4]])), Integer::zero());
    }

    #[test]
    fn zero_sized_and_identity() {
        let m = Matrix::from_fn(0, 0, |_, _| Integer::zero());
        assert_eq!(det(&m), Integer::one());
        let i5 = int_matrix(&[
            &[1, 0, 0, 0, 0],
            &[0, 1, 0, 0, 0],
            &[0, 0, 1, 0, 0],
            &[0, 0, 0, 1, 0],
            &[0, 0, 0, 0, 1],
        ]);
        assert_eq!(det(&i5), Integer::one());
        assert_eq!(rank(&i5), 5);
    }

    #[test]
    fn rank_rectangular() {
        assert_eq!(rank(&int_matrix(&[&[1, 2, 3], &[2, 4, 6]])), 1);
        assert_eq!(rank(&int_matrix(&[&[1, 2, 3], &[0, 0, 4]])), 2);
        assert_eq!(rank(&int_matrix(&[&[0, 0], &[0, 0], &[0, 0]])), 0);
    }

    #[test]
    fn agrees_with_rational_elimination_randomized() {
        let mut rng = StdRng::seed_from_u64(42);
        let f = RationalField;
        for n in 1..=6usize {
            for _ in 0..20 {
                let m = Matrix::from_fn(n, n, |_, _| Integer::from(rng.gen_range(-9i64..=9)));
                let over_q = m.map(|e| Rational::from(e.clone()));
                let dq = gauss::det(&f, &over_q);
                assert_eq!(Rational::from(det(&m)), dq, "det mismatch on {m:?}");
                assert_eq!(rank(&m), gauss::rank(&f, &over_q), "rank mismatch on {m:?}");
            }
        }
    }

    #[test]
    fn determinant_multiplicativity() {
        let mut rng = StdRng::seed_from_u64(7);
        let zz = crate::ring::IntegerRing;
        for _ in 0..10 {
            let a = Matrix::from_fn(4, 4, |_, _| Integer::from(rng.gen_range(-5i64..=5)));
            let b = Matrix::from_fn(4, 4, |_, _| Integer::from(rng.gen_range(-5i64..=5)));
            let ab = a.mul(&zz, &b);
            assert_eq!(det(&ab), det(&a) * det(&b));
        }
    }

    #[test]
    fn transpose_invariance() {
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..10 {
            let a = Matrix::from_fn(5, 5, |_, _| Integer::from(rng.gen_range(-5i64..=5)));
            assert_eq!(det(&a), det(&a.transpose()));
        }
    }

    #[test]
    fn large_entry_no_overflow() {
        // Entries around 2^40: det requires > 128-bit intermediates at n=6.
        let mut rng = StdRng::seed_from_u64(11);
        let big = 1i64 << 40;
        let m = Matrix::from_fn(6, 6, |_, _| Integer::from(rng.gen_range(-big..=big)));
        let d = det(&m);
        // Hadamard sanity: |det| <= bound.
        let bound = ccmx_bigint::bounds::hadamard_bound(6, &ccmx_bigint::Natural::from(big as u64));
        assert!(d.magnitude() <= &bound);
        // Cross-check against rational elimination.
        let f = RationalField;
        let over_q = m.map(|e| Rational::from(e.clone()));
        assert_eq!(Rational::from(d), gauss::det(&f, &over_q));
    }

    #[test]
    fn singular_by_construction() {
        // Row 2 = row 0 + row 1.
        let m = int_matrix(&[&[1, 7, 3], &[2, -1, 4], &[3, 6, 7]]);
        assert!(is_singular(&m));
        assert_eq!(rank(&m), 2);
    }
}
