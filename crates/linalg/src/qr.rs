//! QR factorization over ℚ via fraction-free Gram–Schmidt
//! (Corollary 1.2(c)).
//!
//! Over the rationals one cannot normalize (square roots leave the field),
//! so we compute the standard *unnormalized* Gram–Schmidt factorization
//! `M = Q·R` where the nonzero columns of `Q` are pairwise orthogonal and
//! `R` is upper triangular with unit diagonal. This carries exactly the
//! information content the paper bounds — it determines the orthonormal
//! QR up to positive column scalings, and in particular determines the
//! nonzero structure of the factors.

use ccmx_bigint::Rational;

use crate::matrix::Matrix;
use crate::ring::RationalField;

/// A Gram–Schmidt factorization `M = Q·R` over ℚ.
#[derive(Clone, Debug)]
pub struct QrDecomposition {
    /// Columns pairwise orthogonal (zero columns where `M`'s column was
    /// linearly dependent on its predecessors).
    pub q: Matrix<Rational>,
    /// Upper triangular with unit diagonal.
    pub r: Matrix<Rational>,
}

fn dot(a: &[Rational], b: &[Rational]) -> Rational {
    let mut acc = Rational::zero();
    for (x, y) in a.iter().zip(b) {
        acc += &(x * y);
    }
    acc
}

/// Compute the Gram–Schmidt QR factorization of `m` over ℚ.
pub fn qr(m: &Matrix<Rational>) -> QrDecomposition {
    let f = RationalField;
    let (rows, cols) = (m.rows(), m.cols());
    let mut q_cols: Vec<Vec<Rational>> = Vec::with_capacity(cols);
    let mut r = Matrix::identity(&f, cols);
    for j in 0..cols {
        let mut v = m.col(j);
        for (i, qi) in q_cols.iter().enumerate() {
            let denom = dot(qi, qi);
            if denom.is_zero() {
                continue;
            }
            let coef = &dot(&v, qi) / &denom;
            for (vk, qk) in v.iter_mut().zip(qi) {
                *vk -= &(&coef * qk);
            }
            r[(i, j)] = coef;
        }
        q_cols.push(v);
    }
    let q = Matrix::from_fn(rows, cols, |i, j| q_cols[j][i].clone());
    QrDecomposition { q, r }
}

/// Verify `M = Q·R`, that `Q`'s columns are pairwise orthogonal, and that
/// `R` is unit upper triangular.
pub fn verify_qr(m: &Matrix<Rational>, d: &QrDecomposition) -> bool {
    let f = RationalField;
    if d.q.mul(&f, &d.r) != *m {
        return false;
    }
    // Orthogonality.
    for a in 0..d.q.cols() {
        for b in (a + 1)..d.q.cols() {
            if !dot(&d.q.col(a), &d.q.col(b)).is_zero() {
                return false;
            }
        }
    }
    // R unit upper triangular.
    for i in 0..d.r.rows() {
        for j in 0..d.r.cols() {
            if i == j && !d.r[(i, j)].is_one() {
                return false;
            }
            if i > j && !d.r[(i, j)].is_zero() {
                return false;
            }
        }
    }
    true
}

/// The nonzero structure of the factors (what Corollary 1.2 bounds even
/// when only the structure is output).
pub fn nonzero_structure(d: &QrDecomposition) -> (Matrix<bool>, Matrix<bool>) {
    (d.q.map(|e| !e.is_zero()), d.r.map(|e| !e.is_zero()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gauss;
    use crate::matrix::int_matrix;
    use ccmx_bigint::Integer;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn qq_mat(rows: &[&[i64]]) -> Matrix<Rational> {
        int_matrix(rows).map(|i| Rational::from(i.clone()))
    }

    #[test]
    fn identity_factors_trivially() {
        let m = qq_mat(&[&[1, 0], &[0, 1]]);
        let d = qr(&m);
        assert!(verify_qr(&m, &d));
        assert_eq!(d.q, m);
    }

    #[test]
    fn classic_example() {
        let m = qq_mat(&[&[1, 1], &[0, 1], &[1, 0]]);
        let d = qr(&m);
        assert!(verify_qr(&m, &d));
        // First Q column equals first input column.
        assert_eq!(d.q.col(0), m.col(0));
    }

    #[test]
    fn rank_deficient_gives_zero_columns() {
        let m = qq_mat(&[&[1, 2], &[1, 2]]); // col2 = 2 * col1
        let d = qr(&m);
        assert!(verify_qr(&m, &d));
        assert!(d.q.col(1).iter().all(|e| e.is_zero()));
        // The count of nonzero Q columns equals the rank.
        let f = RationalField;
        let nonzero_cols = (0..d.q.cols())
            .filter(|&j| d.q.col(j).iter().any(|e| !e.is_zero()))
            .count();
        assert_eq!(nonzero_cols, gauss::rank(&f, &m));
    }

    #[test]
    fn randomized_roundtrip() {
        let mut rng = StdRng::seed_from_u64(99);
        for n in 1..=5usize {
            for _ in 0..10 {
                let m = Matrix::from_fn(n, n, |_, _| {
                    Rational::from(Integer::from(rng.gen_range(-5i64..=5)))
                });
                let d = qr(&m);
                assert!(verify_qr(&m, &d), "QR roundtrip failed on {m:?}");
            }
        }
    }

    #[test]
    fn rectangular_shapes() {
        for m in [
            qq_mat(&[&[1, 2, 3], &[4, 5, 6]]),
            qq_mat(&[&[1, 2], &[3, 4], &[5, 7]]),
        ] {
            let d = qr(&m);
            assert!(verify_qr(&m, &d));
            assert_eq!(d.q.rows(), m.rows());
            assert_eq!(d.r.rows(), m.cols());
        }
    }

    #[test]
    fn structure_of_triangular_input() {
        let m = qq_mat(&[&[2, 5], &[0, 3]]);
        let d = qr(&m);
        let (qs, _rs) = nonzero_structure(&d);
        // Upper triangular input with orthogonal columns-to-be: Q stays
        // upper triangular in structure.
        assert!(qs[(0, 0)]);
        assert!(!qs[(1, 0)]);
        assert!(verify_qr(&m, &d));
    }
}
