//! Modular linear algebra: rank and determinants over GF(p), and exact
//! integer determinants reconstructed with the Chinese Remainder Theorem.
//!
//! This is the engine behind two things:
//!
//! 1. The **randomized singularity protocol** (Leighton's
//!    `O(n² max(log n, log k))` upper bound quoted by the paper): reduce
//!    the matrix modulo a random prime and test singularity there.
//! 2. A fast **exact determinant**: compute `det mod p_i` for enough
//!    primes that the product exceeds twice the Hadamard bound, then CRT
//!    the residues back (optionally in parallel across primes).

use ccmx_bigint::bounds::hadamard_bound;
use ccmx_bigint::modular::{crt, symmetric_representative};
use ccmx_bigint::prime::next_prime;
use ccmx_bigint::{Integer, Natural};

use crate::gauss;
use crate::matrix::Matrix;
use crate::montgomery;
use crate::ring::PrimeField;

/// Reduce an integer matrix mod `p`.
pub fn reduce_matrix(m: &Matrix<Integer>, field: &PrimeField) -> Matrix<u64> {
    m.map(|e| field.reduce(e))
}

/// Is `p` a modulus the Montgomery kernels accept (odd, `3 ≤ p < 2^62`)?
#[inline]
fn montgomery_ok(p: u64) -> bool {
    p >= 3 && p % 2 == 1 && p < montgomery::MAX_MODULUS
}

/// Determinant of an integer matrix modulo `p`.
///
/// Dispatches to the Montgomery delayed-reduction kernel whenever `p`
/// qualifies (odd, below 2^62 — every prime the CRT plans produce); the
/// generic `%`-per-op [`PrimeField`] elimination remains as the path for
/// exotic moduli (p = 2, or ≥ 2^62).
pub fn det_mod(m: &Matrix<Integer>, p: u64) -> u64 {
    if montgomery_ok(p) {
        return montgomery::det_mod(m, p);
    }
    let field = PrimeField::new(p);
    gauss::det(&field, &reduce_matrix(m, &field))
}

/// Rank of an integer matrix modulo `p`. Always `<=` the rank over ℚ.
///
/// Same backend dispatch as [`det_mod`].
pub fn rank_mod(m: &Matrix<Integer>, p: u64) -> usize {
    if montgomery_ok(p) {
        return montgomery::rank_mod(m, p);
    }
    let field = PrimeField::new(p);
    gauss::rank(&field, &reduce_matrix(m, &field))
}

/// The list of primes used for a CRT determinant of `m`: successive primes
/// starting just above 2^59 whose product exceeds `2 * hadamard + 1`.
/// Everything in `[2^59, 2^60)` is both Montgomery-lazy compatible and
/// below [`crate::montgomery::GROUPED_REDC_MAX_MODULUS`], so the whole
/// plan runs on the blocked grouped-REDC fast path (at CRT matrix sizes
/// the 59- vs 61-bit prime width costs no extra primes).
pub fn crt_prime_plan(n: usize, entry_bound: &Natural) -> Vec<u64> {
    let target = (hadamard_bound(n, entry_bound) << 1u64) + Natural::one();
    let mut primes = Vec::new();
    let mut product = Natural::one();
    let mut p = next_prime(1 << 59);
    while product <= target {
        primes.push(p);
        product = product * Natural::from(p);
        p = next_prime(p + 1);
    }
    primes
}

/// Exact determinant via CRT over the plan returned by [`crt_prime_plan`].
///
/// `threads` selects the number of worker threads for the per-prime
/// eliminations (1 = serial). Result is exact for any integer matrix whose
/// entries are bounded by `entry_bound` in magnitude.
pub fn det_via_crt(m: &Matrix<Integer>, entry_bound: &Natural, threads: usize) -> Integer {
    assert!(m.is_square(), "determinant of non-square matrix");
    if m.rows() == 0 {
        return Integer::one();
    }
    let primes = crt_prime_plan(m.rows(), entry_bound);
    // One batched reduction pass over the bigint entries — fanned out in
    // the 2D prime × entry-chunk decomposition when `threads > 1` — then
    // the per-prime eliminations fan out over the pre-reduced residue
    // matrices (elimination is sequential per prime).
    let mut plan = crate::engine::ResiduePlan::new(&primes);
    let reduced = plan.reduce_matrix_par(m, threads);
    let fields = plan.fields();
    let n = m.rows();
    let residues: Vec<(Natural, Natural)> = crate::parallel::par_map(primes.len(), threads, |i| {
        (
            Natural::from(montgomery::det_from_residues(&fields[i], n, &reduced[i])),
            Natural::from(primes[i]),
        )
    });
    let (x, modulus) = crt(&residues);
    symmetric_representative(&x, &modulus)
}

/// Rank over ℚ with high probability, via a single random large prime:
/// `rank_p(M) = rank_Q(M)` unless `p` divides one of the nonzero maximal
/// minors. Returns `(rank_mod_p, p)`.
pub fn probable_rank<R: rand::Rng + ?Sized>(m: &Matrix<Integer>, rng: &mut R) -> (usize, u64) {
    let p = ccmx_bigint::prime::PrimeWindow::new(62).sample(rng);
    (rank_mod(m, p), p)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bareiss;
    use crate::matrix::int_matrix;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn det_mod_matches_exact() {
        let m = int_matrix(&[&[6, 1, 1], &[4, -2, 5], &[2, 8, 7]]); // det -306
        for p in [5u64, 7, 97, 1_000_000_007] {
            let expect = (-306i64).rem_euclid(p as i64) as u64;
            assert_eq!(det_mod(&m, p), expect, "p = {p}");
        }
    }

    #[test]
    fn rank_mod_can_drop_but_not_raise() {
        // det = 5: full rank over Q, rank 1 over GF(5).
        let m = int_matrix(&[&[1, 0], &[0, 5]]);
        assert_eq!(rank_mod(&m, 5), 1);
        assert_eq!(rank_mod(&m, 7), 2);
        assert_eq!(bareiss::rank(&m), 2);
    }

    #[test]
    fn crt_plan_covers_bound() {
        let plan = crt_prime_plan(4, &Natural::from(255u64));
        let mut product = Natural::one();
        for &p in &plan {
            product = product * Natural::from(p);
        }
        let target = (hadamard_bound(4, &Natural::from(255u64)) << 1u64) + Natural::one();
        assert!(product > target);
        // All plan members are distinct primes.
        let mut sorted = plan.clone();
        sorted.dedup();
        assert_eq!(sorted.len(), plan.len());
    }

    #[test]
    fn crt_det_matches_bareiss_randomized() {
        let mut rng = StdRng::seed_from_u64(123);
        for n in 1..=5usize {
            for _ in 0..5 {
                let bound = 1i64 << 20;
                let m = Matrix::from_fn(n, n, |_, _| Integer::from(rng.gen_range(-bound..=bound)));
                let exact = bareiss::det(&m);
                let crt1 = det_via_crt(&m, &Natural::from(bound as u64), 1);
                assert_eq!(crt1, exact, "serial CRT mismatch at n={n}");
            }
        }
    }

    #[test]
    fn crt_det_parallel_matches_serial() {
        let mut rng = StdRng::seed_from_u64(321);
        let bound = 1i64 << 30;
        let m = Matrix::from_fn(8, 8, |_, _| Integer::from(rng.gen_range(-bound..=bound)));
        let serial = det_via_crt(&m, &Natural::from(bound as u64), 1);
        let par = det_via_crt(&m, &Natural::from(bound as u64), 4);
        assert_eq!(serial, par);
        assert_eq!(serial, bareiss::det(&m));
    }

    #[test]
    fn crt_det_handles_negative_and_zero() {
        let neg = int_matrix(&[&[0, 1], &[1, 0]]); // det -1
        assert_eq!(
            det_via_crt(&neg, &Natural::from(1u64), 1),
            Integer::from(-1i64)
        );
        let sing = int_matrix(&[&[1, 2], &[2, 4]]);
        assert_eq!(det_via_crt(&sing, &Natural::from(4u64), 1), Integer::zero());
        let empty = Matrix::from_fn(0, 0, |_, _| Integer::zero());
        assert_eq!(det_via_crt(&empty, &Natural::one(), 1), Integer::one());
    }

    #[test]
    fn probable_rank_agrees_whp() {
        let mut rng = StdRng::seed_from_u64(5);
        let m = int_matrix(&[&[1, 2, 3], &[4, 5, 6], &[7, 8, 10]]); // rank 3
        let (r, _p) = probable_rank(&m, &mut rng);
        assert_eq!(r, 3);
        let s = int_matrix(&[&[1, 2, 3], &[4, 5, 6], &[7, 8, 9]]); // rank 2
        let (r, _p) = probable_rank(&s, &mut rng);
        assert_eq!(r, 2);
    }
}
