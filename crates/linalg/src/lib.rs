//! # ccmx-linalg
//!
//! Exact linear algebra over ℤ, ℚ and GF(p), built on [`ccmx_bigint`].
//!
//! This crate is the computational substrate of the Chu–Schnitger
//! reproduction. Everything the paper reasons about — singularity, rank,
//! determinants, span membership, the decompositions of Corollary 1.2 —
//! must be *decided exactly* here so that the executable lemmas in
//! `ccmx-core` and the protocols in `ccmx-comm` have ground truth.
//!
//! Layout:
//!
//! * [`ring`] — the `Ring`/`Field` abstraction (ring objects carry context
//!   such as the prime of GF(p); elements are plain data),
//! * [`matrix`] — dense row-major matrices with block/permutation helpers,
//! * [`gauss`] — Gaussian elimination over any field: rref, rank, det,
//!   nullspace, solve, span membership,
//! * [`bareiss`] — fraction-free (Bareiss) elimination over ℤ: determinant
//!   and rank without rational blow-up,
//! * [`montgomery`] — Montgomery-form GF(p) arithmetic with delayed
//!   reduction, and elimination kernels (`echelon_mod`/`det_mod`/`rank_mod`)
//!   built on it — cache-blocked (communication-avoiding) for small
//!   moduli, scalar otherwise,
//! * [`iomodel`] — the Hong–Kung I/O model: the fast-memory knob, the
//!   panel-width derivation and the `ccmx_iomodel_*` word meter the
//!   elimination kernels report into,
//! * [`modular`] — rank/det over GF(p) with `u64` kernels, random-prime rank,
//!   and CRT determinant reconstruction (optionally multi-threaded),
//! * [`crt`] — multi-prime CRT rank/nullspace/solve/span over ℤ with
//!   rational reconstruction and exact certification (the lemma verifiers'
//!   fast path),
//! * [`lup`], [`qr`], [`svd`] — the decompositions of Corollary 1.2 (for
//!   SVD, the *nonzero structure*, which is what the paper bounds),
//! * [`solve`] — exact solvability of `A·x = b` over ℚ (Corollary 1.3),
//! * [`freivalds`] — probabilistic verification of `A·B = C`,
//! * [`pool`] — the persistent work-stealing worker pool (parked
//!   threads, injector queue, atomic-cursor batches),
//! * [`parallel`] — data-parallel kernels (`par_map`/`par_fold`/
//!   `par_matmul`) scheduled on the pool,
//! * [`engine`] — the kernel-engine layer: one-pass multi-prime residue
//!   reduction and the incremental (rank-one update) singularity engine
//!   behind Gray-coded enumeration.

#![deny(missing_docs)]
#![warn(clippy::all)]

pub mod bareiss;
pub mod crt;
pub mod dixon;
pub mod engine;
pub mod freivalds;
pub mod gauss;
pub mod inverse;
pub mod iomodel;
pub mod lup;
pub mod matrix;
pub mod modular;
pub mod montgomery;
pub mod parallel;
pub mod poly;
pub mod pool;
pub mod qr;
pub mod ring;
pub mod smith;
pub mod solve;
pub mod svd;

pub use matrix::Matrix;
pub use ring::{Field, IntegerRing, PrimeField, RationalField, Ring};
