//! Univariate polynomials over ℚ, with Sturm sequences.
//!
//! This extends the SVD-structure module: the characteristic polynomial
//! of the Gram matrix `MᵀM` has the squared singular values as roots, and
//! a **Sturm chain** counts its *distinct real roots* exactly — so the
//! number of distinct (nonzero) singular values of an integer matrix is
//! computable in exact arithmetic, with no numerical eigensolver. Also
//! used: square-free parts (via gcd with the derivative) expose root
//! multiplicities.

use std::fmt;

use ccmx_bigint::{Integer, Rational};

/// A polynomial over ℚ, coefficients low-to-high, no trailing zeros.
#[derive(Clone, PartialEq, Eq)]
pub struct Poly {
    coeffs: Vec<Rational>,
}

impl Poly {
    /// The zero polynomial.
    pub fn zero() -> Self {
        Poly { coeffs: Vec::new() }
    }

    /// From low-to-high rational coefficients (trailing zeros stripped).
    pub fn new(mut coeffs: Vec<Rational>) -> Self {
        while coeffs.last().is_some_and(|c| c.is_zero()) {
            coeffs.pop();
        }
        Poly { coeffs }
    }

    /// From integer coefficients (low-to-high).
    pub fn from_integers(coeffs: &[Integer]) -> Self {
        Poly::new(coeffs.iter().map(|c| Rational::from(c.clone())).collect())
    }

    /// From `i64` coefficients (tests/examples).
    pub fn from_i64(coeffs: &[i64]) -> Self {
        Poly::new(
            coeffs
                .iter()
                .map(|&c| Rational::from(Integer::from(c)))
                .collect(),
        )
    }

    /// Coefficients, low-to-high (empty for zero).
    pub fn coeffs(&self) -> &[Rational] {
        &self.coeffs
    }

    /// Is this the zero polynomial?
    pub fn is_zero(&self) -> bool {
        self.coeffs.is_empty()
    }

    /// Degree (`None` for the zero polynomial).
    pub fn degree(&self) -> Option<usize> {
        self.coeffs.len().checked_sub(1)
    }

    /// Leading coefficient (`None` for zero).
    pub fn leading(&self) -> Option<&Rational> {
        self.coeffs.last()
    }

    /// Evaluate at `x` (Horner).
    pub fn eval(&self, x: &Rational) -> Rational {
        let mut acc = Rational::zero();
        for c in self.coeffs.iter().rev() {
            acc = &(&acc * x) + c;
        }
        acc
    }

    /// Formal derivative.
    pub fn derivative(&self) -> Poly {
        if self.coeffs.len() <= 1 {
            return Poly::zero();
        }
        Poly::new(
            self.coeffs[1..]
                .iter()
                .enumerate()
                .map(|(i, c)| c * &Rational::from(Integer::from((i + 1) as i64)))
                .collect(),
        )
    }

    /// Sum.
    pub fn add(&self, other: &Poly) -> Poly {
        let n = self.coeffs.len().max(other.coeffs.len());
        Poly::new(
            (0..n)
                .map(|i| {
                    let a = self.coeffs.get(i).cloned().unwrap_or_else(Rational::zero);
                    let b = other.coeffs.get(i).cloned().unwrap_or_else(Rational::zero);
                    a + b
                })
                .collect(),
        )
    }

    /// Negation.
    pub fn neg(&self) -> Poly {
        Poly {
            coeffs: self.coeffs.iter().map(|c| -c).collect(),
        }
    }

    /// Difference.
    pub fn sub(&self, other: &Poly) -> Poly {
        self.add(&other.neg())
    }

    /// Product.
    pub fn mul(&self, other: &Poly) -> Poly {
        if self.is_zero() || other.is_zero() {
            return Poly::zero();
        }
        let mut out = vec![Rational::zero(); self.coeffs.len() + other.coeffs.len() - 1];
        for (i, a) in self.coeffs.iter().enumerate() {
            if a.is_zero() {
                continue;
            }
            for (j, b) in other.coeffs.iter().enumerate() {
                out[i + j] += &(a * b);
            }
        }
        Poly::new(out)
    }

    /// Scale by a rational.
    pub fn scale(&self, s: &Rational) -> Poly {
        Poly::new(self.coeffs.iter().map(|c| c * s).collect())
    }

    /// Euclidean division: `self = q·div + r` with `deg r < deg div`.
    pub fn div_rem(&self, div: &Poly) -> (Poly, Poly) {
        assert!(!div.is_zero(), "polynomial division by zero");
        let dl = div.leading().unwrap().clone();
        let dd = div.degree().unwrap();
        let mut rem = self.clone();
        let mut q = vec![Rational::zero(); self.coeffs.len().saturating_sub(dd)];
        while let Some(rd) = rem.degree() {
            if rd < dd || rem.is_zero() {
                break;
            }
            let factor = rem.leading().unwrap() / &dl;
            let shift = rd - dd;
            q[shift] = factor.clone();
            // rem -= factor * x^shift * div
            let mut sub = vec![Rational::zero(); shift];
            sub.extend(div.coeffs.iter().map(|c| c * &factor));
            rem = rem.sub(&Poly::new(sub));
            if rem.degree() == Some(rd) {
                // Leading term must have cancelled.
                unreachable!("division failed to reduce degree");
            }
        }
        (Poly::new(q), rem)
    }

    /// Monic gcd.
    pub fn gcd(&self, other: &Poly) -> Poly {
        let mut a = self.clone();
        let mut b = other.clone();
        while !b.is_zero() {
            let r = a.div_rem(&b).1;
            a = b;
            b = r;
        }
        if let Some(l) = a.leading().cloned() {
            a.scale(&l.recip())
        } else {
            a
        }
    }

    /// Square-free part: `self / gcd(self, self')` — same roots, all
    /// simple.
    pub fn square_free(&self) -> Poly {
        if self.is_zero() {
            return Poly::zero();
        }
        let g = self.gcd(&self.derivative());
        if g.degree() == Some(0) {
            return self.clone();
        }
        self.div_rem(&g).0
    }

    /// A bound `B` such that all real roots lie in `(-B, B)` (Cauchy).
    pub fn cauchy_root_bound(&self) -> Rational {
        let Some(lead) = self.leading() else {
            return Rational::one();
        };
        let mut max = Rational::zero();
        for c in &self.coeffs[..self.coeffs.len() - 1] {
            let ratio = (c / lead).abs();
            if ratio > max {
                max = ratio;
            }
        }
        Rational::one() + max
    }
}

impl fmt::Debug for Poly {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_zero() {
            return write!(f, "Poly(0)");
        }
        write!(f, "Poly(")?;
        for (i, c) in self.coeffs.iter().enumerate().rev() {
            if c.is_zero() {
                continue;
            }
            write!(f, "{c}·x^{i} ")?;
        }
        write!(f, ")")
    }
}

/// The Sturm chain of a polynomial: `p, p', −rem(p, p'), …`.
pub fn sturm_chain(p: &Poly) -> Vec<Poly> {
    let mut chain = vec![p.clone(), p.derivative()];
    loop {
        let n = chain.len();
        if chain[n - 1].is_zero() {
            chain.pop();
            return chain;
        }
        let r = chain[n - 2].div_rem(&chain[n - 1]).1;
        if r.is_zero() {
            return chain;
        }
        chain.push(r.neg());
    }
}

fn sign_changes(chain: &[Poly], x: &Rational) -> usize {
    let mut last: Option<bool> = None;
    let mut changes = 0;
    for p in chain {
        let v = p.eval(x);
        if v.is_zero() {
            continue;
        }
        let neg = v.is_negative();
        if let Some(prev) = last {
            if prev != neg {
                changes += 1;
            }
        }
        last = Some(neg);
    }
    changes
}

/// Number of **distinct** real roots of `p` in the half-open interval
/// `(lo, hi]`, by Sturm's theorem (applied to the square-free part, so
/// multiplicities don't confuse the count).
pub fn count_real_roots_in(p: &Poly, lo: &Rational, hi: &Rational) -> usize {
    assert!(lo < hi, "empty interval");
    let sf = p.square_free();
    if sf.degree().unwrap_or(0) == 0 {
        return 0;
    }
    let chain = sturm_chain(&sf);
    sign_changes(&chain, lo) - sign_changes(&chain, hi)
}

/// Number of distinct real roots of `p` (anywhere).
pub fn count_real_roots(p: &Poly) -> usize {
    if p.is_zero() || p.degree() == Some(0) {
        return 0;
    }
    let b = p.cauchy_root_bound();
    count_real_roots_in(p, &-&b, &b)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn q(v: i64) -> Rational {
        Rational::from(Integer::from(v))
    }

    #[test]
    fn eval_and_derivative() {
        // p = x² - 3x + 2 = (x-1)(x-2)
        let p = Poly::from_i64(&[2, -3, 1]);
        assert_eq!(p.eval(&q(1)), q(0));
        assert_eq!(p.eval(&q(2)), q(0));
        assert_eq!(p.eval(&q(0)), q(2));
        assert_eq!(p.derivative(), Poly::from_i64(&[-3, 2]));
        assert_eq!(p.degree(), Some(2));
    }

    #[test]
    fn arithmetic_identities() {
        let p = Poly::from_i64(&[1, 2, 3]);
        let r = Poly::from_i64(&[5, -1]);
        assert_eq!(p.add(&r).sub(&r), p);
        assert_eq!(p.mul(&r).div_rem(&r), (p.clone(), Poly::zero()));
        let (quot, rem) = p.div_rem(&r);
        assert_eq!(quot.mul(&r).add(&rem), p);
        assert!(rem.degree() < r.degree());
    }

    #[test]
    #[should_panic(expected = "division by zero")]
    fn division_by_zero_poly() {
        let _ = Poly::from_i64(&[1, 1]).div_rem(&Poly::zero());
    }

    #[test]
    fn gcd_of_products() {
        // gcd((x-1)(x-2), (x-1)(x-3)) = x - 1 (monic).
        let a = Poly::from_i64(&[2, -3, 1]);
        let b = Poly::from_i64(&[3, -4, 1]);
        assert_eq!(a.gcd(&b), Poly::from_i64(&[-1, 1]));
        // Coprime: gcd = 1.
        let c = Poly::from_i64(&[5, 1]);
        assert_eq!(a.gcd(&c).degree(), Some(0));
    }

    #[test]
    fn square_free_strips_multiplicity() {
        // (x-1)²(x-2) = x³ - 4x² + 5x - 2.
        let p = Poly::from_i64(&[-2, 5, -4, 1]);
        let sf = p.square_free();
        // Square-free part = (x-1)(x-2) up to scaling.
        assert_eq!(sf.degree(), Some(2));
        assert_eq!(sf.eval(&q(1)), q(0));
        assert_eq!(sf.eval(&q(2)), q(0));
        assert!(!sf.eval(&q(3)).is_zero());
    }

    #[test]
    fn sturm_counts_simple_roots() {
        // (x-1)(x-2)(x-3): 3 distinct real roots.
        let p = Poly::from_i64(&[-6, 11, -6, 1]);
        assert_eq!(count_real_roots(&p), 3);
        assert_eq!(count_real_roots_in(&p, &q(0), &q(2)), 2); // roots 1, 2 in (0, 2]
        assert_eq!(count_real_roots_in(&p, &q(2), &q(10)), 1); // root 3
        assert_eq!(count_real_roots_in(&p, &q(4), &q(10)), 0);
    }

    #[test]
    fn sturm_counts_with_multiplicities_collapsed() {
        // (x-1)²(x-2): 2 distinct real roots.
        let p = Poly::from_i64(&[-2, 5, -4, 1]);
        assert_eq!(count_real_roots(&p), 2);
    }

    #[test]
    fn sturm_on_no_real_roots() {
        // x² + 1.
        let p = Poly::from_i64(&[1, 0, 1]);
        assert_eq!(count_real_roots(&p), 0);
        // x² - 2: two irrational roots.
        let p2 = Poly::from_i64(&[-2, 0, 1]);
        assert_eq!(count_real_roots(&p2), 2);
        assert_eq!(count_real_roots_in(&p2, &q(0), &q(2)), 1); // √2 only
    }

    #[test]
    fn cauchy_bound_contains_roots() {
        let p = Poly::from_i64(&[-6, 11, -6, 1]); // roots 1, 2, 3
        let b = p.cauchy_root_bound();
        assert!(b > q(3));
        // All roots inside (-B, B): count over that interval = total.
        assert_eq!(count_real_roots_in(&p, &-&b, &b), 3);
    }

    #[test]
    fn high_degree_wilkinson_fragment() {
        // (x-1)(x-2)...(x-6): exactly 6 distinct roots; a classic
        // ill-conditioned case for floating point, exact here.
        let mut p = Poly::from_i64(&[1]);
        for r in 1..=6i64 {
            p = p.mul(&Poly::from_i64(&[-r, 1]));
        }
        assert_eq!(p.degree(), Some(6));
        assert_eq!(count_real_roots(&p), 6);
        assert_eq!(count_real_roots_in(&p, &q(3), &q(6)), 3); // 4, 5, 6
    }
}
