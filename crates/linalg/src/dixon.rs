//! Dixon's p-adic linear solver with rational reconstruction.
//!
//! The production technique for exact rational solutions of integer
//! systems (the engine inside serious exact-LA packages): solve
//! `A·x = b` by lifting a single mod-`p` inverse through a `p`-adic
//! expansion, then recover the rational coordinates by lattice
//! (continued-fraction) reconstruction. Cost per lift step is one
//! GF(p) matrix–vector product — no rational arithmetic until the very
//! end — which is why it crushes rational elimination on large inputs.
//!
//! Steps:
//! 1. pick a random large prime `p` with `det(A) ≢ 0 (mod p)`,
//! 2. precompute `C = A⁻¹ mod p`,
//! 3. iterate `x_i = C·r_i mod p`, `r_{i+1} = (r_i − A·x_i)/p`,
//!    accumulating `x = Σ x_i·pⁱ` — after `K` steps `A·x ≡ b (mod p^K)`,
//! 4. when `p^K` exceeds twice the square of the solution's
//!    numerator/denominator bounds (Hadamard/Cramer), reconstruct each
//!    coordinate as a fraction with [`rational_reconstruct`].

use ccmx_bigint::bounds::hadamard_bound;
use ccmx_bigint::gcd::gcd;
use ccmx_bigint::prime::PrimeWindow;
use ccmx_bigint::{Integer, Natural, Rational};
use rand::Rng;

use crate::inverse::inverse;
use crate::matrix::Matrix;
use crate::modular::reduce_matrix;
use crate::ring::PrimeField;

/// Reconstruct a rational `n/d` from its residue `r (mod m)` with
/// `|n| ≤ bound` and `0 < d ≤ bound`, provided `2·bound² < m`
/// (then the reconstruction is unique). Returns `None` if no such
/// fraction exists or `gcd(d, m) ≠ 1`.
pub fn rational_reconstruct(r: &Natural, m: &Natural, bound: &Natural) -> Option<Rational> {
    // Lattice reduction via the extended Euclidean algorithm on (m, r):
    // walk the remainder sequence until the remainder drops to <= bound;
    // the corresponding Bézout coefficient is the denominator.
    let mut r0 = Integer::from(m.clone());
    let mut r1 = Integer::from(r.clone());
    let mut t0 = Integer::zero();
    let mut t1 = Integer::one();
    let bound_i = Integer::from(bound.clone());
    while r1.magnitude() > bound_i.magnitude() {
        if r1.is_zero() {
            return None;
        }
        let (q, rem) = r0.div_rem(&r1);
        r0 = std::mem::replace(&mut r1, rem);
        let nt = &t0 - &(&q * &t1);
        t0 = std::mem::replace(&mut t1, nt);
    }
    // Candidate: n = r1 (signed), d = t1.
    if t1.is_zero() || t1.magnitude() > bound_i.magnitude() {
        return None;
    }
    let (num, den) = if t1.is_negative() {
        (-r1, -t1)
    } else {
        (r1, t1)
    };
    // Validity: gcd(den, m) must be 1 for r to really represent n/d.
    if !gcd(den.magnitude(), m).is_one() {
        return None;
    }
    Some(Rational::new(num, den))
}

/// Solve `A·x = b` exactly over ℚ for a **nonsingular** square integer
/// matrix, via Dixon lifting. Returns `None` if `A` is singular.
pub fn solve_dixon<R: Rng + ?Sized>(
    a: &Matrix<Integer>,
    b: &[Integer],
    rng: &mut R,
) -> Option<Vec<Rational>> {
    assert!(a.is_square(), "Dixon solver needs a square system");
    assert_eq!(a.rows(), b.len());
    let n = a.rows();
    if n == 0 {
        return Some(Vec::new());
    }

    // Entry bound for the Cramer bounds on numerators/denominators.
    let entry_bound = a
        .data()
        .iter()
        .map(|e| e.magnitude().clone())
        .chain(b.iter().map(|e| e.magnitude().clone()))
        .max()
        .unwrap_or_else(Natural::one)
        .max(Natural::one());
    // |den| <= |det A| <= H(A); |num_i| <= H(A_i with b column) — both
    // bounded by the Hadamard bound with the max entry.
    let bound = hadamard_bound(n, &entry_bound);

    // Pick p with A invertible mod p (singular A fails for every p; cap
    // the retries and fall back to a singularity check).
    let window = PrimeWindow::new(62);
    let mut p = 0u64;
    let mut c = None;
    for _ in 0..8 {
        p = window.sample(rng);
        let field = PrimeField::new(p);
        if let Some(inv) = inverse(&field, &reduce_matrix(a, &field)) {
            c = Some(inv);
            break;
        }
    }
    let c = match c {
        Some(c) => c,
        None => {
            // Eight random 62-bit primes all divide det(A) only if
            // det(A) = 0 (up to astronomically small probability); make
            // it exact:
            if crate::bareiss::det(a).is_zero() {
                return None;
            }
            unreachable!("nonsingular matrix rejected by 8 independent primes");
        }
    };
    let field = PrimeField::new(p);

    // Lift: need p^K > 2 * bound^2.
    let target = (&bound * &bound) << 1u64;
    let p_nat = Natural::from(p);
    let mut p_pow = Natural::one();
    let mut x = vec![Integer::zero(); n]; // accumulated solution mod p^K
    let mut r: Vec<Integer> = b.to_vec(); // residual; invariant: A·x ≡ b - p^i·r
    let zz = crate::ring::IntegerRing;
    while p_pow <= target {
        // x_i = C · (r mod p) in GF(p).
        let r_mod: Vec<u64> = r.iter().map(|v| field.reduce(v)).collect();
        let xi = c.mul_vec(&field, &r_mod);
        // x += p^i * x_i ; r = (r - A·x_i) / p.
        let xi_int: Vec<Integer> = xi.iter().map(|&v| Integer::from(v)).collect();
        for (acc, v) in x.iter_mut().zip(&xi_int) {
            *acc += &(v * &Integer::from(p_pow.clone()));
        }
        let a_xi = a.mul_vec(&zz, &xi_int);
        for (ri, av) in r.iter_mut().zip(a_xi) {
            let diff = &*ri - &av;
            let (q, rem) = diff.div_rem(&Integer::from(p as i64));
            debug_assert!(rem.is_zero(), "p-adic residual must be divisible by p");
            *ri = q;
        }
        p_pow = &p_pow * &p_nat;
    }

    // Reconstruct each coordinate from x mod p^K.
    let modulus = p_pow;
    let mut out = Vec::with_capacity(n);
    for coord in &x {
        let residue = coord.rem_euclid(&Integer::from(modulus.clone()));
        let rat = rational_reconstruct(residue.magnitude(), &modulus, &bound)?;
        out.push(rat);
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrix::int_matrix;
    use crate::ring::RationalField;
    use crate::{gauss, solve};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn reconstruct_small_fractions() {
        // 1/3 mod 1000003: r = inverse of 3 times 1 mod m.
        let m = 1_000_003u64;
        let inv3 = ccmx_bigint::modular::inv_mod_u64(3, m).unwrap();
        let r = Natural::from(inv3);
        let got = rational_reconstruct(&r, &Natural::from(m), &Natural::from(500u64)).unwrap();
        assert_eq!(got, Rational::new(Integer::one(), Integer::from(3i64)));
        // -7/5 mod m.
        let v = ((m as i64 - 7) as u64 * ccmx_bigint::modular::inv_mod_u64(5, m).unwrap()) % m;
        let got =
            rational_reconstruct(&Natural::from(v), &Natural::from(m), &Natural::from(500u64))
                .unwrap();
        assert_eq!(
            got,
            Rational::new(Integer::from(-7i64), Integer::from(5i64))
        );
    }

    #[test]
    fn reconstruct_fails_outside_bound() {
        // A residue representing a fraction with large parts cannot be
        // reconstructed under a tiny bound.
        let m = Natural::from(1_000_003u64);
        let r = Natural::from(123_457u64);
        // bound 2: only fractions n/d with |n|,d <= 2 exist; 123457 mod m
        // is none of them.
        assert_eq!(rational_reconstruct(&r, &m, &Natural::from(2u64)), None);
    }

    #[test]
    fn dixon_matches_elimination_randomized() {
        let mut rng = StdRng::seed_from_u64(9);
        for n in 1..=6usize {
            for _ in 0..6 {
                let a = Matrix::from_fn(n, n, |_, _| {
                    Integer::from(rand::Rng::gen_range(&mut rng, -9i64..=9))
                });
                let b: Vec<Integer> = (0..n)
                    .map(|_| Integer::from(rand::Rng::gen_range(&mut rng, -9i64..=9)))
                    .collect();
                let dixon = solve_dixon(&a, &b, &mut rng);
                let elim = solve::solve(&a, &b);
                match (crate::bareiss::det(&a).is_zero(), dixon) {
                    (true, d) => assert!(d.is_none(), "singular system must return None"),
                    (false, Some(x)) => {
                        // Verify A·x = b over Q.
                        let f = RationalField;
                        let aq = a.map(|e| Rational::from(e.clone()));
                        let bq: Vec<Rational> =
                            b.iter().map(|e| Rational::from(e.clone())).collect();
                        assert_eq!(aq.mul_vec(&f, &x), bq, "Dixon solution wrong");
                        // And equals the elimination solution.
                        assert_eq!(Some(x), elim);
                    }
                    (false, None) => panic!("Dixon failed on a nonsingular system"),
                }
            }
        }
    }

    #[test]
    fn dixon_large_entries() {
        let mut rng = StdRng::seed_from_u64(10);
        let n = 5;
        let big = 1i64 << 40;
        let a = Matrix::from_fn(n, n, |_, _| {
            Integer::from(rand::Rng::gen_range(&mut rng, -big..=big))
        });
        let b: Vec<Integer> = (0..n)
            .map(|_| Integer::from(rand::Rng::gen_range(&mut rng, -big..=big)))
            .collect();
        if crate::bareiss::det(&a).is_zero() {
            return; // astronomically unlikely
        }
        let x = solve_dixon(&a, &b, &mut rng).unwrap();
        let f = RationalField;
        let aq = a.map(|e| Rational::from(e.clone()));
        let bq: Vec<Rational> = b.iter().map(|e| Rational::from(e.clone())).collect();
        assert_eq!(aq.mul_vec(&f, &x), bq);
    }

    #[test]
    fn dixon_identity_and_diagonal() {
        let mut rng = StdRng::seed_from_u64(11);
        let i3 = int_matrix(&[&[1, 0, 0], &[0, 1, 0], &[0, 0, 1]]);
        let b = vec![
            Integer::from(3i64),
            Integer::from(-5i64),
            Integer::from(7i64),
        ];
        let x = solve_dixon(&i3, &b, &mut rng).unwrap();
        let expect: Vec<Rational> = b.iter().map(|v| Rational::from(v.clone())).collect();
        assert_eq!(x, expect);
        // Diagonal with fractions: 2x = 1 → x = 1/2.
        let d = int_matrix(&[&[2]]);
        let x = solve_dixon(&d, &[Integer::one()], &mut rng).unwrap();
        assert_eq!(x[0], Rational::new(Integer::one(), Integer::from(2i64)));
    }

    #[test]
    fn dixon_empty_system() {
        let mut rng = StdRng::seed_from_u64(12);
        let e = Matrix::from_fn(0, 0, |_, _| Integer::zero());
        assert_eq!(solve_dixon(&e, &[], &mut rng), Some(vec![]));
    }

    #[test]
    fn gauss_solver_cross_check_on_hilbert_like() {
        // A dense, ill-conditioned-for-floats system: exact methods agree.
        let mut rng = StdRng::seed_from_u64(13);
        let n = 4;
        let a = Matrix::from_fn(n, n, |i, j| {
            Integer::from(((i + j + 1) * (i * j + 1)) as i64)
        });
        if crate::bareiss::det(&a).is_zero() {
            return;
        }
        let b: Vec<Integer> = (0..n).map(|i| Integer::from(i as i64 + 1)).collect();
        let x1 = solve_dixon(&a, &b, &mut rng).unwrap();
        let f = RationalField;
        let aq = a.map(|e| Rational::from(e.clone()));
        let bq: Vec<Rational> = b.iter().map(|e| Rational::from(e.clone())).collect();
        let x2 = gauss::solve(&f, &aq, &bq).unwrap();
        assert_eq!(x1, x2);
    }
}
