//! Property-based tests for the arbitrary-precision arithmetic:
//! ring/field axioms, division invariants, gcd laws, and agreement with
//! native `u128`/`i128` arithmetic on the representable range.

use ccmx_bigint::gcd::{extended_gcd, gcd, lcm};
use ccmx_bigint::modular::{inv_mod_u64, mul_mod_u64, pow_mod_u64};
use ccmx_bigint::prime::is_prime_u64;
use ccmx_bigint::{Integer, Natural, Rational};
use proptest::prelude::*;

fn arb_natural() -> impl Strategy<Value = Natural> {
    prop::collection::vec(any::<u64>(), 0..6).prop_map(Natural::from_limbs)
}

fn arb_integer() -> impl Strategy<Value = Integer> {
    (arb_natural(), any::<bool>()).prop_map(|(m, neg)| {
        let i = Integer::from(m);
        if neg {
            -i
        } else {
            i
        }
    })
}

fn arb_rational() -> impl Strategy<Value = Rational> {
    (any::<i64>(), 1..=u32::MAX)
        .prop_map(|(n, d)| Rational::new(Integer::from(n), Integer::from(d as i64)))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    // ------------------------- Natural -------------------------

    #[test]
    fn natural_add_commutes(a in arb_natural(), b in arb_natural()) {
        prop_assert_eq!(&a + &b, &b + &a);
    }

    #[test]
    fn natural_add_associates(a in arb_natural(), b in arb_natural(), c in arb_natural()) {
        prop_assert_eq!(&(&a + &b) + &c, &a + &(&b + &c));
    }

    #[test]
    fn natural_mul_commutes(a in arb_natural(), b in arb_natural()) {
        prop_assert_eq!(&a * &b, &b * &a);
    }

    #[test]
    fn natural_mul_associates(a in arb_natural(), b in arb_natural(), c in arb_natural()) {
        prop_assert_eq!(&(&a * &b) * &c, &a * &(&b * &c));
    }

    #[test]
    fn natural_distributive(a in arb_natural(), b in arb_natural(), c in arb_natural()) {
        prop_assert_eq!(&a * &(&b + &c), &(&a * &b) + &(&a * &c));
    }

    #[test]
    fn natural_add_sub_roundtrip(a in arb_natural(), b in arb_natural()) {
        let s = &a + &b;
        prop_assert_eq!(&s - &b, a);
    }

    #[test]
    fn natural_div_rem_invariant(a in arb_natural(), b in arb_natural()) {
        prop_assume!(!b.is_zero());
        let (q, r) = a.div_rem(&b);
        prop_assert!(r < b);
        prop_assert_eq!(&(&q * &b) + &r, a);
    }

    #[test]
    fn natural_matches_u128(a in any::<u128>(), b in any::<u128>()) {
        let (na, nb) = (Natural::from(a), Natural::from(b));
        prop_assert_eq!((&na + &nb).to_string(), (a.checked_add(b).map(|s| s.to_string())).unwrap_or_else(|| (&na + &nb).to_string()));
        if let (Some(expect_q), Some(expect_r)) = (a.checked_div(b), a.checked_rem(b)) {
            let (q, r) = na.div_rem(&nb);
            prop_assert_eq!(q.to_u128().unwrap(), expect_q);
            prop_assert_eq!(r.to_u128().unwrap(), expect_r);
        }
    }

    #[test]
    fn natural_shift_is_power_of_two_mul(a in arb_natural(), s in 0u64..200) {
        prop_assert_eq!(&a << s, &a * &Natural::power_of_two(s));
    }

    #[test]
    fn natural_isqrt_bounds(a in arb_natural()) {
        let s = a.isqrt();
        prop_assert!((&s * &s) <= a);
        let s1 = &s + &Natural::one();
        prop_assert!((&s1 * &s1) > a);
    }

    #[test]
    fn natural_display_parse_roundtrip(a in arb_natural()) {
        let s = a.to_string();
        prop_assert_eq!(Natural::from_decimal_str(&s).unwrap(), a);
    }

    // ------------------------- Integer -------------------------

    #[test]
    fn integer_ring_axioms(a in arb_integer(), b in arb_integer(), c in arb_integer()) {
        prop_assert_eq!(&a + &b, &b + &a);
        prop_assert_eq!(&(&a + &b) + &c, &a + &(&b + &c));
        prop_assert_eq!(&a * &b, &b * &a);
        prop_assert_eq!(&a * &(&b + &c), &(&a * &b) + &(&a * &c));
        prop_assert_eq!(&a + &Integer::zero(), a.clone());
        prop_assert_eq!(&a * &Integer::one(), a.clone());
        prop_assert_eq!(&a + &(-&a), Integer::zero());
    }

    #[test]
    fn integer_div_rem_truncates(a in arb_integer(), b in arb_integer()) {
        prop_assume!(!b.is_zero());
        let (q, r) = a.div_rem(&b);
        prop_assert_eq!(&(&q * &b) + &r, a.clone());
        prop_assert!(r.magnitude() < b.magnitude());
        // Remainder sign matches the dividend (or is zero).
        if !r.is_zero() {
            prop_assert_eq!(r.is_negative(), a.is_negative());
        }
    }

    #[test]
    fn integer_rem_euclid_in_range(a in arb_integer(), b in arb_integer()) {
        prop_assume!(!b.is_zero());
        let r = a.rem_euclid(&b);
        prop_assert!(!r.is_negative());
        prop_assert!(r.magnitude() < b.magnitude());
        prop_assert!((&a - &r).divisible_by(&b));
    }

    #[test]
    fn integer_matches_i128(a in any::<i64>(), b in any::<i64>()) {
        let (ia, ib) = (Integer::from(a), Integer::from(b));
        prop_assert_eq!((&ia + &ib).to_i128(), Some(a as i128 + b as i128));
        prop_assert_eq!((&ia * &ib).to_i128(), Some(a as i128 * b as i128));
        prop_assert_eq!((&ia - &ib).to_i128(), Some(a as i128 - b as i128));
    }

    // ------------------------- GCD -------------------------

    #[test]
    fn gcd_divides_both(a in arb_natural(), b in arb_natural()) {
        let g = gcd(&a, &b);
        if !g.is_zero() {
            prop_assert!((&a % &g).is_zero());
            prop_assert!((&b % &g).is_zero());
        } else {
            prop_assert!(a.is_zero() && b.is_zero());
        }
    }

    #[test]
    fn gcd_lcm_product_law(a in any::<u64>(), b in any::<u64>()) {
        let (na, nb) = (Natural::from(a), Natural::from(b));
        let g = gcd(&na, &nb);
        let l = lcm(&na, &nb);
        prop_assert_eq!(&g * &l, &na * &nb);
    }

    #[test]
    fn bezout_identity(a in arb_integer(), b in arb_integer()) {
        let (g, x, y) = extended_gcd(&a, &b);
        prop_assert_eq!(&(&a * &x) + &(&b * &y), g.clone());
        prop_assert!(!g.is_negative());
    }

    // ------------------------- Rational -------------------------

    #[test]
    fn rational_field_axioms(a in arb_rational(), b in arb_rational(), c in arb_rational()) {
        prop_assert_eq!(&a + &b, &b + &a);
        prop_assert_eq!(&a * &b, &b * &a);
        prop_assert_eq!(&(&a + &b) + &c, &a + &(&b + &c));
        prop_assert_eq!(&a * &(&b + &c), &(&a * &b) + &(&a * &c));
        if !a.is_zero() {
            prop_assert_eq!(&a * &a.recip(), Rational::one());
        }
    }

    #[test]
    fn rational_sub_div_inverses(a in arb_rational(), b in arb_rational()) {
        prop_assert_eq!(&(&a + &b) - &b, a.clone());
        if !b.is_zero() {
            prop_assert_eq!(&(&a * &b) / &b, a);
        }
    }

    #[test]
    fn rational_always_normalized(a in arb_rational(), b in arb_rational()) {
        let s = &a + &b;
        let g = gcd(s.numerator().magnitude(), s.denominator());
        prop_assert!(g.is_one() || s.is_zero());
        prop_assert!(!s.denominator().is_zero());
    }

    // ------------------------- Modular -------------------------

    #[test]
    fn modular_inverse_law(a in 1u64..u32::MAX as u64, bump in 0u64..1000) {
        let p = ccmx_bigint::prime::next_prime(u32::MAX as u64 + bump);
        prop_assume!(a % p != 0);
        let inv = inv_mod_u64(a % p, p).unwrap();
        prop_assert_eq!(mul_mod_u64(a % p, inv, p), 1);
    }

    #[test]
    fn fermat_on_random_primes(seed in any::<u64>(), a in 2u64..1_000_000) {
        let p = ccmx_bigint::prime::next_prime(1_000_000 + (seed % 1_000_000));
        prop_assert!(is_prime_u64(p));
        prop_assert_eq!(pow_mod_u64(a % p, p - 1, p), if a % p == 0 { 0 } else { 1 });
    }
}
