//! Greatest common divisors and the extended Euclidean algorithm.

use crate::integer::Sign;
use crate::{Integer, Natural};

/// Euclidean GCD of two naturals (`gcd(0, 0) = 0`).
pub fn gcd(a: &Natural, b: &Natural) -> Natural {
    let mut a = a.clone();
    let mut b = b.clone();
    while !b.is_zero() {
        let r = &a % &b;
        a = b;
        b = r;
    }
    a
}

/// GCD of two integers, always non-negative.
pub fn gcd_integer(a: &Integer, b: &Integer) -> Integer {
    Integer::from(gcd(a.magnitude(), b.magnitude()))
}

/// Least common multiple (`lcm(0, x) = 0`).
pub fn lcm(a: &Natural, b: &Natural) -> Natural {
    if a.is_zero() || b.is_zero() {
        return Natural::zero();
    }
    let g = gcd(a, b);
    &(a / &g) * b
}

/// Extended Euclidean algorithm: returns `(g, x, y)` with
/// `a*x + b*y = g = gcd(a, b)` and `g >= 0`.
pub fn extended_gcd(a: &Integer, b: &Integer) -> (Integer, Integer, Integer) {
    let (mut old_r, mut r) = (a.clone(), b.clone());
    let (mut old_s, mut s) = (Integer::one(), Integer::zero());
    let (mut old_t, mut t) = (Integer::zero(), Integer::one());
    while !r.is_zero() {
        let (q, rem) = old_r.div_rem(&r);
        old_r = std::mem::replace(&mut r, rem);
        let ns = &old_s - &(&q * &s);
        old_s = std::mem::replace(&mut s, ns);
        let nt = &old_t - &(&q * &t);
        old_t = std::mem::replace(&mut t, nt);
    }
    if old_r.is_negative() {
        (-old_r, -old_s, -old_t)
    } else {
        (old_r, old_s, old_t)
    }
}

/// Modular inverse of `a` modulo `m` (m > 1): `Some(x)` with
/// `a*x ≡ 1 (mod m)` and `0 <= x < m`, or `None` if `gcd(a, m) != 1`.
pub fn mod_inverse(a: &Integer, m: &Integer) -> Option<Integer> {
    assert!(m > &Integer::one(), "modulus must exceed 1");
    let (g, x, _) = extended_gcd(a, m);
    if g.is_one() {
        Some(x.rem_euclid(m))
    } else {
        None
    }
}

/// Remove all factors of `p` from `n`, returning `(n / p^e, e)`.
pub fn remove_factor(n: &Natural, p: &Natural) -> (Natural, u64) {
    assert!(p > &Natural::one());
    let mut n = n.clone();
    let mut e = 0;
    if n.is_zero() {
        return (n, 0);
    }
    loop {
        let (q, r) = n.div_rem(p);
        if r.is_zero() {
            n = q;
            e += 1;
        } else {
            return (n, e);
        }
    }
}

/// Sign-aware helper: `Integer` from a `Sign` and `u64`.
pub fn signed(sign: Sign, magnitude: u64) -> Integer {
    Integer::from_sign_magnitude(
        if magnitude == 0 { Sign::Zero } else { sign },
        Natural::from(magnitude),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(v: u64) -> Natural {
        Natural::from(v)
    }
    fn z(v: i64) -> Integer {
        Integer::from(v)
    }

    #[test]
    fn gcd_basics() {
        assert_eq!(gcd(&n(12), &n(18)), n(6));
        assert_eq!(gcd(&n(0), &n(5)), n(5));
        assert_eq!(gcd(&n(5), &n(0)), n(5));
        assert_eq!(gcd(&n(0), &n(0)), n(0));
        assert_eq!(gcd(&n(17), &n(13)), n(1));
    }

    #[test]
    fn gcd_large_fibonacci_worst_case() {
        // Consecutive Fibonacci numbers are the Euclid worst case.
        let mut a = Natural::one();
        let mut b = Natural::one();
        for _ in 0..200 {
            let c = &a + &b;
            a = b;
            b = c;
        }
        assert_eq!(gcd(&a, &b), Natural::one());
    }

    #[test]
    fn lcm_basics() {
        assert_eq!(lcm(&n(4), &n(6)), n(12));
        assert_eq!(lcm(&n(0), &n(6)), n(0));
        assert_eq!(lcm(&n(7), &n(7)), n(7));
    }

    #[test]
    fn extended_gcd_bezout_identity() {
        let cases = [
            (240i64, 46),
            (-240, 46),
            (240, -46),
            (-240, -46),
            (0, 5),
            (5, 0),
            (1, 1),
        ];
        for (a, b) in cases {
            let (g, x, y) = extended_gcd(&z(a), &z(b));
            assert_eq!(&(&z(a) * &x) + &(&z(b) * &y), g, "bezout for {a},{b}");
            assert!(!g.is_negative());
            assert_eq!(g, gcd_integer(&z(a), &z(b)));
        }
    }

    #[test]
    fn mod_inverse_exists_for_coprime() {
        let m = z(97);
        for a in 1..97 {
            let inv = mod_inverse(&z(a), &m).unwrap();
            assert_eq!((&z(a) * &inv).rem_euclid(&m), Integer::one());
        }
    }

    #[test]
    fn mod_inverse_absent_for_shared_factor() {
        assert!(mod_inverse(&z(6), &z(9)).is_none());
        assert!(mod_inverse(&z(0), &z(9)).is_none());
    }

    #[test]
    fn remove_factor_counts() {
        let (rest, e) = remove_factor(&n(360), &n(2));
        assert_eq!((rest, e), (n(45), 3));
        let (rest, e) = remove_factor(&n(7), &n(2));
        assert_eq!((rest, e), (n(7), 0));
        let (rest, e) = remove_factor(&n(0), &n(3));
        assert_eq!((rest, e), (n(0), 0));
    }
}
