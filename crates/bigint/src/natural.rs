//! Unsigned arbitrary-precision integers.
//!
//! [`Natural`] stores little-endian `u64` limbs with no trailing zero limb
//! (so the representation of every value is unique, and `Natural::zero()`
//! has an empty limb vector). All arithmetic is exact.

use std::cmp::Ordering;
use std::fmt;
use std::ops::{Add, AddAssign, BitAnd, Mul, MulAssign, Shl, Shr, Sub, SubAssign};

use crate::{Limb, LIMB_BITS};

/// Threshold (in limbs) above which multiplication switches from the
/// schoolbook algorithm to Karatsuba. Chosen empirically; the ablation
/// bench `ablation.rs` in `ccmx-bench` sweeps this crossover.
pub const KARATSUBA_THRESHOLD: usize = 32;

/// An arbitrary-precision unsigned integer.
///
/// Invariant: `limbs` never ends with a zero limb. Zero is the empty vector.
#[derive(Clone, PartialEq, Eq, Hash, Default)]
pub struct Natural {
    limbs: Vec<Limb>,
}

impl Natural {
    /// The value 0.
    #[inline]
    pub fn zero() -> Self {
        Natural { limbs: Vec::new() }
    }

    /// The value 1.
    #[inline]
    pub fn one() -> Self {
        Natural { limbs: vec![1] }
    }

    /// Construct from a little-endian limb vector (trailing zeros allowed;
    /// they are stripped).
    pub fn from_limbs(mut limbs: Vec<Limb>) -> Self {
        while limbs.last() == Some(&0) {
            limbs.pop();
        }
        Natural { limbs }
    }

    /// Borrow the little-endian limbs (no trailing zero limb).
    #[inline]
    pub fn limbs(&self) -> &[Limb] {
        &self.limbs
    }

    /// Is this zero?
    #[inline]
    pub fn is_zero(&self) -> bool {
        self.limbs.is_empty()
    }

    /// Is this one?
    #[inline]
    pub fn is_one(&self) -> bool {
        self.limbs.len() == 1 && self.limbs[0] == 1
    }

    /// Is this an even number? Zero is even.
    #[inline]
    pub fn is_even(&self) -> bool {
        self.limbs.first().is_none_or(|l| l & 1 == 0)
    }

    /// Number of significant bits (`0` for the value zero).
    pub fn bit_len(&self) -> u64 {
        match self.limbs.last() {
            None => 0,
            Some(&top) => {
                (self.limbs.len() as u64 - 1) * LIMB_BITS as u64
                    + (LIMB_BITS - top.leading_zeros()) as u64
            }
        }
    }

    /// Value of bit `i` (little-endian bit order; out-of-range bits are 0).
    pub fn bit(&self, i: u64) -> bool {
        let limb = (i / LIMB_BITS as u64) as usize;
        if limb >= self.limbs.len() {
            return false;
        }
        (self.limbs[limb] >> (i % LIMB_BITS as u64)) & 1 == 1
    }

    /// Set bit `i` to `value`, growing the representation as needed.
    pub fn set_bit(&mut self, i: u64, value: bool) {
        let limb = (i / LIMB_BITS as u64) as usize;
        let mask = 1u64 << (i % LIMB_BITS as u64);
        if value {
            if limb >= self.limbs.len() {
                self.limbs.resize(limb + 1, 0);
            }
            self.limbs[limb] |= mask;
        } else if limb < self.limbs.len() {
            self.limbs[limb] &= !mask;
            self.normalize();
        }
    }

    /// `2^exp`.
    pub fn power_of_two(exp: u64) -> Self {
        let mut n = Natural::zero();
        n.set_bit(exp, true);
        n
    }

    /// Number of trailing zero bits; `None` for the value zero.
    pub fn trailing_zeros(&self) -> Option<u64> {
        for (i, &l) in self.limbs.iter().enumerate() {
            if l != 0 {
                return Some(i as u64 * LIMB_BITS as u64 + l.trailing_zeros() as u64);
            }
        }
        None
    }

    /// Try to convert to `u64`; `None` if the value does not fit.
    pub fn to_u64(&self) -> Option<u64> {
        match self.limbs.len() {
            0 => Some(0),
            1 => Some(self.limbs[0]),
            _ => None,
        }
    }

    /// Try to convert to `u128`; `None` if the value does not fit.
    pub fn to_u128(&self) -> Option<u128> {
        match self.limbs.len() {
            0 => Some(0),
            1 => Some(self.limbs[0] as u128),
            2 => Some(self.limbs[0] as u128 | (self.limbs[1] as u128) << 64),
            _ => None,
        }
    }

    /// Approximate conversion to `f64` (saturating to `f64::INFINITY` for
    /// huge values). Used only for reporting, never for exact computation.
    pub fn to_f64(&self) -> f64 {
        let bits = self.bit_len();
        if bits <= 64 {
            return self.to_u64().unwrap_or(0) as f64;
        }
        // Take the top 64 bits and scale.
        let shift = bits - 64;
        let top = (self >> shift).to_u64().unwrap_or(u64::MAX);
        (top as f64) * (2f64).powi(shift.min(16_000) as i32)
    }

    fn normalize(&mut self) {
        while self.limbs.last() == Some(&0) {
            self.limbs.pop();
        }
    }

    // ------------------------------------------------------------------
    // Core limb kernels. These are the hot loops of the crate: no
    // allocation, u128 intermediates for carries.
    // ------------------------------------------------------------------

    /// `self += other`, in place.
    fn add_assign_impl(&mut self, other: &Natural) {
        if other.limbs.len() > self.limbs.len() {
            self.limbs.resize(other.limbs.len(), 0);
        }
        let mut carry = 0u64;
        for (i, limb) in self.limbs.iter_mut().enumerate() {
            let b = other.limbs.get(i).copied().unwrap_or(0);
            let (s1, c1) = limb.overflowing_add(b);
            let (s2, c2) = s1.overflowing_add(carry);
            *limb = s2;
            carry = (c1 as u64) + (c2 as u64);
            if b == 0 && carry == 0 && i >= other.limbs.len() {
                break;
            }
        }
        if carry != 0 {
            self.limbs.push(carry);
        }
    }

    /// `self -= other`, in place. Panics if `other > self`.
    fn sub_assign_impl(&mut self, other: &Natural) {
        assert!(
            *self >= *other,
            "Natural subtraction underflow: minuend < subtrahend"
        );
        let mut borrow = 0u64;
        for (i, limb) in self.limbs.iter_mut().enumerate() {
            let b = other.limbs.get(i).copied().unwrap_or(0);
            let (d1, b1) = limb.overflowing_sub(b);
            let (d2, b2) = d1.overflowing_sub(borrow);
            *limb = d2;
            borrow = (b1 as u64) + (b2 as u64);
            if i >= other.limbs.len() && borrow == 0 {
                break;
            }
        }
        debug_assert_eq!(borrow, 0);
        self.normalize();
    }

    /// Schoolbook product of limb slices into `out` (which must be zeroed
    /// and have length `a.len() + b.len()`).
    fn mul_schoolbook(out: &mut [Limb], a: &[Limb], b: &[Limb]) {
        for (i, &ai) in a.iter().enumerate() {
            if ai == 0 {
                continue;
            }
            let mut carry = 0u128;
            let ai = ai as u128;
            for (j, &bj) in b.iter().enumerate() {
                let t = ai * bj as u128 + out[i + j] as u128 + carry;
                out[i + j] = t as u64;
                carry = t >> 64;
            }
            let mut idx = i + b.len();
            while carry != 0 {
                let t = out[idx] as u128 + carry;
                out[idx] = t as u64;
                carry = t >> 64;
                idx += 1;
            }
        }
    }

    /// Karatsuba recursion. `a.len() >= b.len()`; writes into a fresh Vec.
    fn mul_limbs(a: &[Limb], b: &[Limb]) -> Vec<Limb> {
        if a.len() < b.len() {
            return Self::mul_limbs(b, a);
        }
        if b.is_empty() {
            return Vec::new();
        }
        let mut out = vec![0u64; a.len() + b.len()];
        if b.len() < KARATSUBA_THRESHOLD {
            Self::mul_schoolbook(&mut out, a, b);
            return out;
        }
        // Split at half of the longer operand.
        let half = a.len().div_ceil(2);
        let (a0, a1) = a.split_at(half.min(a.len()));
        let (b0, b1) = if b.len() > half {
            b.split_at(half)
        } else {
            (b, &[][..])
        };
        let a0n = Natural::from_limbs(a0.to_vec());
        let a1n = Natural::from_limbs(a1.to_vec());
        let b0n = Natural::from_limbs(b0.to_vec());
        let b1n = Natural::from_limbs(b1.to_vec());
        let z0 = Natural::from_limbs(Self::mul_limbs(a0n.limbs(), b0n.limbs()));
        let z2 = Natural::from_limbs(Self::mul_limbs(a1n.limbs(), b1n.limbs()));
        let sa = &a0n + &a1n;
        let sb = &b0n + &b1n;
        let mut z1 = Natural::from_limbs(Self::mul_limbs(sa.limbs(), sb.limbs()));
        z1 -= &z0;
        z1 -= &z2;
        // result = z0 + z1 << (64*half) + z2 << (128*half)
        let mut result = z0;
        result.add_shifted(&z1, half);
        result.add_shifted(&z2, 2 * half);
        result.limbs.resize(out.len().max(result.limbs.len()), 0);
        result.normalize();
        result.limbs
    }

    /// `self += other << (64 * limb_shift)`.
    fn add_shifted(&mut self, other: &Natural, limb_shift: usize) {
        if other.is_zero() {
            return;
        }
        let needed = other.limbs.len() + limb_shift;
        if self.limbs.len() < needed {
            self.limbs.resize(needed, 0);
        }
        let mut carry = 0u64;
        for (i, &b) in other.limbs.iter().enumerate() {
            let limb = &mut self.limbs[i + limb_shift];
            let (s1, c1) = limb.overflowing_add(b);
            let (s2, c2) = s1.overflowing_add(carry);
            *limb = s2;
            carry = (c1 as u64) + (c2 as u64);
        }
        let mut idx = needed;
        while carry != 0 {
            if idx == self.limbs.len() {
                self.limbs.push(0);
            }
            let (s, c) = self.limbs[idx].overflowing_add(carry);
            self.limbs[idx] = s;
            carry = c as u64;
            idx += 1;
        }
    }

    // ------------------------------------------------------------------
    // Division: Knuth Algorithm D over base-2^32 digits.
    // ------------------------------------------------------------------

    fn to_digits32(&self) -> Vec<u32> {
        let mut d = Vec::with_capacity(self.limbs.len() * 2);
        for &l in &self.limbs {
            d.push(l as u32);
            d.push((l >> 32) as u32);
        }
        while d.last() == Some(&0) {
            d.pop();
        }
        d
    }

    fn from_digits32(mut d: Vec<u32>) -> Self {
        if d.len() % 2 == 1 {
            d.push(0);
        }
        let limbs = d
            .chunks_exact(2)
            .map(|c| c[0] as u64 | (c[1] as u64) << 32)
            .collect();
        Natural::from_limbs(limbs)
    }

    /// Quotient and remainder. Panics on division by zero.
    ///
    /// ```
    /// use ccmx_bigint::Natural;
    /// let a = Natural::power_of_two(100) + Natural::from(7u64);
    /// let b = Natural::from(1_000_003u64);
    /// let (q, r) = a.div_rem(&b);
    /// assert_eq!(&(&q * &b) + &r, a);
    /// assert!(r < b);
    /// ```
    pub fn div_rem(&self, divisor: &Natural) -> (Natural, Natural) {
        assert!(!divisor.is_zero(), "Natural division by zero");
        if self < divisor {
            return (Natural::zero(), self.clone());
        }
        if let (Some(a), Some(b)) = (self.to_u128(), divisor.to_u128()) {
            return (Natural::from(a / b), Natural::from(a % b));
        }
        let u = self.to_digits32();
        let v = divisor.to_digits32();
        if v.len() == 1 {
            let (q, r) = Self::div_rem_digit(&u, v[0]);
            return (Natural::from_digits32(q), Natural::from(r as u64));
        }
        let (q, r) = Self::div_rem_knuth(&u, &v);
        (Natural::from_digits32(q), Natural::from_digits32(r))
    }

    /// Divide base-2^32 digit vector by a single digit.
    fn div_rem_digit(u: &[u32], v: u32) -> (Vec<u32>, u32) {
        let v = v as u64;
        let mut q = vec![0u32; u.len()];
        let mut rem = 0u64;
        for i in (0..u.len()).rev() {
            let cur = (rem << 32) | u[i] as u64;
            q[i] = (cur / v) as u32;
            rem = cur % v;
        }
        while q.last() == Some(&0) {
            q.pop();
        }
        (q, rem as u32)
    }

    /// Knuth TAOCP Vol. 2, Algorithm 4.3.1 D, base b = 2^32.
    fn div_rem_knuth(u: &[u32], v: &[u32]) -> (Vec<u32>, Vec<u32>) {
        const B: u64 = 1 << 32;
        let n = v.len();
        let m = u.len() - n;
        // D1: normalize so that the top digit of v is >= b/2.
        let shift = v[n - 1].leading_zeros();
        let mut vn = vec![0u32; n];
        for i in (1..n).rev() {
            vn[i] = (v[i] << shift)
                | if shift == 0 {
                    0
                } else {
                    v[i - 1] >> (32 - shift)
                };
        }
        vn[0] = v[0] << shift;
        let mut un = vec![0u32; u.len() + 1];
        un[u.len()] = if shift == 0 {
            0
        } else {
            u[u.len() - 1] >> (32 - shift)
        };
        for i in (1..u.len()).rev() {
            un[i] = (u[i] << shift)
                | if shift == 0 {
                    0
                } else {
                    u[i - 1] >> (32 - shift)
                };
        }
        un[0] = u[0] << shift;

        let mut q = vec![0u32; m + 1];
        // D2..D7: main loop.
        for j in (0..=m).rev() {
            // D3: estimate q̂.
            let num = (un[j + n] as u64) * B + un[j + n - 1] as u64;
            let mut qhat = num / vn[n - 1] as u64;
            let mut rhat = num % vn[n - 1] as u64;
            while qhat >= B || qhat * vn[n - 2] as u64 > rhat * B + un[j + n - 2] as u64 {
                qhat -= 1;
                rhat += vn[n - 1] as u64;
                if rhat >= B {
                    break;
                }
            }
            // D4: multiply and subtract.
            let mut borrow = 0i64;
            let mut carry = 0u64;
            for i in 0..n {
                let p = qhat * vn[i] as u64 + carry;
                carry = p >> 32;
                let t = un[i + j] as i64 - borrow - (p as u32) as i64;
                un[i + j] = t as u32;
                borrow = if t < 0 { 1 } else { 0 };
            }
            let t = un[j + n] as i64 - borrow - carry as i64;
            un[j + n] = t as u32;
            // D5/D6: if we subtracted too much, add back.
            if t < 0 {
                qhat -= 1;
                let mut carry = 0u64;
                for i in 0..n {
                    let s = un[i + j] as u64 + vn[i] as u64 + carry;
                    un[i + j] = s as u32;
                    carry = s >> 32;
                }
                un[j + n] = (un[j + n] as u64).wrapping_add(carry) as u32;
            }
            q[j] = qhat as u32;
        }
        // D8: denormalize the remainder.
        let mut r = vec![0u32; n];
        for i in 0..n - 1 {
            r[i] = if shift == 0 {
                un[i]
            } else {
                (un[i] >> shift) | (un[i + 1] << (32 - shift))
            };
        }
        r[n - 1] = un[n - 1] >> shift;
        while q.last() == Some(&0) {
            q.pop();
        }
        while r.last() == Some(&0) {
            r.pop();
        }
        (q, r)
    }

    /// Exponentiation by squaring.
    pub fn pow(&self, mut exp: u64) -> Natural {
        let mut base = self.clone();
        let mut acc = Natural::one();
        while exp > 0 {
            if exp & 1 == 1 {
                acc = &acc * &base;
            }
            exp >>= 1;
            if exp > 0 {
                base = &base * &base;
            }
        }
        acc
    }

    /// Integer square root (floor).
    pub fn isqrt(&self) -> Natural {
        if self.is_zero() {
            return Natural::zero();
        }
        // Newton iteration with a power-of-two seed.
        let mut x = Natural::power_of_two(self.bit_len().div_ceil(2));
        loop {
            // y = (x + self / x) / 2
            let y = (&x + &(self / &x)) >> 1u64;
            if y >= x {
                return x;
            }
            x = y;
        }
    }

    /// Parse a decimal string.
    pub fn from_decimal_str(s: &str) -> Option<Natural> {
        if s.is_empty() {
            return None;
        }
        let mut n = Natural::zero();
        let ten = Natural::from(10u64);
        for ch in s.chars() {
            let d = ch.to_digit(10)?;
            n = &n * &ten + Natural::from(d as u64);
        }
        Some(n)
    }

    /// Lowercase hexadecimal representation (no prefix).
    pub fn to_hex(&self) -> String {
        match self.limbs.last() {
            None => "0".to_string(),
            Some(&top) => {
                let mut s = format!("{top:x}");
                for &l in self.limbs.iter().rev().skip(1) {
                    s.push_str(&format!("{l:016x}"));
                }
                s
            }
        }
    }

    /// Parse a hexadecimal string (no prefix, case-insensitive).
    pub fn from_hex_str(s: &str) -> Option<Natural> {
        if s.is_empty() {
            return None;
        }
        let mut n = Natural::zero();
        for ch in s.chars() {
            let d = ch.to_digit(16)?;
            n = (&n << 4) + Natural::from(d as u64);
        }
        Some(n)
    }

    /// Digits of `self` in an arbitrary base `>= 2`, least significant
    /// first (empty for zero). The base-q digit machinery of the paper's
    /// Fig. 3 blocks uses base `q = 2^k − 1`.
    pub fn to_digits(&self, base: u64) -> Vec<u64> {
        assert!(base >= 2, "base must be >= 2");
        let b = Natural::from(base);
        let mut digits = Vec::new();
        let mut n = self.clone();
        while !n.is_zero() {
            let (q, r) = n.div_rem(&b);
            digits.push(r.to_u64().expect("digit fits"));
            n = q;
        }
        digits
    }

    /// Rebuild from base-`base` digits (least significant first).
    pub fn from_digits(digits: &[u64], base: u64) -> Natural {
        assert!(base >= 2);
        let b = Natural::from(base);
        let mut n = Natural::zero();
        for &d in digits.iter().rev() {
            assert!(d < base, "digit {d} out of range for base {base}");
            n = &n * &b + Natural::from(d);
        }
        n
    }
}

// ----------------------------------------------------------------------
// Conversions
// ----------------------------------------------------------------------

impl From<u64> for Natural {
    fn from(v: u64) -> Self {
        if v == 0 {
            Natural::zero()
        } else {
            Natural { limbs: vec![v] }
        }
    }
}

impl From<u32> for Natural {
    fn from(v: u32) -> Self {
        Natural::from(v as u64)
    }
}

impl From<u128> for Natural {
    fn from(v: u128) -> Self {
        Natural::from_limbs(vec![v as u64, (v >> 64) as u64])
    }
}

impl From<usize> for Natural {
    fn from(v: usize) -> Self {
        Natural::from(v as u64)
    }
}

// ----------------------------------------------------------------------
// Comparison
// ----------------------------------------------------------------------

impl Ord for Natural {
    fn cmp(&self, other: &Self) -> Ordering {
        match self.limbs.len().cmp(&other.limbs.len()) {
            Ordering::Equal => {
                for (a, b) in self.limbs.iter().rev().zip(other.limbs.iter().rev()) {
                    match a.cmp(b) {
                        Ordering::Equal => continue,
                        ord => return ord,
                    }
                }
                Ordering::Equal
            }
            ord => ord,
        }
    }
}

impl PartialOrd for Natural {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

// ----------------------------------------------------------------------
// Arithmetic operator impls (owned and borrowed forms)
// ----------------------------------------------------------------------

impl<'b> AddAssign<&'b Natural> for Natural {
    fn add_assign(&mut self, rhs: &'b Natural) {
        self.add_assign_impl(rhs);
    }
}
impl AddAssign<Natural> for Natural {
    fn add_assign(&mut self, rhs: Natural) {
        self.add_assign_impl(&rhs);
    }
}
impl<'b> Add<&'b Natural> for &Natural {
    type Output = Natural;
    fn add(self, rhs: &'b Natural) -> Natural {
        let mut out = self.clone();
        out.add_assign_impl(rhs);
        out
    }
}
impl Add<Natural> for Natural {
    type Output = Natural;
    fn add(mut self, rhs: Natural) -> Natural {
        self.add_assign_impl(&rhs);
        self
    }
}
impl<'b> Add<&'b Natural> for Natural {
    type Output = Natural;
    fn add(mut self, rhs: &'b Natural) -> Natural {
        self.add_assign_impl(rhs);
        self
    }
}

impl<'b> SubAssign<&'b Natural> for Natural {
    fn sub_assign(&mut self, rhs: &'b Natural) {
        self.sub_assign_impl(rhs);
    }
}
impl SubAssign<Natural> for Natural {
    fn sub_assign(&mut self, rhs: Natural) {
        self.sub_assign_impl(&rhs);
    }
}
impl<'b> Sub<&'b Natural> for &Natural {
    type Output = Natural;
    fn sub(self, rhs: &'b Natural) -> Natural {
        let mut out = self.clone();
        out.sub_assign_impl(rhs);
        out
    }
}
impl Sub<Natural> for Natural {
    type Output = Natural;
    fn sub(mut self, rhs: Natural) -> Natural {
        self.sub_assign_impl(&rhs);
        self
    }
}

impl<'b> Mul<&'b Natural> for &Natural {
    type Output = Natural;
    fn mul(self, rhs: &'b Natural) -> Natural {
        Natural::from_limbs(Natural::mul_limbs(&self.limbs, &rhs.limbs))
    }
}
impl Mul<Natural> for Natural {
    type Output = Natural;
    fn mul(self, rhs: Natural) -> Natural {
        &self * &rhs
    }
}
impl<'b> Mul<&'b Natural> for Natural {
    type Output = Natural;
    fn mul(self, rhs: &'b Natural) -> Natural {
        &self * rhs
    }
}
impl MulAssign<&Natural> for Natural {
    fn mul_assign(&mut self, rhs: &Natural) {
        *self = &*self * rhs;
    }
}

impl<'b> std::ops::Div<&'b Natural> for &Natural {
    type Output = Natural;
    fn div(self, rhs: &'b Natural) -> Natural {
        self.div_rem(rhs).0
    }
}
impl<'b> std::ops::Rem<&'b Natural> for &Natural {
    type Output = Natural;
    fn rem(self, rhs: &'b Natural) -> Natural {
        self.div_rem(rhs).1
    }
}

impl Shl<u64> for &Natural {
    type Output = Natural;
    fn shl(self, bits: u64) -> Natural {
        if self.is_zero() {
            return Natural::zero();
        }
        let limb_shift = (bits / LIMB_BITS as u64) as usize;
        let bit_shift = (bits % LIMB_BITS as u64) as u32;
        let mut limbs = vec![0u64; limb_shift];
        if bit_shift == 0 {
            limbs.extend_from_slice(&self.limbs);
        } else {
            let mut carry = 0u64;
            for &l in &self.limbs {
                limbs.push((l << bit_shift) | carry);
                carry = l >> (LIMB_BITS - bit_shift);
            }
            if carry != 0 {
                limbs.push(carry);
            }
        }
        Natural::from_limbs(limbs)
    }
}
impl Shl<u64> for Natural {
    type Output = Natural;
    fn shl(self, bits: u64) -> Natural {
        &self << bits
    }
}

impl Shr<u64> for &Natural {
    type Output = Natural;
    fn shr(self, bits: u64) -> Natural {
        let limb_shift = (bits / LIMB_BITS as u64) as usize;
        if limb_shift >= self.limbs.len() {
            return Natural::zero();
        }
        let bit_shift = (bits % LIMB_BITS as u64) as u32;
        let src = &self.limbs[limb_shift..];
        let mut limbs = Vec::with_capacity(src.len());
        if bit_shift == 0 {
            limbs.extend_from_slice(src);
        } else {
            for i in 0..src.len() {
                let hi = if i + 1 < src.len() {
                    src[i + 1] << (LIMB_BITS - bit_shift)
                } else {
                    0
                };
                limbs.push((src[i] >> bit_shift) | hi);
            }
        }
        Natural::from_limbs(limbs)
    }
}
impl Shr<u64> for Natural {
    type Output = Natural;
    fn shr(self, bits: u64) -> Natural {
        &self >> bits
    }
}

impl BitAnd<&Natural> for &Natural {
    type Output = Natural;
    fn bitand(self, rhs: &Natural) -> Natural {
        let n = self.limbs.len().min(rhs.limbs.len());
        let limbs = (0..n).map(|i| self.limbs[i] & rhs.limbs[i]).collect();
        Natural::from_limbs(limbs)
    }
}

// ----------------------------------------------------------------------
// Formatting
// ----------------------------------------------------------------------

impl fmt::Display for Natural {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_zero() {
            return write!(f, "0");
        }
        // Repeated division by 10^19 (largest power of ten in a u64).
        const CHUNK: u64 = 10_000_000_000_000_000_000;
        let chunk = Natural::from(CHUNK);
        let mut pieces: Vec<u64> = Vec::new();
        let mut n = self.clone();
        while !n.is_zero() {
            let (q, r) = n.div_rem(&chunk);
            pieces.push(r.to_u64().expect("remainder below 10^19 fits in u64"));
            n = q;
        }
        write!(f, "{}", pieces.pop().unwrap())?;
        for p in pieces.iter().rev() {
            write!(f, "{p:019}")?;
        }
        Ok(())
    }
}

impl fmt::Debug for Natural {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Natural({self})")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(v: u128) -> Natural {
        Natural::from(v)
    }

    #[test]
    fn zero_and_one_identities() {
        assert!(Natural::zero().is_zero());
        assert!(Natural::one().is_one());
        assert_eq!(&n(0) + &n(5), n(5));
        assert_eq!(&n(5) * &Natural::one(), n(5));
        assert_eq!(&n(5) * &Natural::zero(), Natural::zero());
    }

    #[test]
    fn normalization_strips_trailing_zeros() {
        let a = Natural::from_limbs(vec![3, 0, 0]);
        assert_eq!(a.limbs(), &[3]);
        assert_eq!(a, n(3));
    }

    #[test]
    fn addition_with_carry_chain() {
        let a = Natural::from_limbs(vec![u64::MAX, u64::MAX]);
        let b = Natural::one();
        let s = &a + &b;
        assert_eq!(s.limbs(), &[0, 0, 1]);
    }

    #[test]
    fn subtraction_with_borrow_chain() {
        let a = Natural::from_limbs(vec![0, 0, 1]);
        let b = Natural::one();
        let d = &a - &b;
        assert_eq!(d.limbs(), &[u64::MAX, u64::MAX]);
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn subtraction_underflow_panics() {
        let _ = &n(1) - &n(2);
    }

    #[test]
    fn multiplication_small() {
        assert_eq!(
            &n(123456789) * &n(987654321),
            n(123456789u128 * 987654321u128)
        );
    }

    #[test]
    fn multiplication_crosses_limb() {
        let a = n(u64::MAX as u128);
        let sq = &a * &a;
        assert_eq!(sq, n((u64::MAX as u128) * (u64::MAX as u128)));
    }

    #[test]
    fn karatsuba_matches_schoolbook() {
        // Build operands well above the Karatsuba threshold.
        let mut limbs_a = Vec::new();
        let mut limbs_b = Vec::new();
        let mut x = 0x9E3779B97F4A7C15u64;
        for _ in 0..(KARATSUBA_THRESHOLD * 3) {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            limbs_a.push(x);
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            limbs_b.push(x);
        }
        let a = Natural::from_limbs(limbs_a);
        let b = Natural::from_limbs(limbs_b);
        let mut school = vec![0u64; a.limbs().len() + b.limbs().len()];
        Natural::mul_schoolbook(&mut school, a.limbs(), b.limbs());
        let school = Natural::from_limbs(school);
        assert_eq!(&a * &b, school);
    }

    #[test]
    fn division_roundtrip_small() {
        let a = n(1_000_000_007);
        let b = n(97);
        let (q, r) = a.div_rem(&b);
        assert_eq!(&(&q * &b) + &r, a);
        assert!(r < b);
    }

    #[test]
    fn division_multilimb_roundtrip() {
        let a = Natural::from_limbs(vec![0xDEADBEEF, 0xCAFEBABE, 0x12345678, 0x9ABCDEF0]);
        let b = Natural::from_limbs(vec![0xFFFFFFFF00000001, 7]);
        let (q, r) = a.div_rem(&b);
        assert_eq!(&(&q * &b) + &r, a);
        assert!(r < b);
    }

    #[test]
    fn division_triggers_addback() {
        // A case engineered to exercise the rare D6 add-back branch:
        // u = b^4 / 2, v = b^2/2 + 1 in base 2^32 would do it; simply verify
        // round-trips on many structured operands instead.
        for hi in [1u64, 2, 3, u64::MAX / 2, u64::MAX] {
            for lo in [0u64, 1, u64::MAX] {
                let a = Natural::from_limbs(vec![lo, hi, lo, hi]);
                let b = Natural::from_limbs(vec![hi | 1, 1]);
                let (q, r) = a.div_rem(&b);
                assert_eq!(&(&q * &b) + &r, a);
                assert!(r < b);
            }
        }
    }

    #[test]
    fn division_knuth_addback_vectors() {
        // Canonical base-2^32 vectors known to exercise Algorithm D's
        // rare D6 add-back step (from the Hacker's Delight / LLVM
        // divmnu test suites), expressed in hex.
        let cases = [
            // u, v
            ("800000008000000200000005", "8000000080000002"),
            ("80000000fffffffe00000000", "80000000ffffffff"),
            (
                "00007fff800000010000000000000000",
                "00008000000000010000000000000000",
            ),
            ("7fffffff800000010000000000000000", "8000000080000001"),
        ];
        for (us, vs) in cases {
            let u = Natural::from_hex_str(us).unwrap();
            let v = Natural::from_hex_str(vs).unwrap();
            let (q, r) = u.div_rem(&v);
            assert_eq!(&(&q * &v) + &r, u, "roundtrip failed for {us}/{vs}");
            assert!(r < v, "remainder out of range for {us}/{vs}");
        }
    }

    #[test]
    fn division_stress_structured_limbs() {
        // Dividends/divisors built from extreme limb patterns.
        let patterns = [
            0u64,
            1,
            u64::MAX,
            u64::MAX - 1,
            1u64 << 63,
            (1u64 << 63) - 1,
        ];
        for &a0 in &patterns {
            for &a1 in &patterns {
                for &b0 in &patterns {
                    let u = Natural::from_limbs(vec![a0, a1, a0 ^ a1, a1 | 1]);
                    let v = Natural::from_limbs(vec![b0, a0 | 1]);
                    let (q, r) = u.div_rem(&v);
                    assert_eq!(&(&q * &v) + &r, u);
                    assert!(r < v);
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "division by zero")]
    fn division_by_zero_panics() {
        let _ = n(5).div_rem(&Natural::zero());
    }

    #[test]
    fn shifts_roundtrip() {
        let a = n(0x0123_4567_89AB_CDEF_u128);
        for s in [0u64, 1, 7, 63, 64, 65, 130] {
            let shifted = &a << s;
            assert_eq!(&shifted >> s, a);
        }
    }

    #[test]
    fn bit_len_and_bits() {
        assert_eq!(Natural::zero().bit_len(), 0);
        assert_eq!(n(1).bit_len(), 1);
        assert_eq!(n(0xFF).bit_len(), 8);
        assert_eq!(Natural::power_of_two(100).bit_len(), 101);
        assert!(Natural::power_of_two(100).bit(100));
        assert!(!Natural::power_of_two(100).bit(99));
    }

    #[test]
    fn pow_matches_repeated_mul() {
        let b = n(3);
        let mut acc = Natural::one();
        for e in 0..40u64 {
            assert_eq!(b.pow(e), acc);
            acc = &acc * &b;
        }
    }

    #[test]
    fn isqrt_exact_and_floor() {
        for v in 0u128..200 {
            let s = n(v).isqrt().to_u128().unwrap();
            assert!(s * s <= v);
            assert!((s + 1) * (s + 1) > v);
        }
        let big = Natural::power_of_two(200);
        let s = big.isqrt();
        assert_eq!(s, Natural::power_of_two(100));
    }

    #[test]
    fn display_matches_u128() {
        for v in [0u128, 1, 9, 10, 12345, u64::MAX as u128, u128::MAX] {
            assert_eq!(Natural::from(v).to_string(), v.to_string());
        }
    }

    #[test]
    fn display_large_roundtrip() {
        let a = Natural::power_of_two(300) + n(12345);
        let parsed = Natural::from_decimal_str(&a.to_string()).unwrap();
        assert_eq!(parsed, a);
    }

    #[test]
    fn ordering_is_total() {
        let vals = [
            n(0),
            n(1),
            n(2),
            n(u64::MAX as u128),
            n(u64::MAX as u128 + 1),
            n(u128::MAX),
        ];
        for w in vals.windows(2) {
            assert!(w[0] < w[1]);
        }
    }

    #[test]
    fn trailing_zeros() {
        assert_eq!(Natural::zero().trailing_zeros(), None);
        assert_eq!(n(1).trailing_zeros(), Some(0));
        assert_eq!(Natural::power_of_two(77).trailing_zeros(), Some(77));
    }

    #[test]
    fn hex_roundtrip_matches_u128() {
        for v in [
            0u128,
            1,
            15,
            16,
            255,
            0xDEADBEEF,
            u64::MAX as u128,
            u128::MAX,
        ] {
            let n = Natural::from(v);
            assert_eq!(n.to_hex(), format!("{v:x}"));
            assert_eq!(Natural::from_hex_str(&n.to_hex()).unwrap(), n);
        }
        assert_eq!(Natural::from_hex_str("FF"), Some(Natural::from(255u64)));
        assert_eq!(Natural::from_hex_str(""), None);
        assert_eq!(Natural::from_hex_str("xyz"), None);
        // Multi-limb with interior zero limbs: padding must be preserved.
        let big = Natural::power_of_two(200) + Natural::from(5u64);
        assert_eq!(Natural::from_hex_str(&big.to_hex()).unwrap(), big);
    }

    #[test]
    fn digit_roundtrip_arbitrary_bases() {
        for base in [2u64, 3, 7, 10, 255] {
            for v in [0u64, 1, base - 1, base, base * base + 3, 1_000_003] {
                let n = Natural::from(v);
                let d = n.to_digits(base);
                assert_eq!(Natural::from_digits(&d, base), n, "base {base}, v {v}");
                assert!(d.iter().all(|&x| x < base));
            }
        }
        assert!(Natural::zero().to_digits(7).is_empty());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn from_digits_rejects_bad_digit() {
        let _ = Natural::from_digits(&[3], 3);
    }

    #[test]
    fn to_f64_orders_of_magnitude() {
        let v = Natural::power_of_two(100);
        let f = v.to_f64();
        assert!((f.log2() - 100.0).abs() < 0.01);
    }
}
