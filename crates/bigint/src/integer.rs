//! Signed arbitrary-precision integers.
//!
//! [`Integer`] is a sign-magnitude wrapper around [`Natural`] with the
//! invariant that zero always has [`Sign::Zero`] (so representations are
//! unique and `Eq`/`Hash` derive correctly).

use std::cmp::Ordering;
use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, MulAssign, Neg, Rem, Sub, SubAssign};

use crate::natural::Natural;

/// The sign of an [`Integer`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Sign {
    /// Strictly negative.
    Negative,
    /// Exactly zero.
    Zero,
    /// Strictly positive.
    Positive,
}

impl Sign {
    /// Flip the sign (zero stays zero).
    #[inline]
    pub fn negate(self) -> Sign {
        match self {
            Sign::Negative => Sign::Positive,
            Sign::Zero => Sign::Zero,
            Sign::Positive => Sign::Negative,
        }
    }

    /// Product-of-signs rule.
    #[inline]
    #[allow(clippy::should_implement_trait)]
    pub fn mul(self, other: Sign) -> Sign {
        match (self, other) {
            (Sign::Zero, _) | (_, Sign::Zero) => Sign::Zero,
            (a, b) if a == b => Sign::Positive,
            _ => Sign::Negative,
        }
    }
}

/// An arbitrary-precision signed integer.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct Integer {
    sign: Sign,
    magnitude: Natural,
}

impl Integer {
    /// The value 0.
    #[inline]
    pub fn zero() -> Self {
        Integer {
            sign: Sign::Zero,
            magnitude: Natural::zero(),
        }
    }

    /// The value 1.
    #[inline]
    pub fn one() -> Self {
        Integer {
            sign: Sign::Positive,
            magnitude: Natural::one(),
        }
    }

    /// The value -1.
    #[inline]
    pub fn neg_one() -> Self {
        Integer {
            sign: Sign::Negative,
            magnitude: Natural::one(),
        }
    }

    /// Build from sign and magnitude (sign is corrected if magnitude is 0).
    pub fn from_sign_magnitude(sign: Sign, magnitude: Natural) -> Self {
        if magnitude.is_zero() {
            Integer::zero()
        } else {
            assert!(sign != Sign::Zero, "nonzero magnitude with Sign::Zero");
            Integer { sign, magnitude }
        }
    }

    /// The sign.
    #[inline]
    pub fn sign(&self) -> Sign {
        self.sign
    }

    /// The magnitude `|self|` as a [`Natural`].
    #[inline]
    pub fn magnitude(&self) -> &Natural {
        &self.magnitude
    }

    /// Absolute value.
    pub fn abs(&self) -> Integer {
        Integer {
            sign: if self.is_zero() {
                Sign::Zero
            } else {
                Sign::Positive
            },
            magnitude: self.magnitude.clone(),
        }
    }

    /// Is this zero?
    #[inline]
    pub fn is_zero(&self) -> bool {
        self.sign == Sign::Zero
    }

    /// Is this one?
    #[inline]
    pub fn is_one(&self) -> bool {
        self.sign == Sign::Positive && self.magnitude.is_one()
    }

    /// Is this strictly negative?
    #[inline]
    pub fn is_negative(&self) -> bool {
        self.sign == Sign::Negative
    }

    /// Is this strictly positive?
    #[inline]
    pub fn is_positive(&self) -> bool {
        self.sign == Sign::Positive
    }

    /// Is this an even number?
    #[inline]
    pub fn is_even(&self) -> bool {
        self.magnitude.is_even()
    }

    /// Bits in the magnitude (0 for zero).
    #[inline]
    pub fn bit_len(&self) -> u64 {
        self.magnitude.bit_len()
    }

    /// Convert to [`Natural`] if non-negative.
    pub fn to_natural(&self) -> Option<Natural> {
        if self.is_negative() {
            None
        } else {
            Some(self.magnitude.clone())
        }
    }

    /// Convert to `i64` if it fits.
    pub fn to_i64(&self) -> Option<i64> {
        let m = self.magnitude.to_u128()?;
        match self.sign {
            Sign::Zero => Some(0),
            Sign::Positive => (m <= i64::MAX as u128).then_some(m as i64),
            Sign::Negative => (m <= i64::MAX as u128 + 1).then(|| (m as u64).wrapping_neg() as i64),
        }
    }

    /// Convert to `i128` if it fits.
    pub fn to_i128(&self) -> Option<i128> {
        let m = self.magnitude.to_u128()?;
        match self.sign {
            Sign::Zero => Some(0),
            Sign::Positive => (m <= i128::MAX as u128).then_some(m as i128),
            Sign::Negative => (m <= i128::MAX as u128 + 1).then(|| m.wrapping_neg() as i128),
        }
    }

    /// Approximate `f64` value (for reporting only).
    pub fn to_f64(&self) -> f64 {
        let m = self.magnitude.to_f64();
        if self.is_negative() {
            -m
        } else {
            m
        }
    }

    /// Truncated division: quotient rounds toward zero; remainder has the
    /// sign of the dividend (matching Rust's `/` and `%` on primitives).
    pub fn div_rem(&self, other: &Integer) -> (Integer, Integer) {
        let (q, r) = self.magnitude.div_rem(&other.magnitude);
        let qs = self.sign.mul(other.sign);
        (
            Integer::from_sign_magnitude(if q.is_zero() { Sign::Zero } else { qs }, q),
            Integer::from_sign_magnitude(if r.is_zero() { Sign::Zero } else { self.sign }, r),
        )
    }

    /// Euclidean remainder in `[0, |other|)`.
    pub fn rem_euclid(&self, other: &Integer) -> Integer {
        let r = self.div_rem(other).1;
        if r.is_negative() {
            r + other.abs()
        } else {
            r
        }
    }

    /// Does `other` divide `self` exactly?
    pub fn divisible_by(&self, other: &Integer) -> bool {
        !other.is_zero() && self.div_rem(other).1.is_zero()
    }

    /// Exponentiation by squaring.
    pub fn pow(&self, exp: u64) -> Integer {
        let mag = self.magnitude.pow(exp);
        let sign = match self.sign {
            Sign::Zero => {
                if exp == 0 {
                    Sign::Positive
                } else {
                    Sign::Zero
                }
            }
            Sign::Positive => Sign::Positive,
            Sign::Negative => {
                if exp.is_multiple_of(2) {
                    Sign::Positive
                } else {
                    Sign::Negative
                }
            }
        };
        Integer::from_sign_magnitude(sign, mag)
    }

    /// `self * 2^bits`.
    pub fn shl(&self, bits: u64) -> Integer {
        Integer::from_sign_magnitude(self.sign, &self.magnitude << bits)
    }

    /// Parse a decimal string with optional leading `-`.
    pub fn from_decimal_str(s: &str) -> Option<Integer> {
        if let Some(rest) = s.strip_prefix('-') {
            let m = Natural::from_decimal_str(rest)?;
            Some(Integer::from_sign_magnitude(
                if m.is_zero() {
                    Sign::Zero
                } else {
                    Sign::Negative
                },
                m,
            ))
        } else {
            let m = Natural::from_decimal_str(s)?;
            Some(Integer::from_sign_magnitude(
                if m.is_zero() {
                    Sign::Zero
                } else {
                    Sign::Positive
                },
                m,
            ))
        }
    }
}

// ----------------------------------------------------------------------
// Conversions
// ----------------------------------------------------------------------

impl From<Natural> for Integer {
    fn from(n: Natural) -> Self {
        let sign = if n.is_zero() {
            Sign::Zero
        } else {
            Sign::Positive
        };
        Integer::from_sign_magnitude(sign, n)
    }
}

impl From<i64> for Integer {
    fn from(v: i64) -> Self {
        match v.cmp(&0) {
            Ordering::Equal => Integer::zero(),
            Ordering::Greater => {
                Integer::from_sign_magnitude(Sign::Positive, Natural::from(v as u64))
            }
            Ordering::Less => {
                Integer::from_sign_magnitude(Sign::Negative, Natural::from(v.unsigned_abs()))
            }
        }
    }
}

impl From<i32> for Integer {
    fn from(v: i32) -> Self {
        Integer::from(v as i64)
    }
}

impl From<u64> for Integer {
    fn from(v: u64) -> Self {
        Integer::from(Natural::from(v))
    }
}

impl From<i128> for Integer {
    fn from(v: i128) -> Self {
        match v.cmp(&0) {
            Ordering::Equal => Integer::zero(),
            Ordering::Greater => {
                Integer::from_sign_magnitude(Sign::Positive, Natural::from(v as u128))
            }
            Ordering::Less => {
                Integer::from_sign_magnitude(Sign::Negative, Natural::from(v.unsigned_abs()))
            }
        }
    }
}

// ----------------------------------------------------------------------
// Comparison
// ----------------------------------------------------------------------

impl Ord for Integer {
    fn cmp(&self, other: &Self) -> Ordering {
        use Sign::*;
        match (self.sign, other.sign) {
            (Negative, Negative) => other.magnitude.cmp(&self.magnitude),
            (Negative, _) => Ordering::Less,
            (Zero, Negative) => Ordering::Greater,
            (Zero, Zero) => Ordering::Equal,
            (Zero, Positive) => Ordering::Less,
            (Positive, Positive) => self.magnitude.cmp(&other.magnitude),
            (Positive, _) => Ordering::Greater,
        }
    }
}

impl PartialOrd for Integer {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

// ----------------------------------------------------------------------
// Arithmetic
// ----------------------------------------------------------------------

fn add_signed(a: &Integer, b: &Integer) -> Integer {
    use Sign::*;
    match (a.sign, b.sign) {
        (Zero, _) => b.clone(),
        (_, Zero) => a.clone(),
        (x, y) if x == y => Integer::from_sign_magnitude(x, &a.magnitude + &b.magnitude),
        _ => match a.magnitude.cmp(&b.magnitude) {
            Ordering::Equal => Integer::zero(),
            Ordering::Greater => Integer::from_sign_magnitude(a.sign, &a.magnitude - &b.magnitude),
            Ordering::Less => Integer::from_sign_magnitude(b.sign, &b.magnitude - &a.magnitude),
        },
    }
}

impl<'b> Add<&'b Integer> for &Integer {
    type Output = Integer;
    fn add(self, rhs: &'b Integer) -> Integer {
        add_signed(self, rhs)
    }
}
impl Add for Integer {
    type Output = Integer;
    fn add(self, rhs: Integer) -> Integer {
        add_signed(&self, &rhs)
    }
}
impl<'b> Add<&'b Integer> for Integer {
    type Output = Integer;
    fn add(self, rhs: &'b Integer) -> Integer {
        add_signed(&self, rhs)
    }
}
impl AddAssign<&Integer> for Integer {
    fn add_assign(&mut self, rhs: &Integer) {
        *self = add_signed(self, rhs);
    }
}
impl AddAssign for Integer {
    fn add_assign(&mut self, rhs: Integer) {
        *self = add_signed(self, &rhs);
    }
}

impl Neg for Integer {
    type Output = Integer;
    fn neg(self) -> Integer {
        Integer {
            sign: self.sign.negate(),
            magnitude: self.magnitude,
        }
    }
}
impl Neg for &Integer {
    type Output = Integer;
    fn neg(self) -> Integer {
        Integer {
            sign: self.sign.negate(),
            magnitude: self.magnitude.clone(),
        }
    }
}

impl<'b> Sub<&'b Integer> for &Integer {
    type Output = Integer;
    fn sub(self, rhs: &'b Integer) -> Integer {
        add_signed(self, &-rhs)
    }
}
impl Sub for Integer {
    type Output = Integer;
    fn sub(self, rhs: Integer) -> Integer {
        add_signed(&self, &-rhs)
    }
}
impl<'b> Sub<&'b Integer> for Integer {
    type Output = Integer;
    fn sub(self, rhs: &'b Integer) -> Integer {
        add_signed(&self, &-rhs)
    }
}
impl SubAssign<&Integer> for Integer {
    fn sub_assign(&mut self, rhs: &Integer) {
        *self = add_signed(self, &-rhs);
    }
}
impl SubAssign for Integer {
    fn sub_assign(&mut self, rhs: Integer) {
        *self = add_signed(self, &-rhs);
    }
}

impl<'b> Mul<&'b Integer> for &Integer {
    type Output = Integer;
    fn mul(self, rhs: &'b Integer) -> Integer {
        Integer::from_sign_magnitude(self.sign.mul(rhs.sign), &self.magnitude * &rhs.magnitude)
    }
}
impl Mul for Integer {
    type Output = Integer;
    fn mul(self, rhs: Integer) -> Integer {
        &self * &rhs
    }
}
impl<'b> Mul<&'b Integer> for Integer {
    type Output = Integer;
    fn mul(self, rhs: &'b Integer) -> Integer {
        &self * rhs
    }
}
impl MulAssign<&Integer> for Integer {
    fn mul_assign(&mut self, rhs: &Integer) {
        *self = &*self * rhs;
    }
}

impl<'b> Div<&'b Integer> for &Integer {
    type Output = Integer;
    fn div(self, rhs: &'b Integer) -> Integer {
        self.div_rem(rhs).0
    }
}
impl Div for Integer {
    type Output = Integer;
    fn div(self, rhs: Integer) -> Integer {
        self.div_rem(&rhs).0
    }
}
impl<'b> Rem<&'b Integer> for &Integer {
    type Output = Integer;
    fn rem(self, rhs: &'b Integer) -> Integer {
        self.div_rem(rhs).1
    }
}

// ----------------------------------------------------------------------
// Formatting
// ----------------------------------------------------------------------

impl fmt::Display for Integer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_negative() {
            write!(f, "-")?;
        }
        write!(f, "{}", self.magnitude)
    }
}

impl fmt::Debug for Integer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Integer({self})")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn z(v: i128) -> Integer {
        Integer::from(v)
    }

    #[test]
    fn sign_rules() {
        assert_eq!(Sign::Negative.mul(Sign::Negative), Sign::Positive);
        assert_eq!(Sign::Negative.mul(Sign::Positive), Sign::Negative);
        assert_eq!(Sign::Zero.mul(Sign::Negative), Sign::Zero);
        assert_eq!(Sign::Positive.negate(), Sign::Negative);
        assert_eq!(Sign::Zero.negate(), Sign::Zero);
    }

    #[test]
    fn add_sub_mixed_signs_matches_i128() {
        let cases = [
            -100i128,
            -37,
            -1,
            0,
            1,
            9,
            64,
            100_000,
            -(1i128 << 90),
            1i128 << 90,
        ];
        for &a in &cases {
            for &b in &cases {
                assert_eq!(z(a) + z(b), z(a + b), "{a} + {b}");
                assert_eq!(z(a) - z(b), z(a - b), "{a} - {b}");
                if let Some(p) = a.checked_mul(b) {
                    assert_eq!(z(a) * z(b), z(p), "{a} * {b}");
                }
            }
        }
        // Products beyond i128: verify via magnitude arithmetic.
        let big = z(1i128 << 90);
        let prod = &big * &big;
        assert_eq!(prod.magnitude().bit_len(), 181);
        assert!(prod.is_positive());
        assert_eq!((&big * &-&big).sign(), Sign::Negative);
    }

    #[test]
    fn division_matches_i128_truncation() {
        let cases = [-100i128, -37, -7, -1, 1, 7, 37, 100];
        for &a in &cases {
            for &b in &cases {
                let (q, r) = z(a).div_rem(&z(b));
                assert_eq!(q, z(a / b), "{a} / {b}");
                assert_eq!(r, z(a % b), "{a} % {b}");
            }
        }
    }

    #[test]
    fn rem_euclid_nonnegative() {
        for a in -20i128..20 {
            for b in [-7i128, -3, 3, 7] {
                let r = z(a).rem_euclid(&z(b)).to_i128().unwrap();
                assert_eq!(r, a.rem_euclid(b), "{a} rem_euclid {b}");
            }
        }
    }

    #[test]
    fn pow_signs() {
        assert_eq!(z(-2).pow(3), z(-8));
        assert_eq!(z(-2).pow(4), z(16));
        assert_eq!(z(0).pow(0), z(1));
        assert_eq!(z(0).pow(5), z(0));
        assert_eq!(z(-3).pow(0), z(1));
    }

    #[test]
    fn ordering_across_signs() {
        let sorted = [z(-10), z(-2), z(0), z(1), z(5)];
        for w in sorted.windows(2) {
            assert!(w[0] < w[1]);
        }
    }

    #[test]
    fn to_i64_boundaries() {
        assert_eq!(z(i64::MAX as i128).to_i64(), Some(i64::MAX));
        assert_eq!(z(i64::MIN as i128).to_i64(), Some(i64::MIN));
        assert_eq!(z(i64::MAX as i128 + 1).to_i64(), None);
        assert_eq!(z(i64::MIN as i128 - 1).to_i64(), None);
    }

    #[test]
    fn to_i128_boundaries() {
        assert_eq!(z(i128::MAX).to_i128(), Some(i128::MAX));
        assert_eq!(z(i128::MIN).to_i128(), Some(i128::MIN));
        let too_big = Integer::from(Natural::power_of_two(127));
        assert_eq!(too_big.to_i128(), None);
        assert_eq!((-too_big).to_i128(), Some(i128::MIN));
    }

    #[test]
    fn display_and_parse_roundtrip() {
        for v in [-123456789012345678901234567890i128, -5, 0, 5, i128::MAX] {
            let i = z(v);
            assert_eq!(Integer::from_decimal_str(&i.to_string()).unwrap(), i);
        }
    }

    #[test]
    fn divisible_by() {
        assert!(z(12).divisible_by(&z(-4)));
        assert!(!z(12).divisible_by(&z(5)));
        assert!(!z(12).divisible_by(&z(0)));
        assert!(z(0).divisible_by(&z(7)));
    }

    #[test]
    fn zero_has_zero_sign_always() {
        let a = z(5) - z(5);
        assert_eq!(a.sign(), Sign::Zero);
        let b = z(-5) + z(5);
        assert_eq!(b.sign(), Sign::Zero);
        let c = z(5) * z(0);
        assert_eq!(c.sign(), Sign::Zero);
    }
}
