//! Magnitude bounds used throughout the reproduction.
//!
//! The key quantity is the **Hadamard bound**: for an `n × n` matrix `M`
//! with `|M[i][j]| <= B`, `|det M| <= B^n · n^{n/2}`. The randomized
//! protocol sizes its prime window from this bound, and the exact solvers
//! use it to size CRT moduli.

use crate::{Integer, Natural};

/// Hadamard bound for an `n × n` matrix with entries of magnitude at most
/// `entry_bound`: `entry_bound^n * ceil(sqrt(n))^n >= entry_bound^n * n^{n/2}`.
///
/// We over-approximate `n^{n/2}` by `ceil(sqrt(n))^n`, keeping everything
/// in exact integer arithmetic (an upper bound is all the callers need).
pub fn hadamard_bound(n: usize, entry_bound: &Natural) -> Natural {
    if n == 0 {
        return Natural::one();
    }
    let sqrt_ceil = {
        let s = Natural::from(n as u64).isqrt();
        if (&s * &s) == Natural::from(n as u64) {
            s
        } else {
            s + Natural::one()
        }
    };
    entry_bound.pow(n as u64) * sqrt_ceil.pow(n as u64)
}

/// Hadamard bound for a matrix of `k`-bit entries (entries in
/// `[0, 2^k - 1]`), the paper's input model.
pub fn hadamard_bound_k_bits(n: usize, k: u32) -> Natural {
    let entry_bound = Natural::power_of_two(k as u64) - Natural::one();
    hadamard_bound(n, &entry_bound)
}

/// `q = 2^k - 1`, the paper's distinguished constant (the largest `k`-bit
/// value; Fig. 1 places `q` on the anti-diagonal of the B-side block and
/// Definition 3.1 builds the vector `u` from powers of `-q`).
pub fn q_of_k(k: u32) -> Integer {
    assert!(k >= 1, "k must be at least 1");
    Integer::from(Natural::power_of_two(k as u64) - Natural::one())
}

/// Number of bits needed to encode an integer in `[0, bound]`.
pub fn bits_to_encode(bound: &Natural) -> u64 {
    bound.bit_len().max(1)
}

/// Total input bits of the paper's `2n × 2n` instance of `k`-bit entries:
/// `k · (2n)²`. The communication bounds are stated against this quantity.
pub fn input_bits(two_n: usize, k: u32) -> u64 {
    (two_n as u64) * (two_n as u64) * k as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hadamard_trivial_sizes() {
        assert_eq!(hadamard_bound(0, &Natural::from(5u64)), Natural::one());
        assert_eq!(hadamard_bound(1, &Natural::from(5u64)), Natural::from(5u64));
    }

    #[test]
    fn hadamard_dominates_actual_determinants() {
        // Our bound for n=2 is B^2 * ceil(sqrt 2)^2 = 4 B^2, which dominates
        // the true Hadamard value 2 B^2 and every actual 2x2 determinant.
        let b = Natural::from(7u64);
        let bound = hadamard_bound(2, &b);
        assert_eq!(bound, Natural::from(4u64 * 49));
        // Worst 2x2 det with entries in [0,7]: 7*7 - 0 = 49 <= 196.
        assert!(Natural::from(49u64) <= bound);
    }

    #[test]
    fn hadamard_k_bits_growth() {
        // For fixed n the bound grows like 2^{kn}: doubling k roughly
        // squares the entry part.
        let b1 = hadamard_bound_k_bits(4, 4);
        let b2 = hadamard_bound_k_bits(4, 8);
        assert!(b2 > b1);
        assert!(b2.bit_len() >= b1.bit_len() + 4 * 3);
    }

    #[test]
    fn q_values() {
        assert_eq!(q_of_k(1), Integer::from(1i64));
        assert_eq!(q_of_k(2), Integer::from(3i64));
        assert_eq!(q_of_k(8), Integer::from(255i64));
        assert_eq!(q_of_k(32), Integer::from((1i64 << 32) - 1));
    }

    #[test]
    fn input_bits_formula() {
        assert_eq!(input_bits(2, 1), 4);
        assert_eq!(input_bits(10, 8), 800);
    }

    #[test]
    fn bits_to_encode_edge_cases() {
        assert_eq!(bits_to_encode(&Natural::zero()), 1);
        assert_eq!(bits_to_encode(&Natural::one()), 1);
        assert_eq!(bits_to_encode(&Natural::from(255u64)), 8);
        assert_eq!(bits_to_encode(&Natural::from(256u64)), 9);
    }
}
