//! Random sampling of naturals and integers.
//!
//! The paper's input model is matrices of `k`-bit integers in
//! `[0, 2^k - 1]`; the restricted blocks of Fig. 3 draw entries from
//! `[0, q - 1]` with `q = 2^k - 1`. These samplers feed both the instance
//! generators and the property-based tests.

use rand::Rng;

use crate::integer::Sign;
use crate::{Integer, Natural, LIMB_BITS};

/// Uniform natural in `[0, 2^bits)`.
pub fn natural_with_bits<R: Rng + ?Sized>(rng: &mut R, bits: u64) -> Natural {
    if bits == 0 {
        return Natural::zero();
    }
    let limbs = bits.div_ceil(LIMB_BITS as u64) as usize;
    let mut v: Vec<u64> = (0..limbs).map(|_| rng.gen()).collect();
    let excess = (limbs as u64 * LIMB_BITS as u64) - bits;
    if excess > 0 {
        let last = v.last_mut().expect("limbs >= 1");
        *last >>= excess;
    }
    Natural::from_limbs(v)
}

/// Uniform natural in `[0, bound)`; panics if `bound` is zero.
pub fn natural_below<R: Rng + ?Sized>(rng: &mut R, bound: &Natural) -> Natural {
    assert!(!bound.is_zero(), "empty sampling range");
    let bits = bound.bit_len();
    // Rejection sampling: expected < 2 iterations.
    loop {
        let candidate = natural_with_bits(rng, bits);
        if &candidate < bound {
            return candidate;
        }
    }
}

/// Uniform integer in `[lo, hi]` (inclusive).
pub fn integer_in_range<R: Rng + ?Sized>(rng: &mut R, lo: &Integer, hi: &Integer) -> Integer {
    assert!(lo <= hi, "empty range");
    let span = hi - lo + Integer::one();
    let offset = natural_below(rng, span.magnitude());
    lo + &Integer::from(offset)
}

/// A uniform `k`-bit matrix entry in `[0, 2^k - 1]`, the paper's input
/// alphabet.
pub fn k_bit_entry<R: Rng + ?Sized>(rng: &mut R, k: u32) -> Integer {
    Integer::from(natural_with_bits(rng, k as u64))
}

/// A uniform restricted-block entry in `[0, q - 1]` with `q = 2^k - 1`
/// (the alphabet of the C, D, E, y blocks in Fig. 3).
pub fn restricted_entry<R: Rng + ?Sized>(rng: &mut R, k: u32) -> Integer {
    let q = (Natural::power_of_two(k as u64)) - Natural::one();
    assert!(!q.is_zero(), "k must be >= 1");
    Integer::from(natural_below(rng, &q))
}

/// Random nonzero integer with magnitude below `2^bits`.
pub fn nonzero_integer<R: Rng + ?Sized>(rng: &mut R, bits: u64) -> Integer {
    loop {
        let m = natural_with_bits(rng, bits);
        if !m.is_zero() {
            let sign = if rng.gen::<bool>() {
                Sign::Positive
            } else {
                Sign::Negative
            };
            return Integer::from_sign_magnitude(sign, m);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn bits_bound_respected() {
        let mut rng = StdRng::seed_from_u64(1);
        for bits in [0u64, 1, 7, 63, 64, 65, 200] {
            for _ in 0..20 {
                let n = natural_with_bits(&mut rng, bits);
                assert!(n.bit_len() <= bits, "bits={bits} produced {}", n.bit_len());
            }
        }
    }

    #[test]
    fn below_bound_respected_and_covers() {
        let mut rng = StdRng::seed_from_u64(2);
        let bound = Natural::from(10u64);
        let mut seen = [false; 10];
        for _ in 0..500 {
            let n = natural_below(&mut rng, &bound);
            let v = n.to_u64().unwrap() as usize;
            assert!(v < 10);
            seen[v] = true;
        }
        assert!(
            seen.iter().all(|&s| s),
            "uniform sampler missed a value in [0,10)"
        );
    }

    #[test]
    fn integer_range_inclusive() {
        let mut rng = StdRng::seed_from_u64(3);
        let lo = Integer::from(-3i64);
        let hi = Integer::from(3i64);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..500 {
            let v = integer_in_range(&mut rng, &lo, &hi).to_i64().unwrap();
            assert!((-3..=3).contains(&v));
            seen.insert(v);
        }
        assert_eq!(seen.len(), 7);
    }

    #[test]
    fn k_bit_entries_in_paper_alphabet() {
        let mut rng = StdRng::seed_from_u64(4);
        for k in 1..=8u32 {
            let max = (1u64 << k) - 1;
            for _ in 0..50 {
                let e = k_bit_entry(&mut rng, k).to_i64().unwrap();
                assert!((0..=max as i64).contains(&e));
            }
        }
    }

    #[test]
    fn restricted_entries_strictly_below_q() {
        let mut rng = StdRng::seed_from_u64(5);
        for k in 1..=8u32 {
            let q = (1i64 << k) - 1;
            for _ in 0..50 {
                let e = restricted_entry(&mut rng, k).to_i64().unwrap();
                assert!((0..q).contains(&e), "k={k}: entry {e} not in [0, q-1]");
            }
        }
    }

    #[test]
    fn nonzero_is_nonzero() {
        let mut rng = StdRng::seed_from_u64(6);
        for _ in 0..200 {
            assert!(!nonzero_integer(&mut rng, 3).is_zero());
        }
    }
}
