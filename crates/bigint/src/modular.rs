//! Modular arithmetic on naturals and integers.
//!
//! The randomized singularity protocol (`ccmx-comm`) and the modular rank
//! engine (`ccmx-linalg`) both reduce `k`-bit matrix entries modulo a prime
//! and work in `Z_p`. This module provides the scalar kernels: modular
//! reduction, exponentiation, and inversion, for both `u64` moduli (hot
//! path, `u128` intermediates) and big moduli.

use crate::gcd::mod_inverse;
use crate::{Integer, Natural};

/// `a * b mod m` for `u64` operands, exact via `u128` intermediates.
#[inline]
pub fn mul_mod_u64(a: u64, b: u64, m: u64) -> u64 {
    debug_assert!(m > 0);
    ((a as u128 * b as u128) % m as u128) as u64
}

/// `a + b mod m` for `u64` operands.
#[inline]
pub fn add_mod_u64(a: u64, b: u64, m: u64) -> u64 {
    debug_assert!(a < m && b < m);
    let (s, carry) = a.overflowing_add(b);
    if carry || s >= m {
        s.wrapping_sub(m)
    } else {
        s
    }
}

/// `a - b mod m` for `u64` operands.
#[inline]
pub fn sub_mod_u64(a: u64, b: u64, m: u64) -> u64 {
    debug_assert!(a < m && b < m);
    if a >= b {
        a - b
    } else {
        a.wrapping_sub(b).wrapping_add(m)
    }
}

/// `base^exp mod m` for `u64` operands.
pub fn pow_mod_u64(mut base: u64, mut exp: u64, m: u64) -> u64 {
    assert!(m > 0);
    if m == 1 {
        return 0;
    }
    base %= m;
    let mut acc = 1u64;
    while exp > 0 {
        if exp & 1 == 1 {
            acc = mul_mod_u64(acc, base, m);
        }
        exp >>= 1;
        base = mul_mod_u64(base, base, m);
    }
    acc
}

/// Modular inverse in `Z_m` for `u64` operands; `None` when not coprime.
pub fn inv_mod_u64(a: u64, m: u64) -> Option<u64> {
    assert!(m > 1);
    // Extended Euclid on i128 (m < 2^64 so all intermediates fit).
    let (mut old_r, mut r) = (a as i128 % m as i128, m as i128);
    let (mut old_s, mut s) = (1i128, 0i128);
    while r != 0 {
        let q = old_r / r;
        let tmp = old_r - q * r;
        old_r = std::mem::replace(&mut r, tmp);
        let tmp = old_s - q * s;
        old_s = std::mem::replace(&mut s, tmp);
    }
    if old_r.abs() != 1 {
        return None;
    }
    let mut x = old_s * old_r.signum();
    x %= m as i128;
    if x < 0 {
        x += m as i128;
    }
    Some(x as u64)
}

/// Reduce an [`Integer`] into `[0, m)` for a `u64` modulus.
pub fn reduce_integer_u64(a: &Integer, m: u64) -> u64 {
    assert!(m > 0);
    let r = (a.magnitude() % &Natural::from(m))
        .to_u64()
        .expect("residue fits u64");
    if a.is_negative() && r != 0 {
        m - r
    } else {
        r
    }
}

/// `base^exp mod m` with big modulus.
pub fn pow_mod(base: &Natural, exp: &Natural, m: &Natural) -> Natural {
    assert!(!m.is_zero());
    if m.is_one() {
        return Natural::zero();
    }
    let mut acc = Natural::one();
    let mut base = base % m;
    let bits = exp.bit_len();
    for i in 0..bits {
        if exp.bit(i) {
            acc = &(&acc * &base) % m;
        }
        if i + 1 < bits {
            base = &(&base * &base) % m;
        }
    }
    acc
}

/// Modular inverse of an [`Integer`] mod a big modulus (`None` if not
/// coprime).
pub fn inv_mod(a: &Integer, m: &Natural) -> Option<Integer> {
    mod_inverse(a, &Integer::from(m.clone()))
}

/// Chinese remainder theorem for a pair: find `x mod m1*m2` with
/// `x ≡ r1 (mod m1)`, `x ≡ r2 (mod m2)`. Moduli must be coprime.
pub fn crt_pair(r1: &Natural, m1: &Natural, r2: &Natural, m2: &Natural) -> Natural {
    // x = r1 + m1 * ((r2 - r1) * m1^{-1} mod m2)
    let m1_int = Integer::from(m1.clone());
    let inv = inv_mod(&m1_int, m2).expect("CRT moduli must be coprime");
    let diff = &Integer::from(r2.clone()) - &Integer::from(r1.clone());
    let t = (&diff * &inv).rem_euclid(&Integer::from(m2.clone()));
    let t = t.to_natural().expect("rem_euclid is non-negative");
    r1 + &(m1 * &t)
}

/// Combine a list of residues `(r_i, m_i)` with pairwise-coprime moduli
/// into `(x, M)` with `x ≡ r_i (mod m_i)` and `M = prod m_i`.
pub fn crt(residues: &[(Natural, Natural)]) -> (Natural, Natural) {
    assert!(!residues.is_empty());
    let mut x = residues[0].0.clone();
    let mut m = residues[0].1.clone();
    for (r, mi) in &residues[1..] {
        x = crt_pair(&x, &m, r, mi);
        m = &m * mi;
    }
    (x, m)
}

/// Interpret a CRT residue `x mod m` as a symmetric representative in
/// `(-m/2, m/2]`, as an [`Integer`]. This recovers signed determinants from
/// modular computations once `m` exceeds twice the Hadamard bound.
pub fn symmetric_representative(x: &Natural, m: &Natural) -> Integer {
    let half = m >> 1u64;
    if x > &half {
        Integer::from(x.clone()) - Integer::from(m.clone())
    } else {
        Integer::from(x.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn u64_kernels_match_naive() {
        let m = 1_000_000_007u64;
        for a in [0u64, 1, 5, m - 1] {
            for b in [0u64, 1, 7, m - 1] {
                assert_eq!(
                    add_mod_u64(a, b, m),
                    ((a as u128 + b as u128) % m as u128) as u64
                );
                assert_eq!(
                    sub_mod_u64(a, b, m),
                    ((a as i128 - b as i128).rem_euclid(m as i128)) as u64
                );
                assert_eq!(
                    mul_mod_u64(a, b, m),
                    ((a as u128 * b as u128) % m as u128) as u64
                );
            }
        }
    }

    #[test]
    fn add_mod_near_u64_max() {
        let m = u64::MAX - 58; // large modulus: the overflowing path
        let a = m - 1;
        let b = m - 2;
        assert_eq!(
            add_mod_u64(a, b, m),
            ((a as u128 + b as u128) % m as u128) as u64
        );
    }

    #[test]
    fn fermat_little_theorem() {
        let p = 1_000_000_007u64;
        for a in [2u64, 3, 65537, 999_999_999] {
            assert_eq!(pow_mod_u64(a, p - 1, p), 1);
        }
    }

    #[test]
    fn inv_mod_u64_roundtrip() {
        let p = 97u64;
        for a in 1..p {
            let inv = inv_mod_u64(a, p).unwrap();
            assert_eq!(mul_mod_u64(a, inv, p), 1);
        }
        assert_eq!(inv_mod_u64(6, 9), None);
    }

    #[test]
    fn reduce_integer_signs() {
        assert_eq!(reduce_integer_u64(&Integer::from(-1i64), 7), 6);
        assert_eq!(reduce_integer_u64(&Integer::from(-7i64), 7), 0);
        assert_eq!(reduce_integer_u64(&Integer::from(15i64), 7), 1);
        assert_eq!(reduce_integer_u64(&Integer::from(0i64), 7), 0);
    }

    #[test]
    fn big_pow_mod_matches_u64() {
        let m = 1_000_003u64;
        for (b, e) in [(2u64, 100u64), (3, 64), (12345, 6789)] {
            let big = pow_mod(&Natural::from(b), &Natural::from(e), &Natural::from(m));
            assert_eq!(big.to_u64().unwrap(), pow_mod_u64(b, e, m));
        }
    }

    #[test]
    fn crt_reconstruction() {
        let residues = vec![
            (Natural::from(2u64), Natural::from(3u64)),
            (Natural::from(3u64), Natural::from(5u64)),
            (Natural::from(2u64), Natural::from(7u64)),
        ];
        let (x, m) = crt(&residues);
        assert_eq!(m, Natural::from(105u64));
        assert_eq!(x, Natural::from(23u64));
    }

    #[test]
    fn symmetric_representatives() {
        let m = Natural::from(100u64);
        assert_eq!(
            symmetric_representative(&Natural::from(3u64), &m),
            Integer::from(3i64)
        );
        assert_eq!(
            symmetric_representative(&Natural::from(97u64), &m),
            Integer::from(-3i64)
        );
        assert_eq!(
            symmetric_representative(&Natural::from(50u64), &m),
            Integer::from(50i64)
        );
        assert_eq!(
            symmetric_representative(&Natural::from(51u64), &m),
            Integer::from(-49i64)
        );
    }

    #[test]
    fn crt_recovers_negative_determinant() {
        // Simulate recovering -42 from residues mod 97 and 101.
        let v = -42i64;
        let p1 = 97u64;
        let p2 = 101u64;
        let r1 = Natural::from(v.rem_euclid(p1 as i64) as u64);
        let r2 = Natural::from(v.rem_euclid(p2 as i64) as u64);
        let (x, m) = crt(&[(r1, Natural::from(p1)), (r2, Natural::from(p2))]);
        assert_eq!(symmetric_representative(&x, &m), Integer::from(v));
    }
}
