//! # ccmx-bigint
//!
//! Arbitrary-precision integer and rational arithmetic, implemented from
//! scratch for the `ccmx` reproduction of Chu & Schnitger (SPAA 1989,
//! *J. Complexity* 1991).
//!
//! Exact arithmetic is a hard requirement of the reproduction: the hard
//! instances of the paper are `2n × 2n` matrices of `k`-bit integers whose
//! determinants are bounded only by the Hadamard bound
//! `(2^k · sqrt(2n))^{2n}`, which overflows `i128` already for tiny
//! parameters. No bignum crate is available in the offline dependency set,
//! so this crate provides:
//!
//! * [`Natural`] — unsigned arbitrary-precision integers (little-endian
//!   `u64` limbs, schoolbook + Karatsuba multiplication, Knuth Algorithm D
//!   division),
//! * [`Integer`] — signed arbitrary-precision integers,
//! * [`Rational`] — always-normalized fractions of [`Integer`]s,
//! * modular arithmetic ([`modular`]), primality testing and prime windows
//!   ([`prime`]), random sampling ([`random`]) and the Hadamard-style
//!   magnitude bounds the paper's analysis relies on ([`bounds`]).
//!
//! The crate is deliberately dependency-light (only `rand`, optional
//! `serde`) and allocation-conscious in its inner loops, following the
//! hpc-parallel guidance used across the workspace.

#![deny(missing_docs)]
#![warn(clippy::all)]

pub mod bounds;
pub mod gcd;
pub mod integer;
pub mod modular;
pub mod natural;
pub mod prime;
pub mod random;
pub mod rational;

pub use integer::Integer;
pub use natural::Natural;
pub use rational::Rational;

/// The limb type used throughout the crate: 64-bit little-endian digits.
pub type Limb = u64;

/// Number of bits in a [`Limb`].
pub const LIMB_BITS: u32 = 64;

#[cfg(test)]
mod crate_tests {
    use super::*;

    #[test]
    fn reexports_are_usable() {
        let a = Integer::from(-7i64);
        let b = Natural::from(7u64);
        assert_eq!((-a).to_natural().unwrap(), b);
        let r = Rational::new(Integer::from(1i64), Integer::from(2i64));
        assert_eq!(
            r + Rational::new(Integer::from(1i64), Integer::from(2i64)),
            Rational::one()
        );
    }
}
