//! Exact rational numbers.
//!
//! [`Rational`] is an always-normalized fraction: the denominator is
//! strictly positive and `gcd(|num|, den) = 1`. Used by the rational
//! Gaussian elimination path in `ccmx-linalg` (the ablation baseline
//! against fraction-free Bareiss elimination).

use std::cmp::Ordering;
use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, MulAssign, Neg, Sub, SubAssign};

use crate::gcd::gcd;
use crate::{Integer, Natural};

/// An exact rational number `num / den` with `den > 0` and the fraction in
/// lowest terms.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct Rational {
    num: Integer,
    den: Natural,
}

impl Rational {
    /// The value 0.
    pub fn zero() -> Self {
        Rational {
            num: Integer::zero(),
            den: Natural::one(),
        }
    }

    /// The value 1.
    pub fn one() -> Self {
        Rational {
            num: Integer::one(),
            den: Natural::one(),
        }
    }

    /// Build `num / den`, normalizing. Panics if `den` is zero.
    pub fn new(num: Integer, den: Integer) -> Self {
        assert!(!den.is_zero(), "Rational with zero denominator");
        let num = if den.is_negative() { -num } else { num };
        let den = den.magnitude().clone();
        Self::normalized(num, den)
    }

    fn normalized(num: Integer, den: Natural) -> Self {
        debug_assert!(!den.is_zero());
        if num.is_zero() {
            return Rational::zero();
        }
        let g = gcd(num.magnitude(), &den);
        if g.is_one() {
            Rational { num, den }
        } else {
            Rational {
                num: Integer::from_sign_magnitude(num.sign(), num.magnitude() / &g),
                den: &den / &g,
            }
        }
    }

    /// Numerator (sign-carrying).
    pub fn numerator(&self) -> &Integer {
        &self.num
    }

    /// Denominator (always positive).
    pub fn denominator(&self) -> &Natural {
        &self.den
    }

    /// Is this zero?
    pub fn is_zero(&self) -> bool {
        self.num.is_zero()
    }

    /// Is this one?
    pub fn is_one(&self) -> bool {
        self.num.is_one() && self.den.is_one()
    }

    /// Is this an integer?
    pub fn is_integer(&self) -> bool {
        self.den.is_one()
    }

    /// Is this strictly negative?
    pub fn is_negative(&self) -> bool {
        self.num.is_negative()
    }

    /// Multiplicative inverse. Panics on zero.
    pub fn recip(&self) -> Rational {
        assert!(!self.is_zero(), "reciprocal of zero");
        Rational {
            num: Integer::from_sign_magnitude(self.num.sign(), self.den.clone()),
            den: self.num.magnitude().clone(),
        }
    }

    /// Absolute value.
    pub fn abs(&self) -> Rational {
        Rational {
            num: self.num.abs(),
            den: self.den.clone(),
        }
    }

    /// Convert to [`Integer`] if the denominator is 1.
    pub fn to_integer(&self) -> Option<Integer> {
        self.is_integer().then(|| self.num.clone())
    }

    /// Approximate `f64` value (reporting only).
    pub fn to_f64(&self) -> f64 {
        self.num.to_f64() / Integer::from(self.den.clone()).to_f64()
    }
}

impl From<Integer> for Rational {
    fn from(i: Integer) -> Self {
        Rational {
            num: i,
            den: Natural::one(),
        }
    }
}

impl From<i64> for Rational {
    fn from(v: i64) -> Self {
        Rational::from(Integer::from(v))
    }
}

impl Ord for Rational {
    fn cmp(&self, other: &Self) -> Ordering {
        // a/b vs c/d  <=>  a*d vs c*b  (b, d > 0)
        let lhs = &self.num * &Integer::from(other.den.clone());
        let rhs = &other.num * &Integer::from(self.den.clone());
        lhs.cmp(&rhs)
    }
}

impl PartialOrd for Rational {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

fn add_impl(a: &Rational, b: &Rational) -> Rational {
    let num = &(&a.num * &Integer::from(b.den.clone())) + &(&b.num * &Integer::from(a.den.clone()));
    let den = &a.den * &b.den;
    Rational::normalized(num, den)
}

fn mul_impl(a: &Rational, b: &Rational) -> Rational {
    Rational::normalized(&a.num * &b.num, &a.den * &b.den)
}

impl<'b> Add<&'b Rational> for &Rational {
    type Output = Rational;
    fn add(self, rhs: &'b Rational) -> Rational {
        add_impl(self, rhs)
    }
}
impl Add for Rational {
    type Output = Rational;
    fn add(self, rhs: Rational) -> Rational {
        add_impl(&self, &rhs)
    }
}
impl AddAssign<&Rational> for Rational {
    fn add_assign(&mut self, rhs: &Rational) {
        *self = add_impl(self, rhs);
    }
}

impl Neg for Rational {
    type Output = Rational;
    fn neg(self) -> Rational {
        Rational {
            num: -self.num,
            den: self.den,
        }
    }
}
impl Neg for &Rational {
    type Output = Rational;
    fn neg(self) -> Rational {
        Rational {
            num: -&self.num,
            den: self.den.clone(),
        }
    }
}

impl<'b> Sub<&'b Rational> for &Rational {
    type Output = Rational;
    fn sub(self, rhs: &'b Rational) -> Rational {
        add_impl(self, &-rhs)
    }
}
impl Sub for Rational {
    type Output = Rational;
    fn sub(self, rhs: Rational) -> Rational {
        add_impl(&self, &-rhs)
    }
}
impl SubAssign<&Rational> for Rational {
    fn sub_assign(&mut self, rhs: &Rational) {
        *self = add_impl(self, &-rhs);
    }
}

impl<'b> Mul<&'b Rational> for &Rational {
    type Output = Rational;
    fn mul(self, rhs: &'b Rational) -> Rational {
        mul_impl(self, rhs)
    }
}
impl Mul for Rational {
    type Output = Rational;
    fn mul(self, rhs: Rational) -> Rational {
        mul_impl(&self, &rhs)
    }
}
impl MulAssign<&Rational> for Rational {
    fn mul_assign(&mut self, rhs: &Rational) {
        *self = mul_impl(self, rhs);
    }
}

impl<'b> Div<&'b Rational> for &Rational {
    type Output = Rational;
    fn div(self, rhs: &'b Rational) -> Rational {
        mul_impl(self, &rhs.recip())
    }
}
impl Div for Rational {
    type Output = Rational;
    fn div(self, rhs: Rational) -> Rational {
        mul_impl(&self, &rhs.recip())
    }
}

impl fmt::Display for Rational {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.den.is_one() {
            write!(f, "{}", self.num)
        } else {
            write!(f, "{}/{}", self.num, self.den)
        }
    }
}

impl fmt::Debug for Rational {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Rational({self})")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(n: i64, d: i64) -> Rational {
        Rational::new(Integer::from(n), Integer::from(d))
    }

    #[test]
    fn normalization() {
        assert_eq!(r(2, 4), r(1, 2));
        assert_eq!(r(-2, 4), r(1, -2));
        assert_eq!(r(0, 7), Rational::zero());
        assert_eq!(r(6, 3).to_integer().unwrap(), Integer::from(2i64));
        assert!(!r(-3, 6).denominator().is_zero());
        assert!(r(-1, 2).is_negative());
    }

    #[test]
    #[should_panic(expected = "zero denominator")]
    fn zero_denominator_panics() {
        let _ = r(1, 0);
    }

    #[test]
    fn field_ops() {
        assert_eq!(r(1, 2) + r(1, 3), r(5, 6));
        assert_eq!(r(1, 2) - r(1, 3), r(1, 6));
        assert_eq!(r(2, 3) * r(3, 4), r(1, 2));
        assert_eq!(r(2, 3) / r(4, 9), r(3, 2));
        assert_eq!(r(1, 2).recip(), r(2, 1));
        assert_eq!(r(-1, 2).recip(), r(-2, 1));
    }

    #[test]
    #[should_panic(expected = "reciprocal of zero")]
    fn recip_zero_panics() {
        let _ = Rational::zero().recip();
    }

    #[test]
    fn ordering() {
        assert!(r(1, 3) < r(1, 2));
        assert!(r(-1, 2) < r(-1, 3));
        assert!(r(-1, 2) < Rational::zero());
        assert_eq!(r(2, 4).cmp(&r(1, 2)), Ordering::Equal);
    }

    #[test]
    fn display() {
        assert_eq!(r(1, 2).to_string(), "1/2");
        assert_eq!(r(-4, 2).to_string(), "-2");
        assert_eq!(Rational::zero().to_string(), "0");
    }

    #[test]
    fn exactness_of_long_chains() {
        // sum_{i=1..n} 1/(i(i+1)) = n/(n+1), telescoping — a classic test
        // that floating point fails and exact rationals pass.
        let mut sum = Rational::zero();
        let n = 50i64;
        for i in 1..=n {
            sum += &r(1, i * (i + 1));
        }
        assert_eq!(sum, r(n, n + 1));
    }

    #[test]
    fn to_f64_sane() {
        assert!((r(1, 3).to_f64() - 1.0 / 3.0).abs() < 1e-12);
        assert!((r(-7, 2).to_f64() + 3.5).abs() < 1e-12);
    }
}
