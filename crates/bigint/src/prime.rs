//! Primality testing and prime generation.
//!
//! The randomized singularity-testing protocol needs a *prime window*: the
//! set of primes in `[2^{b-1}, 2^b)` for a bit size `b` chosen so that a
//! nonzero determinant (bounded by the Hadamard bound) has few prime
//! divisors in the window relative to the window's size. This module
//! provides a deterministic Miller–Rabin test for `u64`, a sieve, random
//! prime sampling, and the window-size estimates used by the protocol's
//! error analysis.

use rand::Rng;

use crate::modular::{mul_mod_u64, pow_mod_u64};
use crate::Natural;

/// Deterministic Miller–Rabin for `u64`.
///
/// Uses the witness set `{2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37}`,
/// which is known to be exact for all `n < 3.3 * 10^24` (far beyond `u64`).
pub fn is_prime_u64(n: u64) -> bool {
    if n < 2 {
        return false;
    }
    for &p in &[2u64, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37] {
        if n == p {
            return true;
        }
        if n.is_multiple_of(p) {
            return false;
        }
    }
    // Write n-1 = d * 2^s with d odd.
    let mut d = n - 1;
    let s = d.trailing_zeros();
    d >>= s;
    'witness: for &a in &[2u64, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37] {
        let mut x = pow_mod_u64(a, d, n);
        if x == 1 || x == n - 1 {
            continue;
        }
        for _ in 0..s - 1 {
            x = mul_mod_u64(x, x, n);
            if x == n - 1 {
                continue 'witness;
            }
        }
        return false;
    }
    true
}

/// All primes `< limit` by a simple sieve of Eratosthenes.
pub fn sieve(limit: usize) -> Vec<u64> {
    if limit < 3 {
        return if limit > 2 { vec![2] } else { Vec::new() };
    }
    let mut is_comp = vec![false; limit];
    let mut primes = Vec::new();
    for i in 2..limit {
        if !is_comp[i] {
            primes.push(i as u64);
            let mut j = i * i;
            while j < limit {
                is_comp[j] = true;
                j += i;
            }
        }
    }
    primes
}

/// The first prime `>= n` (`n <= u64::MAX - small slack`).
pub fn next_prime(mut n: u64) -> u64 {
    if n <= 2 {
        return 2;
    }
    if n.is_multiple_of(2) {
        n += 1;
    }
    loop {
        if is_prime_u64(n) {
            return n;
        }
        n = n.checked_add(2).expect("prime search overflowed u64");
    }
}

/// A half-open window `[2^{bits-1}, 2^bits)` from which the randomized
/// protocol samples primes. `bits` must be in `2..=63`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PrimeWindow {
    /// The bit size `b`; primes are drawn from `[2^{b-1}, 2^b)`.
    pub bits: u32,
}

impl PrimeWindow {
    /// Construct a window of the given bit size.
    pub fn new(bits: u32) -> Self {
        assert!(
            (2..=63).contains(&bits),
            "PrimeWindow bits must be in 2..=63"
        );
        PrimeWindow { bits }
    }

    /// Lower end (inclusive).
    pub fn lo(&self) -> u64 {
        1u64 << (self.bits - 1)
    }

    /// Upper end (exclusive).
    pub fn hi(&self) -> u64 {
        1u64 << self.bits
    }

    /// Sample a uniformly random prime from the window by rejection.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
        loop {
            let candidate = rng.gen_range(self.lo()..self.hi()) | 1;
            if is_prime_u64(candidate) {
                return candidate;
            }
        }
    }

    /// Lower bound on the number of primes in the window, from the
    /// Rosser–Schoenfeld-style bound `pi(x) > x / ln x` for `x >= 17`.
    ///
    /// For the window `[2^{b-1}, 2^b)` this gives
    /// `pi(2^b) - pi(2^{b-1}) > 2^b / (b ln 2) - 2^{b-1} * 1.26 / ((b-1) ln 2)`
    /// (using `pi(x) < 1.26 x / ln x`), which is positive and of order
    /// `2^{b-1} / (b ln 2)` for every `b >= 4`.
    pub fn count_lower_bound(&self) -> f64 {
        let b = self.bits as f64;
        let ln2 = std::f64::consts::LN_2;
        let upper = (2f64).powf(b) / (b * ln2);
        let lower_overcount = 1.26 * (2f64).powf(b - 1.0) / ((b - 1.0) * ln2);
        (upper - lower_overcount).max(1.0)
    }

    /// Exact prime count in the window (only feasible for small windows;
    /// used by tests to validate `count_lower_bound`).
    pub fn count_exact(&self) -> u64 {
        assert!(
            self.bits <= 24,
            "exact count only supported for small windows"
        );
        let primes = sieve(self.hi() as usize);
        primes.iter().filter(|&&p| p >= self.lo()).count() as u64
    }
}

/// Given a bound `|d| <= magnitude_bound` on a nonzero integer `d`, the
/// number of *distinct* primes `>= 2^{bits-1}` dividing `d` is at most
/// `log_{2^{bits-1}}(magnitude_bound) = bit_len(bound) / (bits - 1)`.
///
/// Together with [`PrimeWindow::count_lower_bound`] this yields the
/// one-sided error probability of the randomized singularity protocol.
pub fn max_prime_divisors_in_window(magnitude_bound: &Natural, window: PrimeWindow) -> u64 {
    let bits = magnitude_bound.bit_len();
    bits.div_ceil((window.bits - 1) as u64)
}

/// Pick a window size (in bits) so that the randomized protocol errs with
/// probability at most `2^-security`: the window must contain at least
/// `2^security` times as many primes as any admissible nonzero determinant
/// can have divisors in it.
pub fn window_for_error(magnitude_bound: &Natural, security: u32) -> PrimeWindow {
    for bits in 8..=62u32 {
        let w = PrimeWindow::new(bits);
        let bad = max_prime_divisors_in_window(magnitude_bound, w) as f64;
        let total = w.count_lower_bound();
        if bad * (2f64).powi(security as i32) <= total {
            return w;
        }
    }
    PrimeWindow::new(62)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn small_primes_classified() {
        let primes: Vec<u64> = (0..100).filter(|&n| is_prime_u64(n)).collect();
        assert_eq!(
            primes,
            vec![
                2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47, 53, 59, 61, 67, 71, 73, 79,
                83, 89, 97
            ]
        );
    }

    #[test]
    fn miller_rabin_agrees_with_sieve() {
        let limit = 10_000;
        let sieved: std::collections::HashSet<u64> = sieve(limit).into_iter().collect();
        for n in 0..limit as u64 {
            assert_eq!(is_prime_u64(n), sieved.contains(&n), "disagreement at {n}");
        }
    }

    #[test]
    fn large_known_primes_and_composites() {
        assert!(is_prime_u64(2_147_483_647)); // 2^31 - 1, Mersenne
        assert!(is_prime_u64(1_000_000_007));
        assert!(is_prime_u64(18_446_744_073_709_551_557)); // largest u64 prime
        assert!(!is_prime_u64(3_215_031_751)); // strong pseudoprime to 2,3,5,7
        assert!(!is_prime_u64(u64::MAX));
        let carmichael = 561u64;
        assert!(!is_prime_u64(carmichael));
    }

    #[test]
    fn next_prime_steps() {
        assert_eq!(next_prime(0), 2);
        assert_eq!(next_prime(2), 2);
        assert_eq!(next_prime(3), 3);
        assert_eq!(next_prime(4), 5);
        assert_eq!(next_prime(90), 97);
        assert_eq!(next_prime(1_000_000_000), 1_000_000_007);
    }

    #[test]
    fn window_sampling_in_range_and_prime() {
        let mut rng = StdRng::seed_from_u64(7);
        let w = PrimeWindow::new(20);
        for _ in 0..50 {
            let p = w.sample(&mut rng);
            assert!(p >= w.lo() && p < w.hi());
            assert!(is_prime_u64(p));
        }
    }

    #[test]
    fn window_lower_bound_is_a_lower_bound() {
        for bits in [12u32, 16, 20, 24] {
            let w = PrimeWindow::new(bits);
            let exact = w.count_exact() as f64;
            let bound = w.count_lower_bound();
            assert!(
                bound <= exact,
                "bits={bits}: claimed lower bound {bound} exceeds exact count {exact}"
            );
            assert!(bound >= 1.0);
        }
    }

    #[test]
    fn divisor_bound_is_correct_for_known_value() {
        // d = product of three 15-bit primes. In a 16-bit window it has
        // exactly 3 prime divisors; the bound must be >= 3.
        let p1 = 16411u64;
        let p2 = 16417;
        let p3 = 16421;
        assert!(is_prime_u64(p1) && is_prime_u64(p2) && is_prime_u64(p3));
        let d = Natural::from(p1) * Natural::from(p2) * Natural::from(p3);
        let bound = max_prime_divisors_in_window(&d, PrimeWindow::new(15));
        assert!(bound >= 3, "bound {bound} misses actual divisor count 3");
    }

    #[test]
    fn window_for_error_scales_with_security() {
        let bound = Natural::power_of_two(1 << 12); // a 4096-bit determinant bound
        let w10 = window_for_error(&bound, 10);
        let w20 = window_for_error(&bound, 20);
        assert!(w20.bits >= w10.bits);
        // Sanity: claimed error is met by the returned window.
        let bad = max_prime_divisors_in_window(&bound, w20) as f64;
        assert!(bad * (2f64).powi(20) <= w20.count_lower_bound());
    }
}
