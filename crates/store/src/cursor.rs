//! Durable enumeration cursors.
//!
//! Constant-cost-class sweeps enumerate truth matrices far past one
//! process lifetime; a [`DurableCursor`] checkpoints the enumeration
//! position (plus an opaque accumulator blob) into the store's
//! [`Keyspace::CURSOR`] namespace so an interrupted sweep resumes from
//! its last commit instead of restarting from matrix zero.
//!
//! The on-disk value is `position (u64 LE)` followed by the caller's
//! state bytes; the key is the cursor's name. Commit granularity is the
//! caller's: [`DurableCursor::advance`] auto-commits every
//! `commit_every` steps to bound both write amplification and the
//! amount of re-enumeration a crash can cost.

use crate::record::Keyspace;
use crate::store::Store;
use crate::StoreError;

/// A named, durable position in some enumeration.
#[derive(Clone, Debug)]
pub struct DurableCursor {
    name: Vec<u8>,
    position: u64,
    state: Vec<u8>,
    commit_every: u64,
    uncommitted: u64,
}

impl DurableCursor {
    /// Load the cursor `name` from `store`, or start it at position 0
    /// with empty state. `commit_every` bounds how many [`advance`]
    /// steps may pass between automatic commits (minimum 1).
    ///
    /// [`advance`]: DurableCursor::advance
    pub fn load(store: &Store, name: &str, commit_every: u64) -> DurableCursor {
        let (position, state) = match store.get(Keyspace::CURSOR, name.as_bytes()) {
            Some(v) if v.len() >= 8 => {
                let mut p = [0u8; 8];
                p.copy_from_slice(&v[..8]);
                (u64::from_le_bytes(p), v[8..].to_vec())
            }
            _ => (0, Vec::new()),
        };
        DurableCursor {
            name: name.as_bytes().to_vec(),
            position,
            state,
            commit_every: commit_every.max(1),
            uncommitted: 0,
        }
    }

    /// Last committed-or-advanced position. After a crash, re-loading
    /// yields the last *committed* position — the sweep re-runs at most
    /// `commit_every - 1` steps.
    pub fn position(&self) -> u64 {
        self.position
    }

    /// The opaque accumulator blob saved alongside the position (e.g.
    /// running counts of a sweep). Empty for a fresh cursor.
    pub fn state(&self) -> &[u8] {
        &self.state
    }

    /// Replace the accumulator blob; persisted at the next commit.
    pub fn set_state(&mut self, state: Vec<u8>) {
        self.state = state;
    }

    /// Move the cursor to `to` (monotonic; moving backwards is a
    /// caller bug and is refused). Commits automatically once
    /// `commit_every` advances have accumulated.
    pub fn advance(&mut self, store: &mut Store, to: u64) -> Result<(), StoreError> {
        if to < self.position {
            return Err(StoreError::Invalid(format!(
                "cursor {} cannot move backwards ({} -> {to})",
                String::from_utf8_lossy(&self.name),
                self.position
            )));
        }
        self.position = to;
        self.uncommitted += 1;
        if self.uncommitted >= self.commit_every {
            self.commit(store)?;
        }
        Ok(())
    }

    /// Persist position + state now and sync the store.
    pub fn commit(&mut self, store: &mut Store) -> Result<(), StoreError> {
        let mut value = Vec::with_capacity(8 + self.state.len());
        value.extend_from_slice(&self.position.to_le_bytes());
        value.extend_from_slice(&self.state);
        store.put(Keyspace::CURSOR, &self.name, &value)?;
        store.sync()?;
        self.uncommitted = 0;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::StoreConfig;
    use std::path::PathBuf;

    fn tmp(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("ccmx-store-cursor-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn resumes_from_last_commit() {
        let dir = tmp("resume");
        {
            let mut s = Store::open(StoreConfig::new(&dir).label("cursor-test")).unwrap();
            let mut c = DurableCursor::load(&s, "sweep-3x3", 4);
            assert_eq!(c.position(), 0);
            for i in 1..=10u64 {
                c.set_state(i.to_le_bytes().to_vec());
                c.advance(&mut s, i).unwrap();
            }
            // commits fired at 4 and 8; 9 and 10 are uncommitted — a
            // crash here (no explicit commit) loses at most 2 steps.
        }
        let s = Store::open(StoreConfig::new(&dir).label("cursor-test")).unwrap();
        let c = DurableCursor::load(&s, "sweep-3x3", 4);
        assert_eq!(c.position(), 8, "resume at the last auto-commit");
        assert_eq!(c.state(), 8u64.to_le_bytes());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn explicit_commit_and_monotonicity() {
        let dir = tmp("commit");
        let mut s = Store::open(StoreConfig::new(&dir).label("cursor-test")).unwrap();
        let mut c = DurableCursor::load(&s, "x", 1000);
        c.advance(&mut s, 5).unwrap();
        c.commit(&mut s).unwrap();
        assert!(c.advance(&mut s, 3).is_err(), "backwards move refused");
        let c2 = DurableCursor::load(&s, "x", 1000);
        assert_eq!(c2.position(), 5);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn cursors_are_independent_by_name() {
        let dir = tmp("names");
        let mut s = Store::open(StoreConfig::new(&dir).label("cursor-test")).unwrap();
        let mut a = DurableCursor::load(&s, "a", 1);
        let mut b = DurableCursor::load(&s, "b", 1);
        a.advance(&mut s, 10).unwrap();
        b.advance(&mut s, 20).unwrap();
        assert_eq!(DurableCursor::load(&s, "a", 1).position(), 10);
        assert_eq!(DurableCursor::load(&s, "b", 1).position(), 20);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
