//! Record frames: the unit of appending, checksumming and recovery.
//!
//! Current (v2) frame layout, little-endian throughout:
//!
//! ```text
//! offset  size  field
//! 0       1     record magic 0xCD
//! 1       1     schema version (2)
//! 2       1     keyspace
//! 3       1     flags (bit 0 = tombstone)
//! 4       8     seqno (u64 LE)
//! 12      4     key_len (u32 LE)
//! 16      4     val_len (u32 LE)
//! 20      K     key bytes
//! 20+K    V     value bytes
//! 20+K+V  8     checksum: FNV-1a 64 over bytes [0, 20+K+V) (u64 LE)
//! ```
//!
//! The legacy v1 frame (read-only; rewritten as v2 by compaction) is
//! identical except the header has **no seqno field** — 12 header
//! bytes, checksum over `[0, 12+K+V)`. The scanner assigns migrated v1
//! records synthetic seqnos in scan order, which preserves their
//! last-writer-wins semantics because v1 stores were single-writer
//! append-only logs. See `docs/STORAGE.md` §3 for the normative rules.
//!
//! The checksum covers the *entire* frame before it, header included,
//! so a bit flip anywhere — kind, lengths, key, value, even the flags
//! byte that distinguishes a write from a delete — is detected before
//! any field is trusted.

use crate::{fnv64, StoreError};

/// First byte of every record frame.
pub const RECORD_MAGIC: u8 = 0xCD;

/// Legacy schema: 12-byte header without a seqno field.
pub const SCHEMA_V1: u8 = 1;

/// Current schema: 20-byte header carrying the record seqno.
pub const SCHEMA_V2: u8 = 2;

/// Header length of a v2 frame, bytes.
pub const HEADER_V2_BYTES: usize = 20;

/// Header length of a legacy v1 frame, bytes.
pub const HEADER_V1_BYTES: usize = 12;

/// Checksum trailer length, bytes.
pub const CHECKSUM_BYTES: usize = 8;

/// Hard cap on key length (1 MiB). A larger length field is corruption.
pub const MAX_KEY_BYTES: usize = 1 << 20;

/// Hard cap on value length (4 MiB), mirroring the wire codec's frame
/// cap: anything longer is a corrupt length field, and reading it would
/// let one bad frame pin the process's memory.
pub const MAX_VALUE_BYTES: usize = 1 << 22;

/// Flags bit 0: this record is a tombstone (the key is deleted; the
/// value must be empty).
pub const FLAG_TOMBSTONE: u8 = 0b0000_0001;

/// A namespace for keys, so one store serves several caches without
/// key collisions. The byte value is part of the on-disk format.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Keyspace(pub u8);

impl Keyspace {
    /// Theorem 1.1 bound packages (`BoundsReport` wire bytes).
    pub const BOUNDS: Keyspace = Keyspace(1);
    /// Exact `CC(f)` search verdicts (`Response::CcSearch` wire bytes).
    pub const CC: Keyspace = Keyspace(2);
    /// CRT-certified singularity verdicts (fingerprint + rank).
    pub const CRT: Keyspace = Keyspace(3);
    /// Idempotent protocol-run replays (`RetryClient` ledger).
    pub const RUN: Keyspace = Keyspace(4);
    /// Durable enumeration cursors ([`crate::cursor`]).
    pub const CURSOR: Keyspace = Keyspace(5);
    /// Spilled search-memo entries (canonical rectangle brackets).
    pub const MEMO: Keyspace = Keyspace(6);

    /// Human-readable name for stat output; unknown bytes print as
    /// `ks-<n>` (the store is generic over application keyspaces).
    pub fn name(self) -> String {
        match self {
            Keyspace::BOUNDS => "bounds".into(),
            Keyspace::CC => "cc".into(),
            Keyspace::CRT => "crt".into(),
            Keyspace::RUN => "run".into(),
            Keyspace::CURSOR => "cursor".into(),
            Keyspace::MEMO => "memo".into(),
            Keyspace(other) => format!("ks-{other}"),
        }
    }
}

/// A decoded record frame.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Record {
    /// Schema version the frame was read with (write path is always
    /// [`SCHEMA_V2`]).
    pub schema: u8,
    /// Key namespace.
    pub keyspace: Keyspace,
    /// Monotonic sequence number; for v1 frames, assigned by the
    /// scanner in scan order.
    pub seqno: u64,
    /// True when this frame deletes its key.
    pub tombstone: bool,
    /// Key bytes.
    pub key: Vec<u8>,
    /// Value bytes (empty for tombstones).
    pub value: Vec<u8>,
}

impl Record {
    /// Total encoded frame length of this record at schema v2.
    pub fn frame_len(&self) -> usize {
        HEADER_V2_BYTES + self.key.len() + self.value.len() + CHECKSUM_BYTES
    }
}

/// Encode a v2 frame. Callers must respect the key/value caps; the
/// store's `put` validates them before reaching here.
pub fn encode(rec: &Record) -> Vec<u8> {
    debug_assert!(rec.key.len() <= MAX_KEY_BYTES);
    debug_assert!(rec.value.len() <= MAX_VALUE_BYTES);
    let mut out = Vec::with_capacity(rec.frame_len());
    out.push(RECORD_MAGIC);
    out.push(SCHEMA_V2);
    out.push(rec.keyspace.0);
    out.push(if rec.tombstone { FLAG_TOMBSTONE } else { 0 });
    out.extend_from_slice(&rec.seqno.to_le_bytes());
    out.extend_from_slice(&(rec.key.len() as u32).to_le_bytes());
    out.extend_from_slice(&(rec.value.len() as u32).to_le_bytes());
    out.extend_from_slice(&rec.key);
    out.extend_from_slice(&rec.value);
    let sum = fnv64(&out);
    out.extend_from_slice(&sum.to_le_bytes());
    out
}

/// Encode a *legacy v1* frame. Only the migration tests and the chaos
/// harness write these; the store's write path never does.
#[doc(hidden)]
pub fn encode_v1(keyspace: Keyspace, tombstone: bool, key: &[u8], value: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(HEADER_V1_BYTES + key.len() + value.len() + CHECKSUM_BYTES);
    out.push(RECORD_MAGIC);
    out.push(SCHEMA_V1);
    out.push(keyspace.0);
    out.push(if tombstone { FLAG_TOMBSTONE } else { 0 });
    out.extend_from_slice(&(key.len() as u32).to_le_bytes());
    out.extend_from_slice(&(value.len() as u32).to_le_bytes());
    out.extend_from_slice(key);
    out.extend_from_slice(value);
    let sum = fnv64(&out);
    out.extend_from_slice(&sum.to_le_bytes());
    out
}

/// Outcome of decoding one frame from a buffer position.
#[derive(Debug)]
pub enum Decoded {
    /// A whole, checksum-valid frame: the record and its total encoded
    /// length (header + key + value + checksum) at its *on-disk*
    /// schema.
    Frame(Record, usize),
    /// The buffer ends before the frame does — a torn write. Recovery
    /// truncates here when this is the log's tail.
    Torn,
}

/// Decode the frame starting at `buf[0]`. `next_seqno` supplies the
/// synthetic seqno for a legacy v1 frame.
///
/// Errors are *typed corruption*: bad magic, an unsupported (newer)
/// schema, impossible lengths, or a checksum mismatch. A frame that
/// simply runs past the end of `buf` is not an error but [`Decoded::Torn`].
pub fn decode(buf: &[u8], next_seqno: u64) -> Result<Decoded, StoreError> {
    if buf.is_empty() {
        return Ok(Decoded::Torn);
    }
    if buf[0] != RECORD_MAGIC {
        return Err(StoreError::Corrupt(format!(
            "bad record magic {:#04x} (expected {RECORD_MAGIC:#04x})",
            buf[0]
        )));
    }
    if buf.len() < 2 {
        return Ok(Decoded::Torn);
    }
    let schema = buf[1];
    let header_len = match schema {
        SCHEMA_V1 => HEADER_V1_BYTES,
        SCHEMA_V2 => HEADER_V2_BYTES,
        newer => {
            return Err(StoreError::Unsupported(format!(
                "record schema {newer} is newer than this build understands (max {SCHEMA_V2})"
            )))
        }
    };
    if buf.len() < header_len {
        return Ok(Decoded::Torn);
    }
    let keyspace = Keyspace(buf[2]);
    let flags = buf[3];
    if flags & !FLAG_TOMBSTONE != 0 {
        return Err(StoreError::Corrupt(format!(
            "unknown record flags {flags:#04x}"
        )));
    }
    let (seqno, lens_at) = if schema == SCHEMA_V2 {
        let mut s = [0u8; 8];
        s.copy_from_slice(&buf[4..12]);
        (u64::from_le_bytes(s), 12)
    } else {
        (next_seqno, 4)
    };
    let key_len = u32::from_le_bytes([
        buf[lens_at],
        buf[lens_at + 1],
        buf[lens_at + 2],
        buf[lens_at + 3],
    ]) as usize;
    let val_len = u32::from_le_bytes([
        buf[lens_at + 4],
        buf[lens_at + 5],
        buf[lens_at + 6],
        buf[lens_at + 7],
    ]) as usize;
    if key_len > MAX_KEY_BYTES {
        return Err(StoreError::Corrupt(format!(
            "record claims a {key_len}-byte key, cap is {MAX_KEY_BYTES}"
        )));
    }
    if val_len > MAX_VALUE_BYTES {
        return Err(StoreError::Corrupt(format!(
            "record claims a {val_len}-byte value, cap is {MAX_VALUE_BYTES}"
        )));
    }
    let total = header_len + key_len + val_len + CHECKSUM_BYTES;
    if buf.len() < total {
        return Ok(Decoded::Torn);
    }
    let body_end = total - CHECKSUM_BYTES;
    let mut sum = [0u8; 8];
    sum.copy_from_slice(&buf[body_end..total]);
    let stored = u64::from_le_bytes(sum);
    let computed = fnv64(&buf[..body_end]);
    if stored != computed {
        return Err(StoreError::Corrupt(format!(
            "record checksum mismatch: stored {stored:#018x}, computed {computed:#018x}"
        )));
    }
    let tombstone = flags & FLAG_TOMBSTONE != 0;
    if tombstone && val_len != 0 {
        return Err(StoreError::Corrupt(format!(
            "tombstone carries a {val_len}-byte value"
        )));
    }
    let key = buf[header_len..header_len + key_len].to_vec();
    let value = buf[header_len + key_len..body_end].to_vec();
    Ok(Decoded::Frame(
        Record {
            schema,
            keyspace,
            seqno,
            tombstone,
            key,
            value,
        },
        total,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Record {
        Record {
            schema: SCHEMA_V2,
            keyspace: Keyspace::BOUNDS,
            seqno: 42,
            tombstone: false,
            key: b"key-bytes".to_vec(),
            value: b"value-bytes".to_vec(),
        }
    }

    #[test]
    fn v2_round_trip() {
        let rec = sample();
        let bytes = encode(&rec);
        assert_eq!(bytes.len(), rec.frame_len());
        match decode(&bytes, 0).unwrap() {
            Decoded::Frame(back, len) => {
                assert_eq!(back, rec);
                assert_eq!(len, bytes.len());
            }
            other => panic!("expected a frame, got {other:?}"),
        }
    }

    #[test]
    fn v1_decodes_with_synthetic_seqno() {
        let bytes = encode_v1(Keyspace::CC, false, b"k", b"v");
        match decode(&bytes, 7).unwrap() {
            Decoded::Frame(rec, len) => {
                assert_eq!(rec.schema, SCHEMA_V1);
                assert_eq!(rec.seqno, 7, "v1 seqno is scanner-assigned");
                assert_eq!(rec.key, b"k");
                assert_eq!(rec.value, b"v");
                assert_eq!(len, bytes.len());
            }
            other => panic!("expected a frame, got {other:?}"),
        }
    }

    #[test]
    fn every_prefix_is_torn_not_error() {
        let bytes = encode(&sample());
        for cut in 0..bytes.len() {
            match decode(&bytes[..cut], 0) {
                Ok(Decoded::Torn) => {}
                other => panic!("prefix of {cut} bytes gave {other:?}"),
            }
        }
    }

    #[test]
    fn every_single_bit_flip_is_detected() {
        let rec = sample();
        let bytes = encode(&rec);
        for byte in 0..bytes.len() {
            for bit in 0..8 {
                let mut bad = bytes.clone();
                bad[byte] ^= 1 << bit;
                match decode(&bad, 0) {
                    Err(_) => {}
                    // A flip in a length field can make the frame claim
                    // to extend past the buffer: that reads as torn,
                    // which recovery treats as "stop here" — still never
                    // a silently accepted wrong record.
                    Ok(Decoded::Torn) => {}
                    Ok(Decoded::Frame(got, _)) => {
                        panic!("flip at byte {byte} bit {bit} silently accepted: {got:?}")
                    }
                }
            }
        }
    }

    #[test]
    fn newer_schema_is_unsupported_not_corrupt() {
        let mut bytes = encode(&sample());
        bytes[1] = 3;
        assert!(matches!(decode(&bytes, 0), Err(StoreError::Unsupported(_))));
    }

    #[test]
    fn tombstone_with_value_rejected() {
        let mut rec = sample();
        rec.tombstone = true;
        // encode() would assert in debug; build the bad frame by hand.
        let mut bytes = encode(&rec);
        // set the tombstone flag post-encode and re-checksum
        bytes[3] = FLAG_TOMBSTONE;
        let body_end = bytes.len() - CHECKSUM_BYTES;
        let sum = crate::fnv64(&bytes[..body_end]);
        bytes[body_end..].copy_from_slice(&sum.to_le_bytes());
        assert!(matches!(decode(&bytes, 0), Err(StoreError::Corrupt(_))));
    }
}
