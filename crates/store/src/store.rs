//! The store proper: a directory of segments, an in-memory index
//! rebuilt by scan on open, crash recovery, tombstone compaction and
//! `ccmx_store_*` metrics.

use std::collections::HashMap;
use std::fs;
use std::path::{Path, PathBuf};
use std::sync::{Mutex, OnceLock};

use ccmx_obs::{registry, Counter, Gauge};

use crate::record::{self, Keyspace, Record, SCHEMA_V2};
use crate::segment::{
    self, parse_segment_file_name, scan_segment, ScanEnd, SegmentWriter, SEGMENT_HEADER_BYTES,
};
use crate::StoreError;

/// Default segment roll threshold: 8 MiB.
pub const DEFAULT_ROLL_BYTES: u64 = 8 << 20;

/// Suffix appended to segment files recovery can no longer trust.
/// Quarantined files are renamed, never deleted — the bytes stay on
/// disk for forensics, but the scanner ignores them.
pub const QUARANTINE_SUFFIX: &str = "quarantined";

/// Configuration for opening a [`Store`].
#[derive(Clone, Debug)]
pub struct StoreConfig {
    /// Data directory; created if missing.
    pub dir: PathBuf,
    /// Metric label value for this store's `ccmx_store_*` series.
    pub label: String,
    /// Roll to a new segment once the active one reaches this many
    /// bytes ([`DEFAULT_ROLL_BYTES`] by default).
    pub roll_bytes: u64,
    /// fsync after every sync point. Off by default: the page cache
    /// already survives a process SIGKILL; fsync only buys durability
    /// against power loss, at real latency cost.
    pub fsync: bool,
}

impl StoreConfig {
    /// Defaults for a data directory.
    pub fn new(dir: impl Into<PathBuf>) -> StoreConfig {
        StoreConfig {
            dir: dir.into(),
            label: "default".to_string(),
            roll_bytes: DEFAULT_ROLL_BYTES,
            fsync: false,
        }
    }

    /// Set the metric label.
    pub fn label(mut self, label: impl Into<String>) -> StoreConfig {
        self.label = label.into();
        self
    }

    /// Set the segment roll threshold.
    pub fn roll_bytes(mut self, bytes: u64) -> StoreConfig {
        self.roll_bytes = bytes.max(SEGMENT_HEADER_BYTES as u64 + 1);
        self
    }

    /// Enable fsync-per-sync-point.
    pub fn fsync(mut self, on: bool) -> StoreConfig {
        self.fsync = on;
        self
    }
}

/// What kind of problem recovery found.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RecoveryKind {
    /// The last segment ended mid-frame; the tail was truncated to the
    /// last whole frame.
    TornTail,
    /// A frame failed validation (checksum, magic, impossible length);
    /// everything from that offset on was discarded.
    CorruptFrame,
    /// A segment header failed validation; the whole file was
    /// quarantined.
    CorruptHeader,
    /// A segment after a corruption point was quarantined wholesale to
    /// preserve the exact-prefix guarantee.
    QuarantinedSegment,
}

impl std::fmt::Display for RecoveryKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            RecoveryKind::TornTail => "torn-tail",
            RecoveryKind::CorruptFrame => "corrupt-frame",
            RecoveryKind::CorruptHeader => "corrupt-header",
            RecoveryKind::QuarantinedSegment => "quarantined-segment",
        };
        f.write_str(s)
    }
}

/// One problem recovery found and resolved, surfaced exactly once.
#[derive(Clone, Debug)]
pub struct RecoveryIssue {
    /// Segment id the issue was found in.
    pub segment: u64,
    /// Byte offset of the first untrusted byte within that segment.
    pub offset: u64,
    /// Classification.
    pub kind: RecoveryKind,
    /// Human-readable detail (the typed decode error's message).
    pub detail: String,
}

/// What [`Store::open`] recovered, and what it had to repair.
#[derive(Clone, Debug, Default)]
pub struct RecoveryReport {
    /// Segment files scanned (quarantined ones included).
    pub segments_scanned: u64,
    /// Record frames accepted into the index scan (live + superseded +
    /// tombstones).
    pub recovered_records: u64,
    /// Frames read via the legacy v1 header (upgraded on compaction).
    pub migrated_v1: u64,
    /// Bytes cut off the tail segment (torn or corrupt tail).
    pub truncated_bytes: u64,
    /// Whole segments renamed aside as untrustworthy.
    pub quarantined_segments: u64,
    /// Every problem found, each surfaced exactly once.
    pub issues: Vec<RecoveryIssue>,
}

impl RecoveryReport {
    /// True when recovery found nothing to repair.
    pub fn clean(&self) -> bool {
        self.issues.is_empty()
    }
}

/// Report from [`Store::compact`].
#[derive(Clone, Copy, Debug)]
pub struct CompactReport {
    /// Segment files before compaction.
    pub segments_before: u64,
    /// Segment files after compaction.
    pub segments_after: u64,
    /// Live records carried across.
    pub live_records: u64,
    /// Dead bytes reclaimed (superseded frames, tombstones, overhead).
    pub reclaimed_bytes: u64,
    /// Legacy v1 records rewritten at the current schema.
    pub migrated_v1: u64,
}

/// Point-in-time statistics from [`Store::stat`].
#[derive(Clone, Debug)]
pub struct StoreStat {
    /// Data directory.
    pub dir: PathBuf,
    /// Segment files currently in the log.
    pub segments: u64,
    /// Live (visible) records.
    pub live_records: u64,
    /// Bytes owned by live frames.
    pub live_bytes: u64,
    /// Bytes owned by superseded frames, tombstones and headers —
    /// what compaction would reclaim.
    pub dead_bytes: u64,
    /// Live-record count per keyspace, sorted by keyspace byte.
    pub per_keyspace: Vec<(String, u64)>,
    /// Next sequence number to be assigned.
    pub next_seqno: u64,
}

/// Read-only health report from [`Store::verify_dir`].
#[derive(Clone, Debug, Default)]
pub struct VerifyReport {
    /// Per-segment: (id, valid records, file bytes, status) where
    /// status is `"clean"`, `"torn@<off>"`, `"corrupt@<off>: <why>"`
    /// or `"bad-header: <why>"`.
    pub segments: Vec<(u64, u64, u64, String)>,
    /// Total valid records across all segments.
    pub records: u64,
    /// Quarantined files present in the directory.
    pub quarantined: u64,
    /// True when every segment scanned clean.
    pub ok: bool,
}

struct IndexEntry {
    seqno: u64,
    frame_len: u64,
    value: Vec<u8>,
}

struct StoreMetrics {
    segments: &'static Gauge,
    live_records: &'static Gauge,
    live_bytes: &'static Gauge,
    dead_bytes: &'static Gauge,
    appends: &'static Counter,
    recovered: &'static Counter,
    migrated: &'static Counter,
    truncated_bytes: &'static Counter,
    quarantined: &'static Counter,
    compactions: &'static Counter,
    reclaimed_bytes: &'static Counter,
}

/// Intern a label so the `'static` metric registry can hold it without
/// leaking a fresh allocation per [`Store::open`].
fn intern_label(s: &str) -> &'static str {
    static POOL: OnceLock<Mutex<HashMap<String, &'static str>>> = OnceLock::new();
    let pool = POOL.get_or_init(|| Mutex::new(HashMap::new()));
    let mut pool = pool.lock().unwrap_or_else(|e| e.into_inner());
    if let Some(&v) = pool.get(s) {
        return v;
    }
    let leaked: &'static str = Box::leak(s.to_string().into_boxed_str());
    pool.insert(s.to_string(), leaked);
    leaked
}

impl StoreMetrics {
    fn for_label(label: &str) -> StoreMetrics {
        let l = intern_label(label);
        let lbl: &[(&'static str, &'static str)] = &[("store", l)];
        let r = registry();
        StoreMetrics {
            segments: r.gauge("ccmx_store_segments", lbl),
            live_records: r.gauge("ccmx_store_live_records", lbl),
            live_bytes: r.gauge("ccmx_store_live_bytes", lbl),
            dead_bytes: r.gauge("ccmx_store_dead_bytes", lbl),
            appends: r.counter("ccmx_store_appends_total", lbl),
            recovered: r.counter("ccmx_store_recovered_records_total", lbl),
            migrated: r.counter("ccmx_store_migrated_records_total", lbl),
            truncated_bytes: r.counter("ccmx_store_truncated_bytes_total", lbl),
            quarantined: r.counter("ccmx_store_quarantined_segments_total", lbl),
            compactions: r.counter("ccmx_store_compactions_total", lbl),
            reclaimed_bytes: r.counter("ccmx_store_compact_reclaimed_bytes_total", lbl),
        }
    }
}

/// The persistent certified-result store. See the crate docs and
/// `docs/STORAGE.md` for the format and recovery rules.
pub struct Store {
    config: StoreConfig,
    writer: SegmentWriter,
    index: HashMap<(Keyspace, Vec<u8>), IndexEntry>,
    /// Segment ids in the log, ascending; last is the writer's.
    segment_ids: Vec<u64>,
    next_seqno: u64,
    live_bytes: u64,
    dead_bytes: u64,
    recovery: RecoveryReport,
    metrics: StoreMetrics,
}

impl Store {
    /// Open (creating if needed) the store in `config.dir`, rebuilding
    /// the index by scanning every segment and repairing any crash
    /// damage. The resulting index is always exactly the prefix of
    /// committed records up to the first untrustworthy byte.
    pub fn open(config: StoreConfig) -> Result<Store, StoreError> {
        fs::create_dir_all(&config.dir)?;
        if !config.dir.is_dir() {
            return Err(StoreError::Invalid(format!(
                "store path {} is not a directory",
                config.dir.display()
            )));
        }
        let metrics = StoreMetrics::for_label(&config.label);
        let mut ids = list_segments(&config.dir)?;
        ids.sort_unstable();

        let mut report = RecoveryReport::default();
        let mut index: HashMap<(Keyspace, Vec<u8>), IndexEntry> = HashMap::new();
        let mut live_bytes = 0u64;
        let mut dead_bytes = 0u64;
        let mut next_seqno = 0u64;
        let mut kept_ids: Vec<u64> = Vec::new();
        let mut poisoned_at: Option<usize> = None;

        for (pos, &id) in ids.iter().enumerate() {
            report.segments_scanned += 1;
            let is_last = pos + 1 == ids.len();
            let scan = match scan_segment(&config.dir, id, next_seqno) {
                Ok(s) => s,
                Err(StoreError::Unsupported(m)) => return Err(StoreError::Unsupported(m)),
                Err(e) => {
                    // Unreadable header: no salvageable prefix in this
                    // file. Quarantine it, and everything after it.
                    report.issues.push(RecoveryIssue {
                        segment: id,
                        offset: 0,
                        kind: RecoveryKind::CorruptHeader,
                        detail: e.to_string(),
                    });
                    quarantine(&config.dir, id)?;
                    report.quarantined_segments += 1;
                    poisoned_at = Some(pos + 1);
                    break;
                }
            };
            dead_bytes += SEGMENT_HEADER_BYTES as u64;
            for located in &scan.records {
                let rec = &located.record;
                next_seqno = next_seqno.max(rec.seqno + 1);
                report.recovered_records += 1;
                let key = (rec.keyspace, rec.key.clone());
                if let Some(old) = index.remove(&key) {
                    live_bytes -= old.frame_len;
                    dead_bytes += old.frame_len;
                }
                if rec.tombstone {
                    dead_bytes += located.frame_len;
                } else {
                    live_bytes += located.frame_len;
                    index.insert(
                        key,
                        IndexEntry {
                            seqno: rec.seqno,
                            frame_len: located.frame_len,
                            value: rec.value.clone(),
                        },
                    );
                }
            }
            report.migrated_v1 += scan.migrated_v1;
            kept_ids.push(id);
            match scan.end {
                ScanEnd::Clean => {}
                ScanEnd::Torn { offset } => {
                    report.issues.push(RecoveryIssue {
                        segment: id,
                        offset,
                        kind: RecoveryKind::TornTail,
                        detail: format!("file ends mid-frame at offset {offset}"),
                    });
                    report.truncated_bytes += scan.file_len - offset;
                    truncate_segment(&config.dir, id, offset)?;
                    if !is_last {
                        poisoned_at = Some(pos + 1);
                        break;
                    }
                }
                ScanEnd::Corrupt { offset, error } => {
                    // Note this includes a frame claiming a newer record
                    // schema: the segment *header* already proved the
                    // file was written at a format version this build
                    // understands, and writers must bump that version
                    // before emitting newer record schemas (STORAGE.md
                    // §2) — so inside this segment, an out-of-range
                    // schema byte is a flipped bit, not a downgrade.
                    report.issues.push(RecoveryIssue {
                        segment: id,
                        offset,
                        kind: RecoveryKind::CorruptFrame,
                        detail: error.to_string(),
                    });
                    report.truncated_bytes += scan.file_len - offset;
                    truncate_segment(&config.dir, id, offset)?;
                    if !is_last {
                        poisoned_at = Some(pos + 1);
                        break;
                    }
                }
            }
        }

        // Everything after a mid-log problem is quarantined wholesale:
        // keeping newer segments while records before them were lost
        // would resurrect stale values — a corrupted answer. An exact
        // prefix, surfaced loudly, is the only safe recovery.
        if let Some(from) = poisoned_at {
            for &id in &ids[from..] {
                report.segments_scanned += 1;
                report.issues.push(RecoveryIssue {
                    segment: id,
                    offset: 0,
                    kind: RecoveryKind::QuarantinedSegment,
                    detail: "follows a corrupted segment; exact-prefix discipline".to_string(),
                });
                quarantine(&config.dir, id)?;
                report.quarantined_segments += 1;
            }
        }

        // Reopen the tail for appending, or start segment 0 / the next
        // id after the highest ever seen (ids are never reused, even
        // for quarantined files).
        let next_fresh_id = ids.iter().copied().max().map_or(0, |m| m + 1);
        let writer = match (kept_ids.last().copied(), poisoned_at) {
            (Some(last), None) => {
                let len = fs::metadata(config.dir.join(segment::segment_file_name(last)))?.len();
                SegmentWriter::reopen(&config.dir, last, len)?
            }
            _ => {
                let w = SegmentWriter::create(&config.dir, next_fresh_id, next_seqno)?;
                kept_ids.push(next_fresh_id);
                dead_bytes += SEGMENT_HEADER_BYTES as u64;
                w
            }
        };

        metrics.recovered.add(report.recovered_records);
        metrics.migrated.add(report.migrated_v1);
        metrics.truncated_bytes.add(report.truncated_bytes);
        metrics.quarantined.add(report.quarantined_segments);

        let store = Store {
            config,
            writer,
            index,
            segment_ids: kept_ids,
            next_seqno,
            live_bytes,
            dead_bytes,
            recovery: report,
            metrics,
        };
        store.publish_gauges();
        Ok(store)
    }

    /// The recovery report from this open.
    pub fn recovery(&self) -> &RecoveryReport {
        &self.recovery
    }

    /// Data directory.
    pub fn dir(&self) -> &Path {
        &self.config.dir
    }

    /// Live (visible) record count.
    pub fn len(&self) -> usize {
        self.index.len()
    }

    /// True when no live records exist.
    pub fn is_empty(&self) -> bool {
        self.index.is_empty()
    }

    /// Look up a key. Returns the latest committed value, or `None`
    /// for absent or deleted keys.
    pub fn get(&self, keyspace: Keyspace, key: &[u8]) -> Option<&[u8]> {
        self.index
            .get(&(keyspace, key.to_vec()))
            .map(|e| e.value.as_slice())
    }

    /// Append a write. Last writer wins; a re-put of an identical value
    /// still appends (the log is the history).
    pub fn put(&mut self, keyspace: Keyspace, key: &[u8], value: &[u8]) -> Result<(), StoreError> {
        if key.len() > record::MAX_KEY_BYTES {
            return Err(StoreError::Invalid(format!(
                "key of {} bytes exceeds the {} cap",
                key.len(),
                record::MAX_KEY_BYTES
            )));
        }
        if value.len() > record::MAX_VALUE_BYTES {
            return Err(StoreError::Invalid(format!(
                "value of {} bytes exceeds the {} cap",
                value.len(),
                record::MAX_VALUE_BYTES
            )));
        }
        let rec = Record {
            schema: SCHEMA_V2,
            keyspace,
            seqno: self.next_seqno,
            tombstone: false,
            key: key.to_vec(),
            value: value.to_vec(),
        };
        let frame = record::encode(&rec);
        self.append_frame(&frame)?;
        let entry = IndexEntry {
            seqno: rec.seqno,
            frame_len: frame.len() as u64,
            value: rec.value,
        };
        self.next_seqno += 1;
        if let Some(old) = self.index.insert((keyspace, key.to_vec()), entry) {
            self.live_bytes -= old.frame_len;
            self.dead_bytes += old.frame_len;
        }
        self.live_bytes += frame.len() as u64;
        self.publish_gauges();
        Ok(())
    }

    /// Append a tombstone. Returns whether the key was live.
    pub fn delete(&mut self, keyspace: Keyspace, key: &[u8]) -> Result<bool, StoreError> {
        let rec = Record {
            schema: SCHEMA_V2,
            keyspace,
            seqno: self.next_seqno,
            tombstone: true,
            key: key.to_vec(),
            value: Vec::new(),
        };
        let frame = record::encode(&rec);
        self.append_frame(&frame)?;
        self.next_seqno += 1;
        self.dead_bytes += frame.len() as u64;
        let was_live = match self.index.remove(&(keyspace, key.to_vec())) {
            Some(old) => {
                self.live_bytes -= old.frame_len;
                self.dead_bytes += old.frame_len;
                true
            }
            None => false,
        };
        self.publish_gauges();
        Ok(was_live)
    }

    /// Visit every live record in one keyspace, in commit (seqno)
    /// order — deterministic, so warm seeding reproduces insertion
    /// order into LRU caches.
    pub fn for_each(&self, keyspace: Keyspace, mut f: impl FnMut(&[u8], &[u8])) {
        let mut live: Vec<(&Vec<u8>, &IndexEntry)> = self
            .index
            .iter()
            .filter(|((ks, _), _)| *ks == keyspace)
            .map(|((_, k), e)| (k, e))
            .collect();
        live.sort_by_key(|(_, e)| e.seqno);
        for (k, e) in live {
            f(k, &e.value);
        }
    }

    /// Flush appended frames to the OS (and fsync when configured).
    /// After `sync` returns, the data survives a process SIGKILL.
    pub fn sync(&mut self) -> Result<(), StoreError> {
        self.writer.sync()?;
        if self.config.fsync {
            self.writer.fsync()?;
        }
        Ok(())
    }

    /// Rewrite all live records into fresh segments and delete the old
    /// files, reclaiming dead bytes and upgrading any legacy v1 frames
    /// to the current schema. Crash-safe: new segments are written and
    /// synced before any old file is removed, old files are removed
    /// oldest-first, and rewritten records keep their original seqnos —
    /// so a crash at any point leaves a log that scans to the same
    /// index (see `docs/STORAGE.md` §6).
    pub fn compact(&mut self) -> Result<CompactReport, StoreError> {
        let before_segments = self.segment_ids.len() as u64;
        let before_bytes = self.live_bytes + self.dead_bytes;
        let old_ids = std::mem::take(&mut self.segment_ids);
        let first_new = old_ids.iter().copied().max().map_or(0, |m| m + 1);

        // Live records in commit order.
        let mut live: Vec<(&(Keyspace, Vec<u8>), &IndexEntry)> = self.index.iter().collect();
        live.sort_by_key(|(_, e)| e.seqno);
        let migrated_v1 = self.recovery.migrated_v1;

        let mut new_ids = Vec::new();
        let mut id = first_new;
        let mut w = SegmentWriter::create(&self.config.dir, id, self.next_seqno)?;
        new_ids.push(id);
        let mut new_bytes = SEGMENT_HEADER_BYTES as u64;
        let mut rewritten: HashMap<(Keyspace, Vec<u8>), u64> = HashMap::new();
        for ((ks, key), entry) in live {
            let rec = Record {
                schema: SCHEMA_V2,
                keyspace: *ks,
                seqno: entry.seqno,
                tombstone: false,
                key: key.clone(),
                value: entry.value.clone(),
            };
            let frame = record::encode(&rec);
            if w.len() + frame.len() as u64 > self.config.roll_bytes && !w.is_empty() {
                w.sync()?;
                if self.config.fsync {
                    w.fsync()?;
                }
                id += 1;
                w = SegmentWriter::create(&self.config.dir, id, entry.seqno)?;
                new_ids.push(id);
                new_bytes += SEGMENT_HEADER_BYTES as u64;
            }
            w.append(&frame)?;
            new_bytes += frame.len() as u64;
            rewritten.insert((*ks, key.clone()), frame.len() as u64);
        }
        w.sync()?;
        if self.config.fsync {
            w.fsync()?;
        }

        // Only now is it safe to drop the old files, oldest first: a
        // tombstone's segment is never removed before the puts it
        // shadows (puts live in segments with ids <= the tombstone's).
        for old in &old_ids {
            fs::remove_file(self.config.dir.join(segment::segment_file_name(*old)))?;
        }

        // Refresh accounting: every index entry now has the frame_len
        // of its rewritten v2 frame.
        let mut live_bytes = 0u64;
        for (key, entry) in self.index.iter_mut() {
            if let Some(len) = rewritten.get(key) {
                entry.frame_len = *len;
                live_bytes += *len;
            }
        }
        let reclaimed = before_bytes.saturating_sub(new_bytes);
        self.live_bytes = live_bytes;
        self.dead_bytes = new_bytes - live_bytes;
        self.segment_ids = new_ids;
        self.writer = w;
        self.recovery.migrated_v1 = 0;

        self.metrics.compactions.inc();
        self.metrics.reclaimed_bytes.add(reclaimed);
        self.publish_gauges();
        Ok(CompactReport {
            segments_before: before_segments,
            segments_after: self.segment_ids.len() as u64,
            live_records: self.index.len() as u64,
            reclaimed_bytes: reclaimed,
            migrated_v1,
        })
    }

    /// Point-in-time statistics.
    pub fn stat(&self) -> StoreStat {
        let mut per: HashMap<Keyspace, u64> = HashMap::new();
        for ((ks, _), _) in self.index.iter() {
            *per.entry(*ks).or_insert(0) += 1;
        }
        let mut per_keyspace: Vec<(Keyspace, u64)> = per.into_iter().collect();
        per_keyspace.sort_by_key(|(ks, _)| ks.0);
        StoreStat {
            dir: self.config.dir.clone(),
            segments: self.segment_ids.len() as u64,
            live_records: self.index.len() as u64,
            live_bytes: self.live_bytes,
            dead_bytes: self.dead_bytes,
            per_keyspace: per_keyspace
                .into_iter()
                .map(|(ks, n)| (ks.name(), n))
                .collect(),
            next_seqno: self.next_seqno,
        }
    }

    /// Read-only integrity check of a store directory — never repairs,
    /// truncates or renames anything. Safe to run against a directory
    /// another process has open.
    pub fn verify_dir(dir: &Path) -> Result<VerifyReport, StoreError> {
        let mut ids = list_segments(dir)?;
        ids.sort_unstable();
        let quarantined = fs::read_dir(dir)?
            .filter_map(|e| e.ok())
            .filter(|e| e.file_name().to_string_lossy().ends_with(QUARANTINE_SUFFIX))
            .count() as u64;
        let mut out = VerifyReport {
            quarantined,
            ok: true,
            ..VerifyReport::default()
        };
        let mut next_seqno = 0u64;
        for id in ids {
            match scan_segment(dir, id, next_seqno) {
                Ok(scan) => {
                    for lr in &scan.records {
                        next_seqno = next_seqno.max(lr.record.seqno + 1);
                    }
                    let n = scan.records.len() as u64;
                    out.records += n;
                    let status = match scan.end {
                        ScanEnd::Clean => "clean".to_string(),
                        ScanEnd::Torn { offset } => {
                            out.ok = false;
                            format!("torn@{offset}")
                        }
                        ScanEnd::Corrupt { offset, ref error } => {
                            out.ok = false;
                            format!("corrupt@{offset}: {error}")
                        }
                    };
                    out.segments.push((id, n, scan.file_len, status));
                }
                Err(e) => {
                    out.ok = false;
                    out.segments.push((id, 0, 0, format!("bad-header: {e}")));
                }
            }
        }
        if out.quarantined > 0 {
            out.ok = false;
        }
        Ok(out)
    }

    fn append_frame(&mut self, frame: &[u8]) -> Result<(), StoreError> {
        if self.writer.len() + frame.len() as u64 > self.config.roll_bytes
            && !self.writer.is_empty()
        {
            self.writer.sync()?;
            if self.config.fsync {
                self.writer.fsync()?;
            }
            let id = self.writer.id() + 1;
            self.writer = SegmentWriter::create(&self.config.dir, id, self.next_seqno)?;
            self.segment_ids.push(id);
            self.dead_bytes += SEGMENT_HEADER_BYTES as u64;
        }
        self.writer.append(frame)?;
        self.metrics.appends.inc();
        Ok(())
    }

    fn publish_gauges(&self) {
        self.metrics.segments.set(self.segment_ids.len() as i64);
        self.metrics.live_records.set(self.index.len() as i64);
        self.metrics.live_bytes.set(self.live_bytes as i64);
        self.metrics.dead_bytes.set(self.dead_bytes as i64);
    }
}

impl Drop for Store {
    fn drop(&mut self) {
        let _ = self.sync();
    }
}

fn list_segments(dir: &Path) -> Result<Vec<u64>, StoreError> {
    let mut ids = Vec::new();
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        if let Some(id) = parse_segment_file_name(&entry.file_name().to_string_lossy()) {
            ids.push(id);
        }
    }
    Ok(ids)
}

fn truncate_segment(dir: &Path, id: u64, len: u64) -> Result<(), StoreError> {
    let path = dir.join(segment::segment_file_name(id));
    let file = fs::OpenOptions::new().write(true).open(&path)?;
    file.set_len(len)?;
    file.sync_data()?;
    Ok(())
}

fn quarantine(dir: &Path, id: u64) -> Result<(), StoreError> {
    let from = dir.join(segment::segment_file_name(id));
    let to = dir.join(format!(
        "{}.{QUARANTINE_SUFFIX}",
        segment::segment_file_name(id)
    ));
    fs::rename(&from, &to)?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::Keyspace;

    fn tmp(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("ccmx-store-core-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn cfg(dir: &Path, tag: &str) -> StoreConfig {
        StoreConfig::new(dir).label(format!("test-{tag}"))
    }

    #[test]
    fn put_get_delete_survive_reopen() {
        let dir = tmp("basic");
        {
            let mut s = Store::open(cfg(&dir, "basic")).unwrap();
            s.put(Keyspace::BOUNDS, b"alpha", b"1").unwrap();
            s.put(Keyspace::BOUNDS, b"beta", b"2").unwrap();
            s.put(Keyspace::CC, b"alpha", b"other-keyspace").unwrap();
            s.put(Keyspace::BOUNDS, b"alpha", b"1-rewritten").unwrap();
            s.delete(Keyspace::BOUNDS, b"beta").unwrap();
            s.sync().unwrap();
            assert_eq!(s.get(Keyspace::BOUNDS, b"alpha"), Some(&b"1-rewritten"[..]));
            assert_eq!(s.get(Keyspace::BOUNDS, b"beta"), None);
        }
        let s = Store::open(cfg(&dir, "basic")).unwrap();
        assert!(s.recovery().clean());
        assert_eq!(s.recovery().recovered_records, 5);
        assert_eq!(s.len(), 2);
        assert_eq!(s.get(Keyspace::BOUNDS, b"alpha"), Some(&b"1-rewritten"[..]));
        assert_eq!(s.get(Keyspace::CC, b"alpha"), Some(&b"other-keyspace"[..]));
        assert_eq!(s.get(Keyspace::BOUNDS, b"beta"), None);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn for_each_yields_commit_order() {
        let dir = tmp("order");
        let mut s = Store::open(cfg(&dir, "order")).unwrap();
        for i in 0..20u32 {
            s.put(Keyspace::CC, &i.to_le_bytes(), &[i as u8]).unwrap();
        }
        let mut seen = Vec::new();
        s.for_each(Keyspace::CC, |k, _| {
            seen.push(u32::from_le_bytes([k[0], k[1], k[2], k[3]]))
        });
        assert_eq!(seen, (0..20).collect::<Vec<_>>());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn segments_roll_and_reopen_sees_all() {
        let dir = tmp("roll");
        let n = {
            let mut s = Store::open(cfg(&dir, "roll").roll_bytes(256)).unwrap();
            for i in 0..50u32 {
                s.put(Keyspace::MEMO, &i.to_le_bytes(), &[0u8; 40]).unwrap();
            }
            s.sync().unwrap();
            assert!(s.stat().segments > 1, "expected the log to roll");
            s.stat().segments
        };
        let s = Store::open(cfg(&dir, "roll").roll_bytes(256)).unwrap();
        assert_eq!(s.stat().segments, n);
        assert_eq!(s.len(), 50);
        assert!(s.recovery().clean());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_tail_truncates_to_prefix() {
        let dir = tmp("torn");
        {
            let mut s = Store::open(cfg(&dir, "torn")).unwrap();
            for i in 0..10u32 {
                s.put(Keyspace::RUN, &i.to_le_bytes(), b"payload").unwrap();
            }
            s.sync().unwrap();
        }
        // Tear the tail: chop 5 bytes off the last segment.
        let seg = dir.join(segment::segment_file_name(0));
        let len = fs::metadata(&seg).unwrap().len();
        let f = fs::OpenOptions::new().write(true).open(&seg).unwrap();
        f.set_len(len - 5).unwrap();
        drop(f);
        let s = Store::open(cfg(&dir, "torn")).unwrap();
        assert_eq!(s.len(), 9, "last record torn away, prefix intact");
        assert_eq!(s.recovery().issues.len(), 1);
        assert_eq!(s.recovery().issues[0].kind, RecoveryKind::TornTail);
        // The repaired log reopens clean.
        drop(s);
        let s = Store::open(cfg(&dir, "torn")).unwrap();
        assert!(s.recovery().clean());
        assert_eq!(s.len(), 9);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn mid_log_corruption_quarantines_later_segments() {
        let dir = tmp("quarantine");
        {
            let mut s = Store::open(cfg(&dir, "quarantine").roll_bytes(200)).unwrap();
            for i in 0..30u32 {
                s.put(Keyspace::CRT, &i.to_le_bytes(), &[7u8; 64]).unwrap();
            }
            s.sync().unwrap();
            assert!(s.stat().segments >= 3);
        }
        // Flip a bit in the middle of segment 1's record area.
        let seg = dir.join(segment::segment_file_name(1));
        let mut bytes = fs::read(&seg).unwrap();
        let mid = SEGMENT_HEADER_BYTES + 10;
        bytes[mid] ^= 0x01;
        fs::write(&seg, &bytes).unwrap();

        let s = Store::open(cfg(&dir, "quarantine").roll_bytes(200)).unwrap();
        assert!(!s.recovery().clean());
        assert!(s.recovery().quarantined_segments >= 1);
        assert!(s
            .recovery()
            .issues
            .iter()
            .any(|i| i.kind == RecoveryKind::QuarantinedSegment));
        // Only records from segment 0 plus segment 1's valid prefix
        // survive — an exact prefix of commit order.
        let mut max_key = 0u32;
        s.for_each(Keyspace::CRT, |k, _| {
            max_key = max_key.max(u32::from_le_bytes([k[0], k[1], k[2], k[3]]))
        });
        assert_eq!(s.len() as u32, max_key + 1, "no gaps: an exact prefix");
        assert!(s.len() < 30);
        // Quarantined files are preserved on disk.
        let q = fs::read_dir(&dir)
            .unwrap()
            .filter(|e| {
                e.as_ref()
                    .unwrap()
                    .file_name()
                    .to_string_lossy()
                    .ends_with(QUARANTINE_SUFFIX)
            })
            .count();
        assert!(q >= 1);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn compaction_reclaims_and_preserves_state() {
        let dir = tmp("compact");
        let mut s = Store::open(cfg(&dir, "compact").roll_bytes(300)).unwrap();
        for round in 0..5u32 {
            for i in 0..10u32 {
                s.put(
                    Keyspace::BOUNDS,
                    &i.to_le_bytes(),
                    format!("round-{round}").as_bytes(),
                )
                .unwrap();
            }
        }
        for i in 5..10u32 {
            s.delete(Keyspace::BOUNDS, &i.to_le_bytes()).unwrap();
        }
        s.sync().unwrap();
        let before = s.stat();
        let report = s.compact().unwrap();
        assert_eq!(report.live_records, 5);
        assert!(report.reclaimed_bytes > 0);
        assert!(s.stat().dead_bytes < before.dead_bytes);
        for i in 0..5u32 {
            assert_eq!(
                s.get(Keyspace::BOUNDS, &i.to_le_bytes()),
                Some(&b"round-4"[..])
            );
        }
        // Writes after compaction land and the whole thing reopens.
        s.put(Keyspace::BOUNDS, b"post", b"compact").unwrap();
        s.sync().unwrap();
        drop(s);
        let s = Store::open(cfg(&dir, "compact").roll_bytes(300)).unwrap();
        assert!(s.recovery().clean());
        assert_eq!(s.len(), 6);
        assert_eq!(s.get(Keyspace::BOUNDS, b"post"), Some(&b"compact"[..]));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn v1_records_migrate_through_compaction() {
        let dir = tmp("migrate");
        fs::create_dir_all(&dir).unwrap();
        // Hand-write a segment holding legacy v1 frames.
        {
            let mut w = SegmentWriter::create(&dir, 0, 0).unwrap();
            w.append(&record::encode_v1(Keyspace::CC, false, b"old-1", b"v1"))
                .unwrap();
            w.append(&record::encode_v1(Keyspace::CC, false, b"old-2", b"v2"))
                .unwrap();
            w.append(&record::encode_v1(Keyspace::CC, true, b"old-1", b""))
                .unwrap();
            w.sync().unwrap();
        }
        let mut s = Store::open(cfg(&dir, "migrate")).unwrap();
        assert_eq!(s.recovery().migrated_v1, 3);
        assert_eq!(s.len(), 1);
        assert_eq!(s.get(Keyspace::CC, b"old-2"), Some(&b"v2"[..]));
        assert_eq!(s.get(Keyspace::CC, b"old-1"), None, "v1 tombstone honored");
        let report = s.compact().unwrap();
        assert_eq!(report.migrated_v1, 3);
        drop(s);
        // After compaction the log is pure v2.
        let s = Store::open(cfg(&dir, "migrate")).unwrap();
        assert_eq!(s.recovery().migrated_v1, 0);
        assert_eq!(s.get(Keyspace::CC, b"old-2"), Some(&b"v2"[..]));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn verify_dir_is_read_only_and_spots_damage() {
        let dir = tmp("verify");
        {
            let mut s = Store::open(cfg(&dir, "verify")).unwrap();
            for i in 0..8u32 {
                s.put(Keyspace::BOUNDS, &i.to_le_bytes(), b"x").unwrap();
            }
            s.sync().unwrap();
        }
        let clean = Store::verify_dir(&dir).unwrap();
        assert!(clean.ok);
        assert_eq!(clean.records, 8);
        // Corrupt, verify (must not repair), then check the file is
        // untouched and open() still fixes it.
        let seg = dir.join(segment::segment_file_name(0));
        let mut bytes = fs::read(&seg).unwrap();
        let tail = bytes.len() - 3;
        bytes[tail] ^= 0xFF;
        fs::write(&seg, &bytes).unwrap();
        let damaged = Store::verify_dir(&dir).unwrap();
        assert!(!damaged.ok);
        assert_eq!(fs::read(&seg).unwrap(), bytes, "verify must not mutate");
        let s = Store::open(cfg(&dir, "verify")).unwrap();
        assert!(!s.recovery().clean());
        assert_eq!(s.len(), 7);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn stat_accounts_keyspaces() {
        let dir = tmp("stat");
        let mut s = Store::open(cfg(&dir, "stat")).unwrap();
        s.put(Keyspace::BOUNDS, b"a", b"1").unwrap();
        s.put(Keyspace::CC, b"b", b"2").unwrap();
        s.put(Keyspace::CC, b"c", b"3").unwrap();
        let stat = s.stat();
        assert_eq!(stat.live_records, 3);
        assert_eq!(
            stat.per_keyspace,
            vec![("bounds".to_string(), 1), ("cc".to_string(), 2)]
        );
        assert!(stat.live_bytes > 0);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn oversized_key_and_value_rejected() {
        let dir = tmp("caps");
        let mut s = Store::open(cfg(&dir, "caps")).unwrap();
        let big_key = vec![0u8; record::MAX_KEY_BYTES + 1];
        assert!(matches!(
            s.put(Keyspace::CC, &big_key, b"v"),
            Err(StoreError::Invalid(_))
        ));
        let big_val = vec![0u8; record::MAX_VALUE_BYTES + 1];
        assert!(matches!(
            s.put(Keyspace::CC, b"k", &big_val),
            Err(StoreError::Invalid(_))
        ));
        fs::remove_dir_all(&dir).unwrap();
    }
}
