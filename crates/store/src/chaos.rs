//! The disk persona of the PR-5 fault scheduler.
//!
//! [`crate::segment`] and [`crate::Store`] promise that recovery yields
//! exactly a prefix of committed records no matter how a crash mangles
//! the tail. [`DiskFaultPlan`] makes that promise testable the same way
//! `ccmx_net::fault::FaultPlan` does for the wire: a **seeded,
//! deterministic** schedule of disk faults — torn tails, arbitrary
//! truncations, single-bit flips anywhere in a file — applied directly
//! to segment files between a writer's death and the next open.
//!
//! Each strike consumes exactly three generator draws (kind, target
//! segment, position), so the schedule is a pure function of
//! `(seed, strike index)` regardless of directory contents: soaks are
//! replayable from their seed alone. The generator is splitmix64, the
//! same mixer the lab's other seeded schedules use, so no `rand`
//! dependency enters the store's build graph.

use std::fs;
use std::path::Path;

use crate::segment::{parse_segment_file_name, segment_file_name, SEGMENT_HEADER_BYTES};
use crate::StoreError;

/// splitmix64: the canonical 64-bit mixer (Steele–Lea–Flood).
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// What a strike did to the directory.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DiskFaultKind {
    /// A few bytes sheared off the end of the last segment — the
    /// signature of a write torn by process death.
    TornTail,
    /// The last segment truncated to an arbitrary prefix (still at
    /// least its header) — a lost page-cache range.
    TruncatedTail,
    /// One bit flipped somewhere in one segment file, header included —
    /// media corruption.
    BitFlip,
}

impl std::fmt::Display for DiskFaultKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            DiskFaultKind::TornTail => "torn-tail",
            DiskFaultKind::TruncatedTail => "truncated-tail",
            DiskFaultKind::BitFlip => "bit-flip",
        };
        f.write_str(s)
    }
}

/// One applied fault, for soak logs and assertions.
#[derive(Clone, Copy, Debug)]
pub struct DiskFault {
    /// Which fault fired.
    pub kind: DiskFaultKind,
    /// Segment id it hit.
    pub segment: u64,
    /// For truncations: the new file length. For bit flips: the byte
    /// offset whose bit was flipped.
    pub offset: u64,
}

/// A seeded, deterministic schedule of disk faults.
pub struct DiskFaultPlan {
    state: u64,
    strikes: u64,
}

impl DiskFaultPlan {
    /// Build the schedule for a seed.
    pub fn new(seed: u64) -> DiskFaultPlan {
        DiskFaultPlan {
            state: seed,
            strikes: 0,
        }
    }

    /// Strikes applied so far.
    pub fn strikes(&self) -> u64 {
        self.strikes
    }

    /// Apply the next scheduled fault to the store directory. Returns
    /// `None` (still consuming the strike's three draws, to keep the
    /// schedule index-stable) when the directory holds no segment
    /// large enough to damage.
    pub fn strike(&mut self, dir: &Path) -> Result<Option<DiskFault>, StoreError> {
        let kind_draw = splitmix64(&mut self.state);
        let seg_draw = splitmix64(&mut self.state);
        let pos_draw = splitmix64(&mut self.state);
        self.strikes += 1;

        let mut ids: Vec<u64> = fs::read_dir(dir)?
            .filter_map(|e| e.ok())
            .filter_map(|e| parse_segment_file_name(&e.file_name().to_string_lossy()))
            .collect();
        ids.sort_unstable();
        let Some(&last) = ids.last() else {
            return Ok(None);
        };

        let kind = match kind_draw % 3 {
            0 => DiskFaultKind::TornTail,
            1 => DiskFaultKind::TruncatedTail,
            _ => DiskFaultKind::BitFlip,
        };
        let fault = match kind {
            DiskFaultKind::TornTail => {
                let path = dir.join(segment_file_name(last));
                let len = fs::metadata(&path)?.len();
                if len <= SEGMENT_HEADER_BYTES as u64 {
                    return Ok(None);
                }
                let max_shear = (len - SEGMENT_HEADER_BYTES as u64).min(32);
                let shear = 1 + pos_draw % max_shear;
                let new_len = len - shear;
                let f = fs::OpenOptions::new().write(true).open(&path)?;
                f.set_len(new_len)?;
                DiskFault {
                    kind,
                    segment: last,
                    offset: new_len,
                }
            }
            DiskFaultKind::TruncatedTail => {
                let path = dir.join(segment_file_name(last));
                let len = fs::metadata(&path)?.len();
                if len <= SEGMENT_HEADER_BYTES as u64 {
                    return Ok(None);
                }
                let span = len - SEGMENT_HEADER_BYTES as u64;
                let new_len = SEGMENT_HEADER_BYTES as u64 + pos_draw % span;
                let f = fs::OpenOptions::new().write(true).open(&path)?;
                f.set_len(new_len)?;
                DiskFault {
                    kind,
                    segment: last,
                    offset: new_len,
                }
            }
            DiskFaultKind::BitFlip => {
                let target = ids[(seg_draw % ids.len() as u64) as usize];
                let path = dir.join(segment_file_name(target));
                let mut bytes = fs::read(&path)?;
                if bytes.is_empty() {
                    return Ok(None);
                }
                let at = (pos_draw % bytes.len() as u64) as usize;
                let bit = (pos_draw >> 32) % 8;
                bytes[at] ^= 1 << bit;
                fs::write(&path, &bytes)?;
                DiskFault {
                    kind,
                    segment: target,
                    offset: at as u64,
                }
            }
        };
        Ok(Some(fault))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::Keyspace;
    use crate::store::{Store, StoreConfig};
    use std::collections::BTreeMap;
    use std::path::PathBuf;

    fn tmp(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("ccmx-store-chaos-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    /// The core soak: write a known history, strike, reopen, and check
    /// the survivors are an exact prefix of commit order with intact
    /// values. Runs many seeds; each is fully deterministic.
    #[test]
    fn strikes_never_corrupt_answers() {
        for seed in 0..40u64 {
            let dir = tmp(&format!("soak-{seed}"));
            let committed: BTreeMap<u32, Vec<u8>> = {
                let mut s = Store::open(StoreConfig::new(&dir).label("chaos-soak").roll_bytes(512))
                    .unwrap();
                let mut m = BTreeMap::new();
                for i in 0..60u32 {
                    let v = format!("value-{seed}-{i}").into_bytes();
                    s.put(Keyspace::CC, &i.to_le_bytes(), &v).unwrap();
                    m.insert(i, v);
                }
                s.sync().unwrap();
                m
            };
            let mut plan = DiskFaultPlan::new(seed);
            for _ in 0..3 {
                plan.strike(&dir).unwrap();
            }
            let s =
                Store::open(StoreConfig::new(&dir).label("chaos-soak").roll_bytes(512)).unwrap();
            // Survivors form an exact prefix of insertion order...
            let mut keys = Vec::new();
            s.for_each(Keyspace::CC, |k, v| {
                let key = u32::from_le_bytes([k[0], k[1], k[2], k[3]]);
                // ...and every surviving value is byte-identical.
                assert_eq!(v, committed[&key], "seed {seed}: corrupted answer");
                keys.push(key);
            });
            assert_eq!(
                keys,
                (0..keys.len() as u32).collect::<Vec<_>>(),
                "seed {seed}: recovered set is not a prefix"
            );
            // And the repaired store reopens clean.
            drop(s);
            let s =
                Store::open(StoreConfig::new(&dir).label("chaos-soak").roll_bytes(512)).unwrap();
            assert!(s.recovery().clean(), "seed {seed}: repair did not settle");
            fs::remove_dir_all(&dir).unwrap();
        }
    }

    #[test]
    fn schedule_is_deterministic_in_seed() {
        let a = tmp("det-a");
        let b = tmp("det-b");
        for dir in [&a, &b] {
            let mut s = Store::open(StoreConfig::new(dir).label("chaos-det")).unwrap();
            for i in 0..20u32 {
                s.put(Keyspace::RUN, &i.to_le_bytes(), &[i as u8; 16])
                    .unwrap();
            }
            s.sync().unwrap();
        }
        let mut pa = DiskFaultPlan::new(99);
        let mut pb = DiskFaultPlan::new(99);
        for _ in 0..4 {
            let fa = pa.strike(&a).unwrap();
            let fb = pb.strike(&b).unwrap();
            match (fa, fb) {
                (Some(x), Some(y)) => {
                    assert_eq!(x.kind, y.kind);
                    assert_eq!(x.segment, y.segment);
                    assert_eq!(x.offset, y.offset);
                }
                (None, None) => {}
                other => panic!("schedules diverged: {other:?}"),
            }
        }
        assert_eq!(
            fs::read_dir(&a).unwrap().count(),
            fs::read_dir(&b).unwrap().count()
        );
        fs::remove_dir_all(&a).unwrap();
        fs::remove_dir_all(&b).unwrap();
    }
}
