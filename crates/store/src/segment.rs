//! Segment files: the append-only unit of the log.
//!
//! A segment is a file named `seg-<id>.ccmxseg` (id zero-padded to 12
//! decimal digits so lexicographic order is numeric order) holding a
//! 36-byte checksummed header followed by zero or more record frames
//! ([`crate::record`]) laid end to end:
//!
//! ```text
//! offset  size  field
//! 0       8     segment magic b"CCMXSTR1"
//! 8       4     segment format version (u32 LE, currently 1)
//! 12      8     segment id (u64 LE) — must match the filename
//! 20      8     base seqno (u64 LE): seqno of the first record the
//!               writer intended for this segment (informational; the
//!               record frames carry their own seqnos)
//! 28      8     checksum: FNV-1a 64 over bytes [0, 28) (u64 LE)
//! ```
//!
//! Segments are never modified in place except for one operation:
//! recovery may *truncate* the last segment to cut off a torn tail.

use std::fs::{File, OpenOptions};
use std::io::{Read, Write};
use std::path::{Path, PathBuf};

use crate::record::{self, Decoded, Record};
use crate::{fnv64, StoreError};

/// Segment header magic.
pub const SEGMENT_MAGIC: [u8; 8] = *b"CCMXSTR1";

/// Segment format version this build reads and writes.
pub const SEGMENT_VERSION: u32 = 1;

/// Total segment header length including its checksum, bytes.
pub const SEGMENT_HEADER_BYTES: usize = 36;

/// File extension for segment files.
pub const SEGMENT_EXT: &str = "ccmxseg";

/// Build the canonical filename for a segment id.
pub fn segment_file_name(id: u64) -> String {
    format!("seg-{id:012}.{SEGMENT_EXT}")
}

/// Parse a segment id out of a canonical filename; `None` for foreign
/// files (the store ignores anything it did not name).
pub fn parse_segment_file_name(name: &str) -> Option<u64> {
    let rest = name.strip_prefix("seg-")?;
    let digits = rest.strip_suffix(&format!(".{SEGMENT_EXT}"))?;
    if digits.len() != 12 || !digits.bytes().all(|b| b.is_ascii_digit()) {
        return None;
    }
    digits.parse().ok()
}

/// Encode the 36-byte segment header.
pub fn encode_header(id: u64, base_seqno: u64) -> [u8; SEGMENT_HEADER_BYTES] {
    let mut out = [0u8; SEGMENT_HEADER_BYTES];
    out[0..8].copy_from_slice(&SEGMENT_MAGIC);
    out[8..12].copy_from_slice(&SEGMENT_VERSION.to_le_bytes());
    out[12..20].copy_from_slice(&id.to_le_bytes());
    out[20..28].copy_from_slice(&base_seqno.to_le_bytes());
    let sum = fnv64(&out[..28]);
    out[28..36].copy_from_slice(&sum.to_le_bytes());
    out
}

/// Validate a segment header against the id implied by its filename.
pub fn decode_header(buf: &[u8], expect_id: u64) -> Result<u64, StoreError> {
    if buf.len() < SEGMENT_HEADER_BYTES {
        return Err(StoreError::Corrupt(format!(
            "segment {} shorter than its {SEGMENT_HEADER_BYTES}-byte header",
            expect_id
        )));
    }
    if buf[0..8] != SEGMENT_MAGIC {
        return Err(StoreError::Corrupt(format!(
            "segment {expect_id}: bad magic {:02x?}",
            &buf[0..8]
        )));
    }
    let version = u32::from_le_bytes([buf[8], buf[9], buf[10], buf[11]]);
    if version > SEGMENT_VERSION {
        return Err(StoreError::Unsupported(format!(
            "segment {expect_id}: format version {version} is newer than this build (max {SEGMENT_VERSION})"
        )));
    }
    let mut sum = [0u8; 8];
    sum.copy_from_slice(&buf[28..36]);
    let stored = u64::from_le_bytes(sum);
    let computed = fnv64(&buf[..28]);
    if stored != computed {
        return Err(StoreError::Corrupt(format!(
            "segment {expect_id}: header checksum mismatch (stored {stored:#018x}, computed {computed:#018x})"
        )));
    }
    let mut idb = [0u8; 8];
    idb.copy_from_slice(&buf[12..20]);
    let id = u64::from_le_bytes(idb);
    if id != expect_id {
        return Err(StoreError::Corrupt(format!(
            "segment header claims id {id} but filename says {expect_id}"
        )));
    }
    let mut base = [0u8; 8];
    base.copy_from_slice(&buf[20..28]);
    Ok(u64::from_le_bytes(base))
}

/// Append-side handle on one open segment.
pub struct SegmentWriter {
    file: File,
    path: PathBuf,
    id: u64,
    /// Bytes written so far, header included.
    len: u64,
}

impl SegmentWriter {
    /// Create a fresh segment file (fails if it already exists — ids
    /// are never reused) and write its header.
    pub fn create(dir: &Path, id: u64, base_seqno: u64) -> Result<SegmentWriter, StoreError> {
        let path = dir.join(segment_file_name(id));
        let mut file = OpenOptions::new()
            .write(true)
            .create_new(true)
            .open(&path)?;
        let header = encode_header(id, base_seqno);
        file.write_all(&header)?;
        Ok(SegmentWriter {
            file,
            path,
            id,
            len: SEGMENT_HEADER_BYTES as u64,
        })
    }

    /// Reopen an existing segment for appending at `len` (recovery has
    /// already validated — and possibly truncated — the file).
    pub fn reopen(dir: &Path, id: u64, len: u64) -> Result<SegmentWriter, StoreError> {
        let path = dir.join(segment_file_name(id));
        let file = OpenOptions::new().append(true).open(&path)?;
        Ok(SegmentWriter {
            file,
            path,
            id,
            len,
        })
    }

    /// Append one encoded record frame; returns the frame's offset
    /// within the segment.
    pub fn append(&mut self, frame: &[u8]) -> Result<u64, StoreError> {
        let at = self.len;
        self.file.write_all(frame)?;
        self.len += frame.len() as u64;
        Ok(at)
    }

    /// Flush to the OS. Data now survives a process SIGKILL (the page
    /// cache outlives the process); call [`SegmentWriter::fsync`] too
    /// if it must survive power loss.
    pub fn sync(&mut self) -> Result<(), StoreError> {
        self.file.flush()?;
        Ok(())
    }

    /// fsync the file — durability against power loss, at real cost.
    pub fn fsync(&mut self) -> Result<(), StoreError> {
        self.file.sync_data()?;
        Ok(())
    }

    /// Segment id.
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Current length in bytes, header included.
    pub fn len(&self) -> u64 {
        self.len
    }

    /// True when the segment holds no record frames yet.
    pub fn is_empty(&self) -> bool {
        self.len <= SEGMENT_HEADER_BYTES as u64
    }

    /// Path of the underlying file.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

/// One record located inside a segment, as reported by the scanner.
pub struct LocatedRecord {
    /// The decoded record.
    pub record: Record,
    /// Byte offset of the frame within the segment file.
    pub offset: u64,
    /// Encoded frame length on disk (at its on-disk schema).
    pub frame_len: u64,
}

/// How a segment scan ended.
pub enum ScanEnd {
    /// Every byte after the header parsed as whole, valid frames.
    Clean,
    /// The file ends mid-frame at this offset — a torn write. If this
    /// is the last segment, recovery truncates the file here.
    Torn {
        /// Offset of the first byte of the incomplete frame.
        offset: u64,
    },
    /// A frame at this offset failed validation (bad magic, checksum
    /// mismatch, impossible length). Nothing after it can be trusted.
    Corrupt {
        /// Offset of the first invalid byte.
        offset: u64,
        /// The typed decode error.
        error: StoreError,
    },
}

/// Result of scanning one whole segment file.
pub struct SegmentScan {
    /// Records up to the first problem, in file order.
    pub records: Vec<LocatedRecord>,
    /// How the scan ended.
    pub end: ScanEnd,
    /// How many records were read via the legacy v1 header.
    pub migrated_v1: u64,
    /// Total file length in bytes.
    pub file_len: u64,
}

/// Read and scan a whole segment file. `next_seqno` seeds the synthetic
/// seqnos handed to legacy v1 frames; each v1 frame consumes one.
///
/// Header-level problems (missing, corrupt, or future-versioned header)
/// are hard errors — there is no prefix to salvage. Frame-level
/// problems end the scan with a typed [`ScanEnd`] instead, because the
/// frames *before* the problem are still good.
pub fn scan_segment(dir: &Path, id: u64, mut next_seqno: u64) -> Result<SegmentScan, StoreError> {
    let path = dir.join(segment_file_name(id));
    let mut file = File::open(&path)?;
    let mut buf = Vec::new();
    file.read_to_end(&mut buf)?;
    decode_header(&buf, id)?;
    let mut records = Vec::new();
    let mut migrated_v1 = 0u64;
    let mut at = SEGMENT_HEADER_BYTES;
    let end = loop {
        if at == buf.len() {
            break ScanEnd::Clean;
        }
        match record::decode(&buf[at..], next_seqno) {
            Ok(Decoded::Frame(rec, len)) => {
                if rec.schema == record::SCHEMA_V1 {
                    migrated_v1 += 1;
                    next_seqno += 1;
                } else {
                    next_seqno = next_seqno.max(rec.seqno + 1);
                }
                records.push(LocatedRecord {
                    record: rec,
                    offset: at as u64,
                    frame_len: len as u64,
                });
                at += len;
            }
            Ok(Decoded::Torn) => break ScanEnd::Torn { offset: at as u64 },
            Err(error) => {
                break ScanEnd::Corrupt {
                    offset: at as u64,
                    error,
                }
            }
        }
    };
    Ok(SegmentScan {
        records,
        end,
        migrated_v1,
        file_len: buf.len() as u64,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::{encode, Keyspace, Record, SCHEMA_V2};

    fn tmpdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("ccmx-store-seg-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn rec(seqno: u64, key: &[u8], value: &[u8]) -> Record {
        Record {
            schema: SCHEMA_V2,
            keyspace: Keyspace::BOUNDS,
            seqno,
            tombstone: false,
            key: key.to_vec(),
            value: value.to_vec(),
        }
    }

    #[test]
    fn file_name_round_trip() {
        assert_eq!(segment_file_name(7), "seg-000000000007.ccmxseg");
        assert_eq!(parse_segment_file_name("seg-000000000007.ccmxseg"), Some(7));
        assert_eq!(parse_segment_file_name("seg-7.ccmxseg"), None);
        assert_eq!(parse_segment_file_name("seg-000000000007.tmp"), None);
        assert_eq!(parse_segment_file_name("other.ccmxseg"), None);
    }

    #[test]
    fn write_then_scan_round_trips() {
        let dir = tmpdir("roundtrip");
        let mut w = SegmentWriter::create(&dir, 0, 0).unwrap();
        for i in 0..10u64 {
            let r = rec(i, format!("k{i}").as_bytes(), format!("v{i}").as_bytes());
            w.append(&encode(&r)).unwrap();
        }
        w.sync().unwrap();
        let scan = scan_segment(&dir, 0, 0).unwrap();
        assert!(matches!(scan.end, ScanEnd::Clean));
        assert_eq!(scan.records.len(), 10);
        for (i, lr) in scan.records.iter().enumerate() {
            assert_eq!(lr.record.seqno, i as u64);
            assert_eq!(lr.record.key, format!("k{i}").as_bytes());
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_tail_reported_at_frame_boundary() {
        let dir = tmpdir("torn");
        let mut w = SegmentWriter::create(&dir, 0, 0).unwrap();
        let mut boundary = 0;
        for i in 0..3u64 {
            let r = rec(i, b"key", b"value");
            boundary = w.append(&encode(&r)).unwrap() + encode(&r).len() as u64;
        }
        // append half a frame
        let half = encode(&rec(3, b"key", b"value"));
        w.append(&half[..half.len() / 2]).unwrap();
        w.sync().unwrap();
        let scan = scan_segment(&dir, 0, 0).unwrap();
        assert_eq!(scan.records.len(), 3);
        match scan.end {
            ScanEnd::Torn { offset } => assert_eq!(offset, boundary),
            _ => panic!("expected torn end"),
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn header_checksum_flip_is_hard_error() {
        let dir = tmpdir("hdrflip");
        let mut w = SegmentWriter::create(&dir, 0, 0).unwrap();
        w.append(&encode(&rec(0, b"k", b"v"))).unwrap();
        w.sync().unwrap();
        let path = dir.join(segment_file_name(0));
        let mut bytes = std::fs::read(&path).unwrap();
        bytes[14] ^= 0x40; // flip a bit inside the header's id field
        std::fs::write(&path, &bytes).unwrap();
        assert!(scan_segment(&dir, 0, 0).is_err());
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
