//! # ccmx-store — the persistent certified-result tier
//!
//! Everything the lab certifies — Theorem 1.1 bound packages, CRT-
//! certified singularity verdicts, exact `CC(f)` search results,
//! idempotent protocol-run replays, truth-matrix enumeration cursors —
//! costs real communication to establish, in both of the lab's meters
//! (protocol bits and Hong–Kung words moved). This crate makes those
//! results survive a process death so restarts go **warm** instead of
//! re-paying that communication.
//!
//! The design is a classic log-structured store, specified byte-for-
//! byte in `docs/STORAGE.md` at the repository root:
//!
//! * **append-only segment files** ([`segment`]) with a checksummed
//!   header, rolled at a size threshold and never rewritten in place;
//! * **checksummed record frames** ([`record`]) reusing the FNV-64
//!   framing discipline of the wire codec: every frame carries its own
//!   FNV-1a 64 checksum over header + key + value, so corruption is
//!   localized to a frame boundary and can never be misread as data;
//! * **an in-memory index** ([`Store`]) rebuilt by a full segment scan
//!   on open — the files are the truth, the index is a cache;
//! * **schema-versioned record headers with forward migrations**: the
//!   scanner still reads the legacy v1 header and upgrades such records
//!   to the current layout on compaction ([`record::SCHEMA_V1`] →
//!   [`record::SCHEMA_V2`]);
//! * **tombstones and compaction**: deletes append a tombstone frame;
//!   [`Store::compact`] rewrites live records into fresh segments and
//!   drops dead bytes;
//! * **crash recovery as a state machine**: a torn tail on the last
//!   segment is truncated to the last whole frame, corruption earlier
//!   in the log quarantines everything after it — recovery always
//!   yields exactly a *prefix of committed records*, never an invented
//!   or stale entry (see the recovery section of `docs/STORAGE.md`);
//! * **durable cursors** ([`cursor`]) so interrupted truth-matrix
//!   enumerations resume from where they stopped instead of restarting.
//!
//! Chaos is a first-class input: [`chaos::DiskFaultPlan`] is the disk
//! persona of the PR-5 fault scheduler — a seeded, deterministic
//! schedule of torn writes, truncated tails and bit flips applied to
//! segment files, which the recovery path must shrug off with zero
//! corrupted answers.
//!
//! Everything observable lands in the shared [`ccmx_obs`] registry as
//! the `ccmx_store_*` metric families (segment count, live/dead bytes,
//! compaction runs, recovery outcomes), labelled by store name.

#![deny(missing_docs)]

pub mod chaos;
pub mod cursor;
pub mod record;
pub mod segment;
mod store;

pub use cursor::DurableCursor;
pub use record::{Keyspace, Record, SCHEMA_V1, SCHEMA_V2};
pub use store::{
    CompactReport, RecoveryIssue, RecoveryKind, RecoveryReport, Store, StoreConfig, StoreStat,
    VerifyReport, DEFAULT_ROLL_BYTES, QUARANTINE_SUFFIX,
};

use std::fmt;

/// Errors surfaced by the store.
#[derive(Debug)]
pub enum StoreError {
    /// An operating-system I/O failure (open, read, write, fsync).
    Io(std::io::Error),
    /// On-disk bytes that fail validation: bad magic, checksum
    /// mismatch, impossible lengths, or a frame cut short.
    Corrupt(String),
    /// A record or segment written by a *newer* format than this build
    /// understands. Forward migrations only: downgrades are refused.
    Unsupported(String),
    /// A caller error: oversized key/value, or a store opened on a
    /// path that is not a directory.
    Invalid(String),
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io(e) => write!(f, "store I/O error: {e}"),
            StoreError::Corrupt(m) => write!(f, "store corruption: {m}"),
            StoreError::Unsupported(m) => write!(f, "unsupported store format: {m}"),
            StoreError::Invalid(m) => write!(f, "invalid store operation: {m}"),
        }
    }
}

impl std::error::Error for StoreError {}

impl From<std::io::Error> for StoreError {
    fn from(e: std::io::Error) -> Self {
        StoreError::Io(e)
    }
}

/// FNV-1a 64 — the same checksum discipline as the wire codec's chaos
/// envelopes and the retry layer's idempotency keys. One algorithm for
/// every integrity check in the workspace keeps `docs/STORAGE.md`
/// implementable from scratch.
pub fn fnv64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv64_matches_known_vectors() {
        // Standard FNV-1a 64 test vectors.
        assert_eq!(fnv64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv64(b"foobar"), 0x85944171f73967e8);
    }
}
