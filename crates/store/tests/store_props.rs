//! Property suite for crash recovery: whatever a crash does to the
//! tail of the log — cutting it at an arbitrary byte, or flipping any
//! single bit — reopening the store recovers **exactly a prefix of the
//! committed records**: never an invented entry, never a corrupted
//! value, never a resurrected overwrite, and every repair surfaced as
//! a typed issue exactly once.

use std::fs;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

use ccmx_store::record::MAX_VALUE_BYTES;
use ccmx_store::segment::{segment_file_name, SEGMENT_HEADER_BYTES};
use ccmx_store::{Keyspace, Store, StoreConfig};
use proptest::prelude::*;

/// One committed operation in a generated history.
#[derive(Clone, Debug)]
enum Op {
    Put { key: u8, value: Vec<u8> },
    Delete { key: u8 },
}

fn op_strategy() -> BoxedStrategy<Op> {
    prop_oneof![
        (any::<u8>(), prop::collection::vec(any::<u8>(), 0..48))
            .prop_map(|(key, value)| Op::Put { key, value }),
        (any::<u8>(), prop::collection::vec(any::<u8>(), 0..48))
            .prop_map(|(key, value)| Op::Put { key, value }),
        any::<u8>().prop_map(|key| Op::Delete { key }),
    ]
    .boxed()
}

fn unique_dir(tag: &str) -> PathBuf {
    static N: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join(format!(
        "ccmx-store-props-{tag}-{}-{}",
        std::process::id(),
        N.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = fs::remove_dir_all(&dir);
    dir
}

/// Replay `ops[..n]` through a plain in-memory map: the ground truth
/// for what a store holding exactly the first `n` committed records
/// must answer.
fn model_after(ops: &[Op], n: usize) -> std::collections::BTreeMap<u8, Vec<u8>> {
    let mut m = std::collections::BTreeMap::new();
    for op in &ops[..n] {
        match op {
            Op::Put { key, value } => {
                m.insert(*key, value.clone());
            }
            Op::Delete { key } => {
                m.remove(key);
            }
        }
    }
    m
}

/// Write a history into a fresh single-segment store and return its
/// directory. Single segment (huge roll threshold) so "the last
/// segment" is the whole log and any damage offset is reachable.
fn build_store(tag: &str, ops: &[Op]) -> PathBuf {
    let dir = unique_dir(tag);
    let mut s = Store::open(
        StoreConfig::new(&dir)
            .label("props")
            .roll_bytes(MAX_VALUE_BYTES as u64 * 4),
    )
    .unwrap();
    for op in ops {
        match op {
            Op::Put { key, value } => s.put(Keyspace::MEMO, &[*key], value).unwrap(),
            Op::Delete { key } => {
                s.delete(Keyspace::MEMO, &[*key]).unwrap();
            }
        }
    }
    s.sync().unwrap();
    dir
}

/// Check the recovered store equals the model after some prefix of the
/// history, and return that prefix length.
fn assert_is_prefix(dir: &PathBuf, ops: &[Op]) -> usize {
    let s = Store::open(
        StoreConfig::new(dir)
            .label("props")
            .roll_bytes(MAX_VALUE_BYTES as u64 * 4),
    )
    .unwrap();
    let recovered = s.recovery().recovered_records as usize;
    assert!(
        recovered <= ops.len(),
        "recovered {recovered} records from a {}-op history",
        ops.len()
    );
    let model = model_after(ops, recovered);
    let mut got = std::collections::BTreeMap::new();
    s.for_each(Keyspace::MEMO, |k, v| {
        got.insert(k[0], v.to_vec());
    });
    assert_eq!(got, model, "store state is not the {recovered}-op prefix");
    recovered
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Cut the log at every possible byte: recovery must yield the
    /// exact prefix of ops whose frames survived whole, and the issue
    /// (if the cut landed mid-frame) is surfaced exactly once.
    #[test]
    fn arbitrary_truncation_recovers_a_prefix(
        ops in prop::collection::vec(op_strategy(), 1..24),
        cut_frac in 0.0f64..1.0,
    ) {
        let dir = build_store("trunc", &ops);
        let seg = dir.join(segment_file_name(0));
        let len = fs::metadata(&seg).unwrap().len();
        let span = len - SEGMENT_HEADER_BYTES as u64;
        let cut = SEGMENT_HEADER_BYTES as u64 + (cut_frac * span as f64) as u64;
        let f = fs::OpenOptions::new().write(true).open(&seg).unwrap();
        f.set_len(cut.min(len)).unwrap();
        drop(f);

        let n = assert_is_prefix(&dir, &ops);
        // A second open of the repaired log is clean and identical.
        let s = Store::open(StoreConfig::new(&dir).label("props")).unwrap();
        prop_assert!(s.recovery().clean());
        prop_assert_eq!(s.recovery().recovered_records as usize, n);
        drop(s);
        fs::remove_dir_all(&dir).unwrap();
    }

    /// Flip any single bit anywhere in the record area: recovery must
    /// still yield an exact prefix (possibly shorter — everything from
    /// the damaged frame on is discarded), with the corruption
    /// surfaced as exactly one typed issue.
    #[test]
    fn single_bit_corruption_recovers_a_prefix(
        ops in prop::collection::vec(op_strategy(), 1..24),
        pos_frac in 0.0f64..1.0,
        bit in 0u8..8,
    ) {
        let dir = build_store("flip", &ops);
        let seg = dir.join(segment_file_name(0));
        let mut bytes = fs::read(&seg).unwrap();
        let span = bytes.len() - SEGMENT_HEADER_BYTES;
        prop_assume!(span > 0);
        let at = SEGMENT_HEADER_BYTES + ((pos_frac * span as f64) as usize).min(span - 1);
        bytes[at] ^= 1 << bit;
        fs::write(&seg, &bytes).unwrap();

        {
            let s = Store::open(StoreConfig::new(&dir).label("props")).unwrap();
            prop_assert!(
                s.recovery().issues.len() <= 1,
                "one flip must surface at most one issue, got {:?}",
                s.recovery().issues
            );
            prop_assert!(
                !s.recovery().clean(),
                "a flipped bit in the record area must be detected"
            );
        }
        assert_is_prefix(&dir, &ops);
        fs::remove_dir_all(&dir).unwrap();
    }

    /// Damage is repaired exactly once: open → repaired log; open
    /// again → clean, same state, no drift.
    #[test]
    fn repair_is_idempotent(
        ops in prop::collection::vec(op_strategy(), 1..16),
        cut_back in 1u64..64,
    ) {
        let dir = build_store("idem", &ops);
        let seg = dir.join(segment_file_name(0));
        let len = fs::metadata(&seg).unwrap().len();
        let f = fs::OpenOptions::new().write(true).open(&seg).unwrap();
        f.set_len(len.saturating_sub(cut_back).max(SEGMENT_HEADER_BYTES as u64)).unwrap();
        drop(f);
        let n1 = assert_is_prefix(&dir, &ops);
        let n2 = assert_is_prefix(&dir, &ops);
        prop_assert_eq!(n1, n2);
        let s = Store::open(StoreConfig::new(&dir).label("props")).unwrap();
        prop_assert!(s.recovery().clean());
        drop(s);
        fs::remove_dir_all(&dir).unwrap();
    }
}
