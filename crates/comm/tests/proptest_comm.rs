//! Property tests for the communication layer: partition/share algebra,
//! encoding geometry, protocol invariants, and truth-matrix/bound laws.

use ccmx_comm::bits::BitString;
use ccmx_comm::bounds::{
    fooling_set_greedy, fooling_set_greedy_scalar, lower_bounds, rank_gf2, verify_fooling_set,
};
use ccmx_comm::functions::{BooleanFunction, Equality, Singularity};
use ccmx_comm::partition::{Owner, Partition};
use ccmx_comm::protocols::{BisectEquality, FingerprintEquality, ModPrimeSingularity, SendAll};
use ccmx_comm::truth::TruthMatrix;
use ccmx_comm::{run_sequential, MatrixEncoding};
use proptest::prelude::*;

fn arb_bits(len: usize) -> impl Strategy<Value = BitString> {
    prop::collection::vec(any::<bool>(), len).prop_map(BitString::from_bits)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn encoding_geometry_is_a_bijection(dim in 1usize..6, k in 1u32..8, pos_seed in any::<u64>()) {
        let enc = MatrixEncoding::new(dim, k);
        let pos = (pos_seed as usize) % enc.total_bits();
        let (r, c, b) = enc.coordinates(pos);
        prop_assert_eq!(enc.position(r, c, b), pos);
        prop_assert!(r < dim && c < dim && b < k);
    }

    #[test]
    fn column_and_row_positions_partition_the_input(dim in 1usize..5, k in 1u32..5) {
        let enc = MatrixEncoding::new(dim, k);
        let mut seen = vec![false; enc.total_bits()];
        for col in 0..dim {
            for p in enc.column_positions(col) {
                prop_assert!(!seen[p], "column positions overlap");
                seen[p] = true;
            }
        }
        prop_assert!(seen.iter().all(|&s| s));
        let mut seen2 = vec![false; enc.total_bits()];
        for row in 0..dim {
            for p in enc.row_positions(row) {
                prop_assert!(!seen2[p]);
                seen2[p] = true;
            }
        }
        prop_assert!(seen2.iter().all(|&s| s));
    }

    #[test]
    fn random_even_partitions_are_even_and_split_losslessly(
        len in 1usize..120,
        seed in any::<u64>(),
    ) {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let p = Partition::random_even(len, &mut rng);
        prop_assert!(p.is_even());
        prop_assert_eq!(p.count_a() + p.count_b(), len);
        prop_assert_eq!(p.positions_of(Owner::A).len(), p.count_a());
        prop_assert_eq!(p.swapped().swapped(), p);
    }

    #[test]
    fn permuted_partition_preserves_counts(seed in any::<u64>()) {
        use rand::seq::SliceRandom;
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let enc = MatrixEncoding::new(4, 2);
        let p = Partition::random_even(enc.total_bits(), &mut rng);
        let mut rp: Vec<usize> = (0..4).collect();
        let mut cp: Vec<usize> = (0..4).collect();
        rp.shuffle(&mut rng);
        cp.shuffle(&mut rng);
        let q = p.permuted(&enc, &rp, &cp);
        prop_assert_eq!(q.count_a(), p.count_a());
        prop_assert_eq!(q.count_b(), p.count_b());
    }

    #[test]
    fn send_all_is_correct_for_any_input_and_partition(
        input in arb_bits(18),
        seed in any::<u64>(),
    ) {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let f = Equality { half_bits: 9 };
        let p = Partition::random_even(18, &mut rng);
        let proto = SendAll::new(Equality { half_bits: 9 });
        let run = run_sequential(&proto, &p, &input, seed);
        prop_assert_eq!(run.output, f.eval(&input));
        prop_assert_eq!(run.cost_bits(), p.count_a());
    }

    #[test]
    fn mod_prime_protocol_never_misses_singular(seed in any::<u64>()) {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let dim = 4;
        let k = 3;
        let enc = MatrixEncoding::new(dim, k);
        let mut m = ccmx_linalg::Matrix::from_fn(dim, dim, |_, _| {
            ccmx_bigint::Integer::from(rng.gen_range(0i64..8))
        });
        for r in 0..dim {
            m[(r, 2)] = m[(r, 0)].clone();
        }
        let proto = ModPrimeSingularity::new(dim, k, 10);
        let p = Partition::pi_zero(&enc);
        let run = run_sequential(&proto, &p, &enc.encode(&m), seed);
        prop_assert!(run.output, "singular matrix declared nonsingular");
    }

    #[test]
    fn fingerprint_and_bisect_agree_on_equality(
        x in any::<u32>(),
        y in any::<u32>(),
        seed in any::<u64>(),
    ) {
        let half = 32;
        let p = ccmx_comm::protocols::fingerprint::fixed_partition(half);
        let mut input = BitString::from_u64(x as u64, half);
        input.extend(&BitString::from_u64(y as u64, half));
        let fp = FingerprintEquality::new(half, 40);
        let bi = BisectEquality::new(half, 40);
        let r1 = run_sequential(&fp, &p, &input, seed);
        let r2 = run_sequential(&bi, &p, &input, seed.wrapping_add(1));
        // At security 40 both are overwhelmingly correct; they must agree
        // with the truth (hence with each other).
        prop_assert_eq!(r1.output, x == y);
        prop_assert_eq!(r2.output, x == y);
    }

    #[test]
    fn truth_matrix_entries_match_function(xy_seed in any::<u64>()) {
        let f = Singularity::new(2, 2);
        let enc = MatrixEncoding::new(2, 2);
        let p = Partition::pi_zero(&enc);
        let t = TruthMatrix::enumerate(&f, &p, 1);
        let a_pos = p.positions_of(Owner::A);
        let b_pos = p.positions_of(Owner::B);
        let x = (xy_seed as usize) % t.rows();
        let y = ((xy_seed >> 32) as usize) % t.cols();
        let mut input = BitString::zeros(enc.total_bits());
        for (i, &pos) in a_pos.iter().enumerate() {
            input.set(pos, (x >> i) & 1 == 1);
        }
        for (i, &pos) in b_pos.iter().enumerate() {
            input.set(pos, (y >> i) & 1 == 1);
        }
        prop_assert_eq!(t.get(x, y), f.eval(&input));
    }

    #[test]
    fn rank_bounds_sandwich(rows in 1usize..24, cols in 1usize..24, seed in any::<u64>()) {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let t = TruthMatrix::from_fn(rows, cols, |_, _| rng.gen());
        let r2 = rank_gf2(&t);
        prop_assert!(r2 <= rows.min(cols));
        let fs = fooling_set_greedy(&t);
        prop_assert!(verify_fooling_set(&t, &fs));
        prop_assert!(fs.len() <= (t.count_ones() as usize).max(1));
        let rep = lower_bounds(&t);
        prop_assert!(rep.comm_lower_bound_bits <= (rows.min(cols) as f64).log2() + 1.0);
        prop_assert_eq!(rep.distinct_rows, t.distinct_rows());
        prop_assert_eq!(rep.distinct_cols, t.distinct_cols());
    }

    #[test]
    fn fooling_bitset_matches_scalar_oracle(rows in 1usize..28, cols in 1usize..28, seed in any::<u64>(), density in 0u32..4) {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        // Sweep densities: sparse matrices grow large fooling sets
        // (many member words), dense ones stress the conflict check.
        let t = TruthMatrix::from_fn(rows, cols, |_, _| rng.gen::<u32>() % 4 > density);
        let fast = fooling_set_greedy(&t);
        let slow = fooling_set_greedy_scalar(&t);
        prop_assert_eq!(fast, slow);
    }

    #[test]
    fn dedup_preserves_certificates(rows in 1usize..12, cols in 1usize..12, seed in any::<u64>()) {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let core = TruthMatrix::from_fn(rows, cols, |_, _| rng.gen());
        // Duplicate every row and column; the deduped core must carry
        // identical rank certificates and the recorded distinct dims.
        let fat = TruthMatrix::from_fn(rows * 2, cols * 2, |x, y| core.get(x / 2, y / 2));
        let d = fat.dedup();
        prop_assert_eq!((d.rows(), d.cols()), (fat.distinct_rows(), fat.distinct_cols()));
        prop_assert_eq!(rank_gf2(&d), rank_gf2(&core));
        let (a, b) = (lower_bounds(&fat), lower_bounds(&core));
        prop_assert_eq!(a.rank_gf2, b.rank_gf2);
        prop_assert_eq!(a.rank_big_prime, b.rank_big_prime);
    }

    #[test]
    fn transcript_cost_additivity(msgs in prop::collection::vec(arb_bits(5), 0..10)) {
        use ccmx_comm::protocol::{Transcript, Turn};
        let mut t = Transcript::new();
        let mut total = 0;
        for (i, m) in msgs.iter().enumerate() {
            let from = if i % 2 == 0 { Turn::A } else { Turn::B };
            t.push(from, m.clone());
            total += m.len();
        }
        prop_assert_eq!(t.total_bits(), total);
        prop_assert_eq!(t.bits_from(Turn::A).len() + t.bits_from(Turn::B).len(), total);
        prop_assert_eq!(t.rounds(), msgs.len());
    }
}
