//! # ccmx-comm
//!
//! Yao's two-party communication-complexity model (Yao 1979, 1981), built
//! as a real executable system for the Chu–Schnitger reproduction.
//!
//! The model: an input of `N` bits is split between two agents by an
//! (even) *partition* `π`. The agents exchange binary messages according
//! to a fixed protocol until the answer is known; the cost of a protocol
//! is the worst-case number of bits exchanged, and the communication
//! complexity of a function is the min over protocols and partitions.
//!
//! This crate makes every object of that definition concrete:
//!
//! * [`bits`] — bit strings and shares,
//! * [`encoding`] — the paper's input encoding (`2n × 2n` matrices of
//!   `k`-bit entries) and bit-position geometry,
//! * [`partition`] — partitions of bit positions, including the paper's
//!   `π₀` (first `n` columns vs last `n` columns), random even partitions,
//!   and partition transforms,
//! * [`functions`] — the Boolean functions under study (singularity,
//!   equality, `A·B = C`, linear-system solvability),
//! * [`protocol`] — the protocol abstraction, metered transcripts, and two
//!   interchangeable runners (in-process sequential, and two OS threads
//!   over crossbeam channels),
//! * [`protocols`] — concrete protocols: the deterministic send-everything
//!   upper bound (`Θ(k n²)`), the randomized mod-a-random-prime
//!   protocols for singularity and solvability realizing Leighton's
//!   `O(n² max(log n, log k))` bound, fingerprint and multi-round bisect
//!   equality,
//! * [`randomized`] — error estimation and amplification for randomized
//!   protocols,
//! * [`truth`] — exhaustive truth matrices for small instances,
//! * [`bounds`] — certified lower bounds on truth matrices: fooling sets,
//!   GF(2) rank, rectangle counting (Yao's `log₂ d(f) − 2`),
//! * [`yao`] — Yao's fundamental lemma executable: transcript classes of
//!   a deterministic protocol verified to be monochromatic rectangles,
//! * [`meter`] — worst-case metering harnesses.

#![deny(missing_docs)]
#![warn(clippy::all)]

pub mod bits;
pub mod bounds;
pub mod encoding;
pub mod functions;
pub mod meter;
pub mod partition;
pub mod protocol;
pub mod protocols;
pub mod randomized;
pub mod truth;
pub mod yao;

pub use bits::BitString;
pub use encoding::MatrixEncoding;
pub use partition::Partition;
pub use protocol::{
    mem_channel_pair, run_agent, run_sequential, run_threaded, ChannelError, MemChannel, Message,
    MsgChannel, RunResult, Step, Transcript, Turn, TwoPartyProtocol, WireMsg,
};
