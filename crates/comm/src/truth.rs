//! Exhaustive truth matrices.
//!
//! Fix a function `f` and a partition `π`. Index rows by assignments to
//! A's bits and columns by assignments to B's bits; entry `(x, y)` is
//! `f(x ⋈ y)`. This is the object Yao's lower-bound method reasons about
//! (Section 2 of the paper): communication complexity under `π` is at
//! least `log₂ d(f) − 2`, where `d(f)` is the least number of disjoint
//! monochromatic rectangles partitioning this matrix.
//!
//! Rows are stored as packed `u64` bitsets; enumeration is parallelized
//! over rows with the crossbeam pool from `ccmx-linalg`.

use ccmx_linalg::parallel::par_map;

use crate::bits::BitString;
use crate::functions::BooleanFunction;
use crate::partition::{Owner, Partition};

/// Points evaluated through an [`crate::functions::IncrementalOracle`]
/// cursor (one Gray-code flip each) vs. points evaluated by a fresh
/// full `eval` call, process-wide. The bench smoke gate reads these to
/// prove enumeration actually stayed on the incremental path.
fn incremental_counter() -> &'static ccmx_obs::Counter {
    ccmx_obs::counter!("ccmx_enum_incremental_points_total")
}
fn fresh_counter() -> &'static ccmx_obs::Counter {
    ccmx_obs::counter!("ccmx_enum_fresh_points_total")
}

/// `(incremental_points, fresh_points)` evaluated so far in this process.
///
/// Thin view over the shared [`ccmx_obs`] registry series
/// `ccmx_enum_incremental_points_total` and
/// `ccmx_enum_fresh_points_total`.
pub fn enumeration_stats() -> (u64, u64) {
    (incremental_counter().get(), fresh_counter().get())
}

/// Hard cap on either side's bit count: `2^20` rows/columns.
pub const MAX_SIDE_BITS: usize = 20;
/// Hard cap on the total enumeration work (rows × cols).
pub const MAX_TOTAL_BITS: usize = 26;

/// A fully enumerated truth matrix for `(f, π)`.
#[derive(Clone, PartialEq, Eq)]
pub struct TruthMatrix {
    rows: usize,
    cols: usize,
    /// Each row packed LSB-first into `u64` words.
    data: Vec<Vec<u64>>,
}

impl TruthMatrix {
    /// Enumerate the truth matrix of `f` under `partition`, using
    /// `threads` workers. Panics if the instance exceeds the caps.
    ///
    /// ```
    /// use ccmx_comm::functions::Equality;
    /// use ccmx_comm::protocols::fingerprint::fixed_partition;
    /// use ccmx_comm::truth::TruthMatrix;
    /// let t = TruthMatrix::enumerate(&Equality { half_bits: 3 }, &fixed_partition(3), 1);
    /// assert_eq!((t.rows(), t.cols()), (8, 8));
    /// assert_eq!(t.count_ones(), 8); // the identity matrix
    /// ```
    pub fn enumerate(f: &dyn BooleanFunction, partition: &Partition, threads: usize) -> Self {
        assert_eq!(
            f.num_bits(),
            partition.len(),
            "function/partition size mismatch"
        );
        let a_pos = partition.positions_of(Owner::A);
        let b_pos = partition.positions_of(Owner::B);
        let (na, nb) = (a_pos.len(), b_pos.len());
        assert!(
            na <= MAX_SIDE_BITS && nb <= MAX_SIDE_BITS,
            "side too large to enumerate"
        );
        assert!(
            na + nb <= MAX_TOTAL_BITS,
            "truth matrix too large to enumerate"
        );
        let rows = 1usize << na;
        let cols = 1usize << nb;
        let words = cols.div_ceil(64);
        let inc = f.as_incremental();
        let data = par_map(rows, threads, |x| {
            let mut input = BitString::zeros(partition.len());
            for (i, &pos) in a_pos.iter().enumerate() {
                input.set(pos, (x >> i) & 1 == 1);
            }
            let mut row = vec![0u64; words];
            // Walk B's assignments in Gray-code order: step i flips only
            // bit trailing_zeros(i), so each column costs one `set`
            // instead of nb. The visited code `gray = i ^ (i >> 1)`
            // covers all of 0..cols exactly once; `input` starts at
            // gray = 0 (all B bits zero) which BitString::zeros provides.
            let mut gray = 0usize;
            if let Some(oracle) = inc {
                // Incremental path: each Gray step is a single-bit flip
                // the oracle's cursor absorbs (O(dim²) per prime for
                // singularity vs. a fresh O(dim³) elimination). `input`
                // is still maintained so debug builds can cross-check
                // every cursor verdict against a fresh evaluation.
                let mut cursor = oracle.begin(&input);
                for i in 0..cols {
                    let v = if i == 0 {
                        cursor.value()
                    } else {
                        let j = i.trailing_zeros() as usize;
                        gray ^= 1 << j;
                        input.set(b_pos[j], (gray >> j) & 1 == 1);
                        cursor.flip(b_pos[j])
                    };
                    debug_assert_eq!(
                        v,
                        f.eval(&input),
                        "incremental cursor diverged from eval at row {x}, col {gray}"
                    );
                    if v {
                        row[gray / 64] |= 1u64 << (gray % 64);
                    }
                }
                incremental_counter().add(cols as u64);
            } else {
                for i in 0..cols {
                    if i > 0 {
                        let j = i.trailing_zeros() as usize;
                        gray ^= 1 << j;
                        input.set(b_pos[j], (gray >> j) & 1 == 1);
                    }
                    if f.eval(&input) {
                        row[gray / 64] |= 1u64 << (gray % 64);
                    }
                }
                fresh_counter().add(cols as u64);
            }
            row
        });
        TruthMatrix { rows, cols, data }
    }

    /// Build directly from a closure (tests and synthetic matrices).
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> bool) -> Self {
        let words = cols.div_ceil(64);
        let data = (0..rows)
            .map(|x| {
                let mut row = vec![0u64; words];
                for y in 0..cols {
                    if f(x, y) {
                        row[y / 64] |= 1u64 << (y % 64);
                    }
                }
                row
            })
            .collect();
        TruthMatrix { rows, cols, data }
    }

    /// Number of rows (`2^{|A|}`).
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns (`2^{|B|}`).
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Entry `(x, y)`.
    #[inline]
    pub fn get(&self, x: usize, y: usize) -> bool {
        (self.data[x][y / 64] >> (y % 64)) & 1 == 1
    }

    /// The packed words of row `x`.
    pub fn row_words(&self, x: usize) -> &[u64] {
        &self.data[x]
    }

    /// Total number of `1` entries.
    pub fn count_ones(&self) -> u64 {
        self.data
            .iter()
            .flatten()
            .map(|w| w.count_ones() as u64)
            .sum()
    }

    /// Number of `1`s in row `x`.
    pub fn row_ones(&self, x: usize) -> u64 {
        self.data[x].iter().map(|w| w.count_ones() as u64).sum()
    }

    /// Number of distinct rows.
    pub fn distinct_rows(&self) -> usize {
        let mut set: std::collections::HashSet<&[u64]> = std::collections::HashSet::new();
        for r in &self.data {
            set.insert(r.as_slice());
        }
        set.len()
    }

    /// Number of distinct columns.
    pub fn distinct_cols(&self) -> usize {
        let mut set = std::collections::HashSet::new();
        for y in 0..self.cols {
            let col: Vec<u64> = {
                let words = self.rows.div_ceil(64);
                let mut col = vec![0u64; words];
                for (x, slot) in (0..self.rows).map(|x| (x, x)) {
                    if self.get(x, y) {
                        col[slot / 64] |= 1u64 << (slot % 64);
                    }
                }
                col
            };
            set.insert(col);
        }
        set.len()
    }

    /// The transpose.
    pub fn transpose(&self) -> TruthMatrix {
        TruthMatrix::from_fn(self.cols, self.rows, |x, y| self.get(y, x))
    }

    /// Remove duplicate rows, then duplicate columns (first occurrence
    /// kept, relative order preserved). A CC-preserving reduction: a
    /// protocol never needs to distinguish two inputs with identical
    /// truth-matrix lines, and rank / fooling-set certificates are
    /// invariant under it — so downstream bound computations shrink to
    /// `distinct_rows × distinct_cols` for free. (Removing duplicate
    /// rows cannot merge two distinct columns — they still differ at
    /// the kept representative — so the result is exactly
    /// [`TruthMatrix::distinct_rows`] × [`TruthMatrix::distinct_cols`].)
    pub fn dedup(&self) -> TruthMatrix {
        let mut seen_rows = std::collections::HashSet::new();
        let keep_rows: Vec<usize> = (0..self.rows)
            .filter(|&x| seen_rows.insert(self.data[x].clone()))
            .collect();
        let mut seen_cols = std::collections::HashSet::new();
        let keep_cols: Vec<usize> = (0..self.cols)
            .filter(|&y| {
                let col: Vec<bool> = keep_rows.iter().map(|&x| self.get(x, y)).collect();
                seen_cols.insert(col)
            })
            .collect();
        TruthMatrix::from_fn(keep_rows.len(), keep_cols.len(), |i, j| {
            self.get(keep_rows[i], keep_cols[j])
        })
    }
}

impl std::fmt::Debug for TruthMatrix {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "TruthMatrix {}x{} [", self.rows, self.cols)?;
        let show_r = self.rows.min(16);
        let show_c = self.cols.min(64);
        for x in 0..show_r {
            write!(f, "  ")?;
            for y in 0..show_c {
                write!(f, "{}", if self.get(x, y) { '1' } else { '0' })?;
            }
            writeln!(f, "{}", if self.cols > show_c { "…" } else { "" })?;
        }
        if self.rows > show_r {
            writeln!(f, "  …")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encoding::MatrixEncoding;
    use crate::functions::{Equality, Singularity};

    #[test]
    fn equality_truth_matrix_is_identity() {
        let f = Equality { half_bits: 4 };
        let p = crate::protocols::fingerprint::fixed_partition(4);
        let t = TruthMatrix::enumerate(&f, &p, 2);
        assert_eq!((t.rows(), t.cols()), (16, 16));
        for x in 0..16 {
            for y in 0..16 {
                assert_eq!(t.get(x, y), x == y);
            }
        }
        assert_eq!(t.count_ones(), 16);
        assert_eq!(t.distinct_rows(), 16);
        assert_eq!(t.distinct_cols(), 16);
    }

    #[test]
    fn dedup_collapses_to_distinct_lines() {
        // 6x6 built from a 3x3 core with every row and column doubled.
        let core = [
            [true, false, true],
            [false, true, true],
            [true, true, false],
        ];
        let t = TruthMatrix::from_fn(6, 6, |x, y| core[x / 2][y / 2]);
        let d = t.dedup();
        assert_eq!((d.rows(), d.cols()), (t.distinct_rows(), t.distinct_cols()));
        assert_eq!((d.rows(), d.cols()), (3, 3));
        for (x, row) in core.iter().enumerate() {
            for (y, &want) in row.iter().enumerate() {
                assert_eq!(d.get(x, y), want);
            }
        }
        // Already-distinct matrices are untouched; constants collapse to 1x1.
        let id = TruthMatrix::from_fn(4, 4, |x, y| x == y);
        assert_eq!((id.dedup().rows(), id.dedup().cols()), (4, 4));
        let ones = TruthMatrix::from_fn(5, 7, |_, _| true);
        assert_eq!((ones.dedup().rows(), ones.dedup().cols()), (1, 1));
    }

    #[test]
    fn singularity_2x2_k1_truth_matrix() {
        // 2x2 matrices of 1-bit entries under π₀: A holds column 1
        // (entries m11, m21), B column 2. M singular iff det = 0.
        let f = Singularity::new(2, 1);
        let enc = MatrixEncoding::new(2, 1);
        let p = Partition::pi_zero(&enc);
        let t = TruthMatrix::enumerate(&f, &p, 1);
        assert_eq!((t.rows(), t.cols()), (4, 4));
        // Exhaustive cross-check against the evaluator.
        let a_pos = p.positions_of(Owner::A);
        let b_pos = p.positions_of(Owner::B);
        for x in 0..4usize {
            for y in 0..4usize {
                let mut input = BitString::zeros(4);
                for (i, &pos) in a_pos.iter().enumerate() {
                    input.set(pos, (x >> i) & 1 == 1);
                }
                for (i, &pos) in b_pos.iter().enumerate() {
                    input.set(pos, (y >> i) & 1 == 1);
                }
                assert_eq!(t.get(x, y), f.eval(&input));
            }
        }
        // The all-zero matrix is singular: entry (0,0) is 1.
        assert!(t.get(0, 0));
    }

    #[test]
    fn parallel_enumeration_matches_serial() {
        let f = Singularity::new(2, 2);
        let enc = MatrixEncoding::new(2, 2);
        let p = Partition::pi_zero(&enc);
        let serial = TruthMatrix::enumerate(&f, &p, 1);
        let parallel = TruthMatrix::enumerate(&f, &p, 4);
        assert_eq!(serial, parallel);
    }

    #[test]
    fn gray_code_enumeration_equals_naive() {
        // Bit-identical to the straightforward set-every-bit loop, on an
        // asymmetric partition (na ≠ nb) so row/col roles can't be mixed
        // up, for both an order-sensitive function and singularity.
        let f = Singularity::new(2, 2);
        let enc = MatrixEncoding::new(2, 2);
        let p = Partition::pi_zero(&enc);
        let t = TruthMatrix::enumerate(&f, &p, 1);
        let a_pos = p.positions_of(Owner::A);
        let b_pos = p.positions_of(Owner::B);
        let naive = TruthMatrix::from_fn(1 << a_pos.len(), 1 << b_pos.len(), |x, y| {
            let mut input = BitString::zeros(p.len());
            for (i, &pos) in a_pos.iter().enumerate() {
                input.set(pos, (x >> i) & 1 == 1);
            }
            for (i, &pos) in b_pos.iter().enumerate() {
                input.set(pos, (y >> i) & 1 == 1);
            }
            f.eval(&input)
        });
        assert_eq!(t, naive);
    }

    #[test]
    fn transpose_roundtrip() {
        let t = TruthMatrix::from_fn(5, 9, |x, y| (x * y) % 3 == 1);
        let tt = t.transpose().transpose();
        for x in 0..5 {
            for y in 0..9 {
                assert_eq!(t.get(x, y), tt.get(x, y));
            }
        }
    }

    #[test]
    fn enumeration_uses_incremental_path_for_singularity() {
        let (inc_before, _) = enumeration_stats();
        let f = Singularity::new(2, 2);
        let enc = MatrixEncoding::new(2, 2);
        let p = Partition::pi_zero(&enc);
        let t = TruthMatrix::enumerate(&f, &p, 1);
        let (inc_after, _) = enumeration_stats();
        // `>=`: counters are process-wide and other tests enumerate too.
        assert!(
            inc_after - inc_before >= (t.rows() * t.cols()) as u64,
            "every singularity point should go through the cursor"
        );
    }

    #[test]
    #[should_panic(expected = "too large")]
    fn refuses_oversized_instances() {
        let f = Equality { half_bits: 40 };
        let p = crate::protocols::fingerprint::fixed_partition(40);
        let _ = TruthMatrix::enumerate(&f, &p, 1);
    }
}
