//! The protocol abstraction and its two runners.
//!
//! A protocol is a deterministic (or private-coin randomized) rule that,
//! given an agent's share of the input and the transcript so far, decides
//! the agent's next action: send a message or announce the output. The
//! *cost* of a run is the total number of message bits exchanged —
//! exactly the quantity `Comm(f, π, P)` of the paper's Section 1.
//!
//! Two runners execute the same protocol:
//!
//! * [`run_sequential`] — in-process alternation (fast, used by the
//!   metering sweeps),
//! * [`run_threaded`] — two OS threads exchanging messages over
//!   `crossbeam` channels (the "real system"; tests assert it produces
//!   bit-identical transcripts).

use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::bits::{BitString, Share};
use crate::partition::Partition;

/// Which agent is acting.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Turn {
    /// The first agent.
    A,
    /// The second agent.
    B,
}

impl Turn {
    /// The other agent.
    pub fn other(self) -> Turn {
        match self {
            Turn::A => Turn::B,
            Turn::B => Turn::A,
        }
    }
}

/// One message of a run.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Message {
    /// The sender.
    pub from: Turn,
    /// The payload bits.
    pub bits: BitString,
}

/// The sequence of messages exchanged so far. Both agents see the whole
/// transcript (that is the model: messages are the *only* shared state).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Transcript {
    messages: Vec<Message>,
}

impl Transcript {
    /// Empty transcript.
    pub fn new() -> Self {
        Transcript {
            messages: Vec::new(),
        }
    }

    /// Reassemble a transcript from decoded messages (the wire-transport
    /// layer's deserialization path).
    pub fn from_messages(messages: Vec<Message>) -> Self {
        Transcript { messages }
    }

    /// Append a message.
    pub fn push(&mut self, from: Turn, bits: BitString) {
        self.messages.push(Message { from, bits });
    }

    /// The messages in order.
    pub fn messages(&self) -> &[Message] {
        &self.messages
    }

    /// Total bits exchanged — the communication cost of the run.
    pub fn total_bits(&self) -> usize {
        self.messages.iter().map(|m| m.bits.len()).sum()
    }

    /// Number of messages (rounds).
    pub fn rounds(&self) -> usize {
        self.messages.len()
    }

    /// Messages sent by `who`, concatenated in order.
    pub fn bits_from(&self, who: Turn) -> BitString {
        let mut out = BitString::zeros(0);
        for m in &self.messages {
            if m.from == who {
                out.extend(&m.bits);
            }
        }
        out
    }
}

/// An agent's next action.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Step {
    /// Send these bits to the other agent (turn passes).
    Send(BitString),
    /// Announce the Boolean output; the run ends.
    Output(bool),
}

/// Everything an agent may legally look at when deciding its next step:
/// its own share, the public partition, and the transcript. (The runner
/// enforces this information barrier by construction — the full input is
/// never handed to a protocol.)
pub struct AgentCtx<'a> {
    /// Which agent is acting.
    pub turn: Turn,
    /// The acting agent's share of the input.
    pub share: &'a Share,
    /// The (public) partition.
    pub partition: &'a Partition,
    /// The (public) transcript so far.
    pub transcript: &'a Transcript,
}

/// A two-party protocol. `step` must be a function of the context and the
/// agent's private randomness only.
pub trait TwoPartyProtocol: Sync {
    /// Which agent speaks first.
    fn first_turn(&self) -> Turn {
        Turn::A
    }

    /// Decide the acting agent's next action.
    fn step(&self, ctx: &AgentCtx<'_>, rng: &mut StdRng) -> Step;

    /// Human-readable protocol name for reports.
    fn name(&self) -> &'static str;
}

/// The result of executing a protocol on one input.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RunResult {
    /// The announced output.
    pub output: bool,
    /// Who announced it.
    pub announced_by: Turn,
    /// The full transcript.
    pub transcript: Transcript,
}

impl RunResult {
    /// Communication cost in bits.
    pub fn cost_bits(&self) -> usize {
        self.transcript.total_bits()
    }
}

fn rng_for(seed: u64, turn: Turn) -> StdRng {
    // Derive per-agent private coins from the master seed.
    let tweak = match turn {
        Turn::A => 0x9E37_79B9_7F4A_7C15u64,
        Turn::B => 0xD1B5_4A32_D192_ED03u64,
    };
    StdRng::seed_from_u64(seed ^ tweak)
}

/// Maximum number of rounds before the runner declares the protocol
/// divergent (a correctness backstop, exercised by the failure-injection
/// tests).
pub fn round_limit(input_bits: usize) -> usize {
    2 * input_bits + 16
}

/// Execute a protocol in-process.
///
/// Panics if the protocol exceeds [`round_limit`] rounds — a protocol that
/// never outputs is a bug, not a long computation.
pub fn run_sequential(
    proto: &dyn TwoPartyProtocol,
    partition: &Partition,
    input: &BitString,
    seed: u64,
) -> RunResult {
    let _sp = ccmx_obs::span("protocol.run");
    let (share_a, share_b) = partition.split(input);
    let mut rng_a = rng_for(seed, Turn::A);
    let mut rng_b = rng_for(seed, Turn::B);
    let mut transcript = Transcript::new();
    let mut turn = proto.first_turn();
    let limit = round_limit(input.len());
    for _ in 0..limit {
        let (share, rng) = match turn {
            Turn::A => (&share_a, &mut rng_a),
            Turn::B => (&share_b, &mut rng_b),
        };
        let ctx = AgentCtx {
            turn,
            share,
            partition,
            transcript: &transcript,
        };
        match proto.step(&ctx, rng) {
            Step::Send(bits) => {
                transcript.push(turn, bits);
                turn = turn.other();
            }
            Step::Output(value) => {
                return RunResult {
                    output: value,
                    announced_by: turn,
                    transcript,
                };
            }
        }
    }
    panic!(
        "protocol '{}' exceeded the round limit ({limit}) without producing an output",
        proto.name()
    );
}

/// One unit on the wire between two agents: either a protocol message or
/// the announced output. This is the *entire* vocabulary two separated
/// parties exchange — any transport that can carry `WireMsg` can host a
/// protocol run.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum WireMsg {
    /// A protocol message (its bits are metered).
    Bits(BitString),
    /// The announced output; the run ends.
    Final(bool),
}

/// Error from a [`MsgChannel`]: the peer vanished, timed out, or sent
/// garbage. Carries a human-readable description.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ChannelError(pub String);

impl std::fmt::Display for ChannelError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "channel error: {}", self.0)
    }
}

impl std::error::Error for ChannelError {}

/// The transport seam: a duplex channel carrying [`WireMsg`] between the
/// two agents. `ccmx-comm` ships the in-memory implementation
/// ([`MemChannel`]); `ccmx-net` adds framed TCP sockets. [`run_agent`]
/// is written against this trait only, so every transport executes the
/// *identical* agent state machine.
pub trait MsgChannel {
    /// Deliver a message to the peer.
    fn send_msg(&mut self, msg: WireMsg) -> Result<(), ChannelError>;
    /// Block until the peer's next message arrives.
    fn recv_msg(&mut self) -> Result<WireMsg, ChannelError>;
}

/// In-memory transport: a pair of crossbeam channels. [`mem_channel_pair`]
/// builds the two connected endpoints.
pub struct MemChannel {
    tx: crossbeam::channel::Sender<WireMsg>,
    rx: crossbeam::channel::Receiver<WireMsg>,
}

/// Two connected in-memory endpoints (first for agent A, second for B).
pub fn mem_channel_pair() -> (MemChannel, MemChannel) {
    let (to_b, from_a) = crossbeam::channel::unbounded::<WireMsg>();
    let (to_a, from_b) = crossbeam::channel::unbounded::<WireMsg>();
    (
        MemChannel {
            tx: to_b,
            rx: from_b,
        },
        MemChannel {
            tx: to_a,
            rx: from_a,
        },
    )
}

impl MsgChannel for MemChannel {
    fn send_msg(&mut self, msg: WireMsg) -> Result<(), ChannelError> {
        self.tx
            .send(msg)
            .map_err(|_| ChannelError("peer hung up".into()))
    }

    fn recv_msg(&mut self) -> Result<WireMsg, ChannelError> {
        self.rx
            .recv()
            .map_err(|_| ChannelError("peer hung up".into()))
    }
}

/// Execute one agent's half of a protocol over an arbitrary transport.
///
/// The agent sees only its own share; everything else arrives through
/// `chan`. Returns the agent's independently assembled [`RunResult`]
/// (both sides of a correct run assemble identical transcripts — the
/// runners assert this). Transport failures surface as `Err`; a
/// protocol exceeding [`round_limit`] panics, exactly as in
/// [`run_sequential`].
pub fn run_agent(
    proto: &dyn TwoPartyProtocol,
    partition: &Partition,
    share: &Share,
    turn: Turn,
    seed: u64,
    limit: usize,
    chan: &mut dyn MsgChannel,
) -> Result<RunResult, ChannelError> {
    let mut rng = rng_for(seed, turn);
    let mut transcript = Transcript::new();
    let mut my_turn = proto.first_turn() == turn;
    for _ in 0..limit {
        if my_turn {
            let ctx = AgentCtx {
                turn,
                share,
                partition,
                transcript: &transcript,
            };
            match proto.step(&ctx, &mut rng) {
                Step::Send(bits) => {
                    transcript.push(turn, bits.clone());
                    chan.send_msg(WireMsg::Bits(bits))?;
                    my_turn = false;
                }
                Step::Output(value) => {
                    chan.send_msg(WireMsg::Final(value))?;
                    return Ok(RunResult {
                        output: value,
                        announced_by: turn,
                        transcript,
                    });
                }
            }
        } else {
            match chan.recv_msg()? {
                WireMsg::Bits(bits) => {
                    transcript.push(turn.other(), bits);
                    my_turn = true;
                }
                WireMsg::Final(value) => {
                    return Ok(RunResult {
                        output: value,
                        announced_by: turn.other(),
                        transcript,
                    });
                }
            }
        }
    }
    panic!(
        "protocol '{}' exceeded the round limit ({limit}) in transported run",
        proto.name()
    );
}

/// Execute a protocol as two OS threads over crossbeam channels.
///
/// Each thread holds only its own share; the only inter-thread state is
/// the channel pair. Produces the same [`RunResult`] as
/// [`run_sequential`] for any deterministic-given-coins protocol (the
/// per-agent RNG streams are identical across runners).
pub fn run_threaded(
    proto: &dyn TwoPartyProtocol,
    partition: &Partition,
    input: &BitString,
    seed: u64,
) -> RunResult {
    let (share_a, share_b) = partition.split(input);
    let limit = round_limit(input.len());
    let (mut chan_a, mut chan_b) = mem_channel_pair();

    let (res_a, res_b) = crossbeam::scope(|s| {
        let ha = s.spawn(|_| {
            run_agent(
                proto,
                partition,
                &share_a,
                Turn::A,
                seed,
                limit,
                &mut chan_a,
            )
            .expect("peer hung up")
        });
        let hb = s.spawn(|_| {
            run_agent(
                proto,
                partition,
                &share_b,
                Turn::B,
                seed,
                limit,
                &mut chan_b,
            )
            .expect("peer hung up")
        });
        (
            ha.join().expect("agent A panicked"),
            hb.join().expect("agent B panicked"),
        )
    })
    .expect("thread scope failed");

    assert_eq!(res_a.output, res_b.output, "agents disagree on the output");
    assert_eq!(
        res_a.transcript, res_b.transcript,
        "agents hold different transcripts"
    );
    RunResult {
        output: res_a.output,
        announced_by: res_a.announced_by,
        transcript: res_a.transcript,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::partition::Owner;

    /// A toy protocol: A sends its share verbatim, B outputs the XOR of
    /// the whole input.
    struct XorProtocol;

    impl TwoPartyProtocol for XorProtocol {
        fn step(&self, ctx: &AgentCtx<'_>, _rng: &mut StdRng) -> Step {
            match ctx.turn {
                Turn::A => Step::Send(ctx.share.to_bitstring()),
                Turn::B => {
                    let received = ctx.transcript.bits_from(Turn::A);
                    let ones =
                        received.count_ones() + ctx.share.values().iter().filter(|&&b| b).count();
                    Step::Output(ones % 2 == 1)
                }
            }
        }
        fn name(&self) -> &'static str {
            "xor-toy"
        }
    }

    /// A broken protocol that never outputs (failure injection).
    struct DivergentProtocol;

    impl TwoPartyProtocol for DivergentProtocol {
        fn step(&self, _ctx: &AgentCtx<'_>, _rng: &mut StdRng) -> Step {
            Step::Send(BitString::from_u64(1, 1))
        }
        fn name(&self) -> &'static str {
            "divergent"
        }
    }

    fn any_partition(len: usize) -> Partition {
        Partition::new(
            (0..len)
                .map(|i| if i % 2 == 0 { Owner::A } else { Owner::B })
                .collect(),
        )
    }

    #[test]
    fn xor_protocol_is_correct_on_all_inputs() {
        let len = 8;
        let p = any_partition(len);
        for v in 0..(1u64 << len) {
            let input = BitString::from_u64(v, len);
            let r = run_sequential(&XorProtocol, &p, &input, 0);
            assert_eq!(r.output, v.count_ones() % 2 == 1, "v = {v:b}");
            assert_eq!(r.cost_bits(), len / 2);
            assert_eq!(r.announced_by, Turn::B);
        }
    }

    #[test]
    fn threaded_matches_sequential() {
        let len = 10;
        let p = any_partition(len);
        for v in [0u64, 1, 513, 1023, 700] {
            let input = BitString::from_u64(v, len);
            let seq = run_sequential(&XorProtocol, &p, &input, 42);
            let thr = run_threaded(&XorProtocol, &p, &input, 42);
            assert_eq!(seq, thr);
        }
    }

    #[test]
    #[should_panic(expected = "round limit")]
    fn divergent_protocol_is_rejected() {
        let p = any_partition(4);
        let input = BitString::zeros(4);
        let _ = run_sequential(&DivergentProtocol, &p, &input, 0);
    }

    #[test]
    fn transcript_accounting() {
        let mut t = Transcript::new();
        t.push(Turn::A, BitString::from_u64(0b101, 3));
        t.push(Turn::B, BitString::from_u64(0b1, 2));
        t.push(Turn::A, BitString::from_u64(0, 1));
        assert_eq!(t.total_bits(), 6);
        assert_eq!(t.rounds(), 3);
        assert_eq!(t.bits_from(Turn::A).len(), 4);
        assert_eq!(t.bits_from(Turn::B).len(), 2);
    }

    #[test]
    fn turn_other_is_involution() {
        assert_eq!(Turn::A.other(), Turn::B);
        assert_eq!(Turn::B.other().other(), Turn::B);
    }
}
