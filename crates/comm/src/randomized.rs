//! Randomized-protocol analysis: empirical error estimation and error
//! amplification.
//!
//! The paper's probabilistic model accepts any protocol correct with
//! probability `> 1/2 + ε`. Two pieces make that executable:
//!
//! * [`estimate_error`] — a Monte-Carlo referee: run a protocol across
//!   independent coin seeds and inputs, report error rates *separately
//!   for yes- and no-instances* (exposing one-sidedness empirically).
//! * [`AmplifiedModPrime`] — sequential repetition of the mod-prime
//!   singularity protocol. Its error is one-sided (singular inputs are
//!   never misclassified), so the right vote is a conjunction: declare
//!   singular only if **every** round does. `t` rounds drive the error
//!   from `ε` to `ε^t` while multiplying cost by `t` — letting a *small*
//!   prime window (cheap rounds) match the reliability of one big round,
//!   a genuine trade-off surface over the paper's `O(n² max(log n, log
//!   k))` bound.

use rand::rngs::StdRng;

use crate::bits::BitString;
use crate::functions::BooleanFunction;
use crate::partition::Partition;
use crate::protocol::{run_sequential, AgentCtx, Step, Turn, TwoPartyProtocol};
use crate::protocols::ModPrimeSingularity;

/// Empirical error report, split by true answer.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ErrorEstimate {
    /// Runs on inputs with `f = true` (e.g. singular matrices).
    pub yes_runs: usize,
    /// ... of which misclassified.
    pub yes_errors: usize,
    /// Runs on inputs with `f = false`.
    pub no_runs: usize,
    /// ... of which misclassified.
    pub no_errors: usize,
}

impl ErrorEstimate {
    /// Overall empirical error rate.
    pub fn rate(&self) -> f64 {
        let total = self.yes_runs + self.no_runs;
        if total == 0 {
            0.0
        } else {
            (self.yes_errors + self.no_errors) as f64 / total as f64
        }
    }

    /// Is the observed behaviour one-sided (no yes-instance ever missed)?
    pub fn observed_one_sided(&self) -> bool {
        self.yes_errors == 0
    }
}

/// Run `proto` on every input with `seeds` independent coin seeds each,
/// refereeing against the exact evaluator.
pub fn estimate_error(
    proto: &dyn TwoPartyProtocol,
    partition: &Partition,
    f: &dyn BooleanFunction,
    inputs: &[BitString],
    seeds: u64,
) -> ErrorEstimate {
    let mut est = ErrorEstimate {
        yes_runs: 0,
        yes_errors: 0,
        no_runs: 0,
        no_errors: 0,
    };
    for (i, input) in inputs.iter().enumerate() {
        let truth = f.eval(input);
        for s in 0..seeds {
            let run = run_sequential(proto, partition, input, (i as u64) << 32 | s);
            if truth {
                est.yes_runs += 1;
                if !run.output {
                    est.yes_errors += 1;
                }
            } else {
                est.no_runs += 1;
                if run.output {
                    est.no_errors += 1;
                }
            }
        }
    }
    est
}

/// `t`-round sequential repetition of [`ModPrimeSingularity`] with the
/// conjunction vote.
///
/// Round `i`: A samples a fresh prime, sends `(p_i, residues)`; B
/// computes its verdict. For `i < t` B replies with the 1-bit verdict
/// (passing the turn back); after round `t`, B outputs the AND of all
/// verdicts. The protocol stays stateless: both agents recover the round
/// number and all past verdicts from the public transcript.
#[derive(Clone, Copy, Debug)]
pub struct AmplifiedModPrime {
    /// The single-round protocol.
    pub inner: ModPrimeSingularity,
    /// Number of repetitions (`>= 1`).
    pub rounds: usize,
}

impl AmplifiedModPrime {
    /// Build with `rounds >= 1`.
    pub fn new(inner: ModPrimeSingularity, rounds: usize) -> Self {
        assert!(rounds >= 1);
        AmplifiedModPrime { inner, rounds }
    }

    /// Exact cost: `t` A-messages plus `t − 1` verdict bits.
    pub fn predicted_cost(&self) -> usize {
        self.rounds * self.inner.predicted_cost() + (self.rounds - 1)
    }

    /// The amplified error bound `ε^t` (one-sided).
    pub fn error_bound(&self) -> f64 {
        self.inner.error_bound().powi(self.rounds as i32)
    }

    /// B's verdict for the A-message at transcript index `idx`.
    fn verdict_for(&self, ctx: &AgentCtx<'_>, idx: usize) -> bool {
        // Re-run the inner B-step against a truncated transcript view.
        let msg = &ctx.transcript.messages()[idx];
        debug_assert_eq!(msg.from, Turn::A);
        let mut sub = crate::protocol::Transcript::new();
        sub.push(Turn::A, msg.bits.clone());
        let sub_ctx = AgentCtx {
            turn: Turn::B,
            share: ctx.share,
            partition: ctx.partition,
            transcript: &sub,
        };
        // The inner protocol's B step is deterministic (no rng use);
        // a throwaway rng keeps the signature satisfied.
        let mut dummy = <StdRng as rand::SeedableRng>::seed_from_u64(0);
        match self.inner.step(&sub_ctx, &mut dummy) {
            Step::Output(v) => v,
            Step::Send(_) => unreachable!("inner B step must output"),
        }
    }
}

impl TwoPartyProtocol for AmplifiedModPrime {
    fn step(&self, ctx: &AgentCtx<'_>, rng: &mut StdRng) -> Step {
        let a_msgs: Vec<usize> = ctx
            .transcript
            .messages()
            .iter()
            .enumerate()
            .filter_map(|(i, m)| (m.from == Turn::A).then_some(i))
            .collect();
        match ctx.turn {
            Turn::A => {
                // Send the next independent round's message.
                debug_assert!(a_msgs.len() < self.rounds);
                let sub_ctx = AgentCtx {
                    turn: Turn::A,
                    share: ctx.share,
                    partition: ctx.partition,
                    transcript: &crate::protocol::Transcript::new(),
                };
                // rng advances across rounds → independent primes.
                self.inner.step(&sub_ctx, rng)
            }
            Turn::B => {
                let done = a_msgs.len();
                let verdict = self.verdict_for(ctx, *a_msgs.last().expect("A spoke"));
                if !verdict {
                    // A nonsingular witness is *certain* (one-sided):
                    // stop early, skipping the remaining rounds.
                    return Step::Output(false);
                }
                if done == self.rounds {
                    // All rounds said singular: conjunction vote.
                    Step::Output(true)
                } else {
                    // Acknowledge and pass the turn back (1 bit).
                    Step::Send(BitString::from_bits(vec![true]))
                }
            }
        }
    }

    fn name(&self) -> &'static str {
        "mod-random-prime-amplified"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encoding::MatrixEncoding;
    use crate::functions::Singularity;
    use ccmx_bigint::Integer;
    use ccmx_linalg::Matrix;
    use rand::{Rng, SeedableRng};

    fn singular_input(enc: &MatrixEncoding, seed: u64) -> BitString {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut m = Matrix::from_fn(enc.dim, enc.dim, |_, _| {
            Integer::from(rng.gen_range(0..(1i64 << enc.k)))
        });
        for r in 0..enc.dim {
            m[(r, enc.dim - 1)] = m[(r, 0)].clone();
        }
        enc.encode(&m)
    }

    fn random_input(enc: &MatrixEncoding, seed: u64) -> BitString {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut bits = BitString::zeros(enc.total_bits());
        for i in 0..enc.total_bits() {
            bits.set(i, rng.gen());
        }
        bits
    }

    #[test]
    fn amplified_is_correct_and_costed() {
        let inner = ModPrimeSingularity::new(4, 3, 15);
        let proto = AmplifiedModPrime::new(inner, 3);
        let enc = inner.enc;
        let p = Partition::pi_zero(&enc);
        let f = Singularity::new(4, 3);
        for s in 0..10u64 {
            let input = singular_input(&enc, s);
            let run = run_sequential(&proto, &p, &input, s);
            assert!(run.output, "amplified protocol missed a singular input");
            assert_eq!(run.cost_bits(), proto.predicted_cost());
            assert_eq!(run.transcript.rounds(), 2 * 3 - 1);
        }
        for s in 0..10u64 {
            let input = random_input(&enc, 1000 + s);
            let run = run_sequential(&proto, &p, &input, s);
            assert_eq!(run.output, f.eval(&input));
        }
    }

    #[test]
    fn amplification_reduces_error_bound() {
        let inner = ModPrimeSingularity::new(4, 2, 4); // deliberately weak
        let one = AmplifiedModPrime::new(inner, 1);
        let three = AmplifiedModPrime::new(inner, 3);
        assert!(three.error_bound() < one.error_bound());
        assert!((three.error_bound() - one.error_bound().powi(3)).abs() < 1e-12);
        assert!(three.predicted_cost() > one.predicted_cost());
    }

    #[test]
    fn estimate_error_separates_sides() {
        let inner = ModPrimeSingularity::new(4, 2, 12);
        let enc = inner.enc;
        let p = Partition::pi_zero(&enc);
        let f = Singularity::new(4, 2);
        let inputs: Vec<BitString> = (0..6)
            .map(|i| {
                if i % 2 == 0 {
                    singular_input(&enc, i)
                } else {
                    random_input(&enc, i)
                }
            })
            .collect();
        let est = estimate_error(&inner, &p, &f, &inputs, 10);
        assert!(
            est.observed_one_sided(),
            "mod-prime must never miss singular inputs"
        );
        assert!(
            est.rate() <= 0.1,
            "error rate {} far above analysis",
            est.rate()
        );
        assert_eq!(est.yes_runs + est.no_runs, 60);
        assert!(est.yes_runs >= 30, "singular inputs present");
    }

    #[test]
    fn early_exit_on_nonsingular_witness() {
        // If round 1 already finds det != 0 mod p, the protocol stops
        // without paying for the remaining rounds.
        let inner = ModPrimeSingularity::new(4, 3, 15);
        let proto = AmplifiedModPrime::new(inner, 4);
        let enc = inner.enc;
        let p = Partition::pi_zero(&enc);
        let input = {
            // Identity matrix: robustly nonsingular mod every prime.
            let m = Matrix::from_fn(4, 4, |i, j| Integer::from(if i == j { 1i64 } else { 0 }));
            enc.encode(&m)
        };
        let run = run_sequential(&proto, &p, &input, 5);
        assert!(!run.output);
        assert_eq!(
            run.cost_bits(),
            inner.predicted_cost(),
            "should stop after round 1"
        );
    }

    #[test]
    fn threaded_agrees_for_amplified() {
        let inner = ModPrimeSingularity::new(2, 2, 10);
        let proto = AmplifiedModPrime::new(inner, 3);
        let enc = inner.enc;
        let p = Partition::pi_zero(&enc);
        let input = random_input(&enc, 7);
        assert_eq!(
            run_sequential(&proto, &p, &input, 3),
            crate::protocol::run_threaded(&proto, &p, &input, 3)
        );
    }
}
