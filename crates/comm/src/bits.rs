//! Bit strings and agent shares.

use std::fmt;

/// A fixed-length string of bits, the raw input object of the model.
#[derive(Clone, PartialEq, Eq, Hash, Default)]
pub struct BitString {
    bits: Vec<bool>,
}

impl BitString {
    /// All-zero string of the given length.
    pub fn zeros(len: usize) -> Self {
        BitString {
            bits: vec![false; len],
        }
    }

    /// From a `Vec<bool>`.
    pub fn from_bits(bits: Vec<bool>) -> Self {
        BitString { bits }
    }

    /// The low `len` bits of `value`, LSB first.
    pub fn from_u64(value: u64, len: usize) -> Self {
        assert!(len <= 64);
        BitString {
            bits: (0..len).map(|i| (value >> i) & 1 == 1).collect(),
        }
    }

    /// Interpret as an integer, LSB first. Panics if longer than 64 bits.
    pub fn to_u64(&self) -> u64 {
        assert!(self.bits.len() <= 64, "BitString too long for u64");
        self.bits
            .iter()
            .enumerate()
            .fold(0u64, |acc, (i, &b)| acc | ((b as u64) << i))
    }

    /// Length in bits.
    pub fn len(&self) -> usize {
        self.bits.len()
    }

    /// Is this empty?
    pub fn is_empty(&self) -> bool {
        self.bits.is_empty()
    }

    /// Bit at position `i`.
    pub fn get(&self, i: usize) -> bool {
        self.bits[i]
    }

    /// Set bit `i`.
    pub fn set(&mut self, i: usize, v: bool) {
        self.bits[i] = v;
    }

    /// Borrow the underlying bits.
    pub fn as_slice(&self) -> &[bool] {
        &self.bits
    }

    /// Append a bit.
    pub fn push(&mut self, v: bool) {
        self.bits.push(v);
    }

    /// Concatenate another bit string.
    pub fn extend(&mut self, other: &BitString) {
        self.bits.extend_from_slice(&other.bits);
    }

    /// Number of ones.
    pub fn count_ones(&self) -> usize {
        self.bits.iter().filter(|&&b| b).count()
    }
}

impl fmt::Debug for BitString {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "BitString(")?;
        for &b in &self.bits {
            write!(f, "{}", if b { '1' } else { '0' })?;
        }
        write!(f, ")")
    }
}

/// An agent's share of the input: the (sorted) bit positions it owns and
/// their values. An agent sees *nothing else* of the input.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Share {
    positions: Vec<usize>,
    values: Vec<bool>,
}

impl Share {
    /// Build a share; `positions` must be strictly increasing and aligned
    /// with `values`.
    pub fn new(positions: Vec<usize>, values: Vec<bool>) -> Self {
        assert_eq!(
            positions.len(),
            values.len(),
            "share positions/values mismatch"
        );
        assert!(
            positions.windows(2).all(|w| w[0] < w[1]),
            "share positions must be strictly increasing"
        );
        Share { positions, values }
    }

    /// The owned bit positions (sorted).
    pub fn positions(&self) -> &[usize] {
        &self.positions
    }

    /// The values, aligned with [`Self::positions`].
    pub fn values(&self) -> &[bool] {
        &self.values
    }

    /// Number of owned bits.
    pub fn len(&self) -> usize {
        self.positions.len()
    }

    /// Is the share empty?
    pub fn is_empty(&self) -> bool {
        self.positions.is_empty()
    }

    /// Value of global bit position `pos`, if owned.
    pub fn get(&self, pos: usize) -> Option<bool> {
        self.positions
            .binary_search(&pos)
            .ok()
            .map(|i| self.values[i])
    }

    /// Does this share own position `pos`?
    pub fn owns(&self, pos: usize) -> bool {
        self.positions.binary_search(&pos).is_ok()
    }

    /// The values as a [`BitString`] in position order (the canonical
    /// serialization used by the send-everything protocol).
    pub fn to_bitstring(&self) -> BitString {
        BitString::from_bits(self.values.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn u64_roundtrip() {
        for v in [0u64, 1, 5, 0b1011, u32::MAX as u64] {
            let b = BitString::from_u64(v, 40);
            assert_eq!(b.to_u64(), v);
            assert_eq!(b.len(), 40);
        }
    }

    #[test]
    fn lsb_first_order() {
        let b = BitString::from_u64(0b110, 3);
        assert!(!b.get(0));
        assert!(b.get(1));
        assert!(b.get(2));
    }

    #[test]
    fn push_extend_count() {
        let mut b = BitString::zeros(2);
        b.push(true);
        b.extend(&BitString::from_u64(0b11, 2));
        assert_eq!(b.len(), 5);
        assert_eq!(b.count_ones(), 3);
    }

    #[test]
    fn share_lookup() {
        let s = Share::new(vec![1, 4, 7], vec![true, false, true]);
        assert_eq!(s.get(1), Some(true));
        assert_eq!(s.get(4), Some(false));
        assert_eq!(s.get(2), None);
        assert!(s.owns(7));
        assert!(!s.owns(0));
        assert_eq!(s.to_bitstring().as_slice(), &[true, false, true]);
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn share_rejects_unsorted() {
        let _ = Share::new(vec![4, 1], vec![true, false]);
    }

    #[test]
    fn debug_format() {
        let b = BitString::from_u64(0b101, 3);
        assert_eq!(format!("{b:?}"), "BitString(101)");
    }
}
