//! The Boolean functions whose communication complexity the paper studies.
//!
//! Each function fixes an input length and an exact evaluator (the ground
//! truth every protocol is checked against):
//!
//! * [`Singularity`] — Theorem 1.1: "is the `2n × 2n` matrix of `k`-bit
//!   integers singular?",
//! * [`Solvability`] — Corollary 1.3: "does `A·x = b` have a solution?",
//! * [`ProductCheck`] — the Lin–Wu decision problem the paper quotes:
//!   "given `A`, `B`, `C`, is `A·B = C`?",
//! * [`RankAtMost`] — "is rank(M) ≤ r?" (the rank problems of Cor. 1.2),
//! * [`Equality`] — the identity problem driving Vuillemin's transitivity
//!   technique, which the paper explains does *not* suffice for
//!   singularity.

use ccmx_bigint::{Integer, Natural};
use ccmx_linalg::engine::SingularityEngine;
use ccmx_linalg::{bareiss, solve, Matrix};

use crate::bits::BitString;
use crate::encoding::MatrixEncoding;

/// A Boolean function on bit strings of a fixed length.
pub trait BooleanFunction: Sync {
    /// Number of input bits.
    fn num_bits(&self) -> usize;
    /// Evaluate on a full input.
    fn eval(&self, input: &BitString) -> bool;
    /// Name for reports.
    fn name(&self) -> &'static str;
    /// Opt-in incremental evaluation: functions that can re-evaluate
    /// under a single-bit flip faster than from scratch return `Some`
    /// (see [`IncrementalOracle`]); the default is `None` and callers
    /// like `TruthMatrix::enumerate` fall back to fresh [`Self::eval`].
    fn as_incremental(&self) -> Option<&dyn IncrementalOracle> {
        None
    }
}

/// Mutable evaluation state positioned at one input; stepped by bit
/// flips. Obtained from [`IncrementalOracle::begin`].
pub trait IncrementalCursor {
    /// The function value at the current input.
    fn value(&self) -> bool;
    /// Flip input bit `pos` and return the new function value. Cost is
    /// the oracle's incremental step (e.g. `O(n²)` per CRT prime for
    /// singularity) instead of a fresh evaluation.
    fn flip(&mut self, pos: usize) -> bool;
}

/// A [`BooleanFunction`] that supports incremental re-evaluation along a
/// bit-flip walk — the contract behind Gray-coded enumeration: walks
/// visit all assignments flipping one bit per step, so an
/// `O(step)`-cheap cursor replaces a from-scratch `eval` per point.
///
/// Implementations must keep cursors exact: `cursor.value()` after any
/// flip sequence equals `eval` on the correspondingly flipped input
/// (enumeration cross-checks this with `debug_assert`).
pub trait IncrementalOracle: BooleanFunction {
    /// Position a fresh cursor at `input`.
    fn begin(&self, input: &BitString) -> Box<dyn IncrementalCursor + '_>;
}

// ----------------------------------------------------------------------
// Singularity (Theorem 1.1)
// ----------------------------------------------------------------------

/// "Is the matrix singular?" over the paper's encoding.
#[derive(Clone, Copy, Debug)]
pub struct Singularity {
    /// The input encoding.
    pub enc: MatrixEncoding,
}

impl Singularity {
    /// Singularity of `dim × dim` matrices of `k`-bit entries.
    pub fn new(dim: usize, k: u32) -> Self {
        Singularity {
            enc: MatrixEncoding::new(dim, k),
        }
    }
}

impl BooleanFunction for Singularity {
    fn num_bits(&self) -> usize {
        self.enc.total_bits()
    }
    fn eval(&self, input: &BitString) -> bool {
        bareiss::is_singular(&self.enc.decode(input))
    }
    fn name(&self) -> &'static str {
        "singularity"
    }
    fn as_incremental(&self) -> Option<&dyn IncrementalOracle> {
        Some(self)
    }
}

/// Incremental singularity: flipping input bit `pos` perturbs entry
/// `(row, col)` by `±2^bit`, which the CRT rank-one-update engine
/// absorbs in `O(dim²)` per prime.
struct SingularityCursor<'a> {
    enc: &'a MatrixEncoding,
    input: BitString,
    engine: SingularityEngine,
}

impl IncrementalCursor for SingularityCursor<'_> {
    fn value(&self) -> bool {
        self.engine.is_singular()
    }
    fn flip(&mut self, pos: usize) -> bool {
        let (row, col, bit) = self.enc.coordinates(pos);
        let was = self.input.get(pos);
        self.input.set(pos, !was);
        let delta = if was {
            Integer::from(-(1i64 << bit))
        } else {
            Integer::from(1i64 << bit)
        };
        self.engine.update(row, col, &delta)
    }
}

impl IncrementalOracle for Singularity {
    fn begin(&self, input: &BitString) -> Box<dyn IncrementalCursor + '_> {
        // Entries stay in [0, 2^k − 1] under bit flips, so the engine's
        // Hadamard-bound prime plan keeps every verdict exact over ℤ.
        let bound = Natural::from((1u64 << self.enc.k) - 1);
        let mut engine = SingularityEngine::new(self.enc.dim, &bound);
        engine.load(&self.enc.decode(input));
        Box::new(SingularityCursor {
            enc: &self.enc,
            input: input.clone(),
            engine,
        })
    }
}

// ----------------------------------------------------------------------
// Linear-system solvability (Corollary 1.3)
// ----------------------------------------------------------------------

/// "Does `A·x = b` have a (rational) solution?" The input encodes the
/// `dim × dim` matrix `A` row-major followed by the `dim`-vector `b`, each
/// value a `k`-bit non-negative integer.
#[derive(Clone, Copy, Debug)]
pub struct Solvability {
    /// Encoding of the `A` part.
    pub enc: MatrixEncoding,
}

impl Solvability {
    /// Solvability for `dim × dim` systems of `k`-bit integers.
    pub fn new(dim: usize, k: u32) -> Self {
        Solvability {
            enc: MatrixEncoding::new(dim, k),
        }
    }

    /// Split an input into `(A, b)`.
    pub fn decode(&self, input: &BitString) -> (Matrix<Integer>, Vec<Integer>) {
        let k = self.enc.k as usize;
        let a_bits = self.enc.total_bits();
        let a = self
            .enc
            .decode(&BitString::from_bits(input.as_slice()[..a_bits].to_vec()));
        let mut b = Vec::with_capacity(self.enc.dim);
        for i in 0..self.enc.dim {
            let mut v = Natural::zero();
            for bit in 0..k {
                if input.get(a_bits + i * k + bit) {
                    v.set_bit(bit as u64, true);
                }
            }
            b.push(Integer::from(v));
        }
        (a, b)
    }

    /// Encode `(A, b)` into an input.
    pub fn encode(&self, a: &Matrix<Integer>, b: &[Integer]) -> BitString {
        assert_eq!(b.len(), self.enc.dim);
        let mut bits = self.enc.encode(a);
        for e in b {
            assert!(!e.is_negative() && e.bit_len() <= self.enc.k as u64);
            for bit in 0..self.enc.k {
                bits.push(e.magnitude().bit(bit as u64));
            }
        }
        bits
    }
}

impl BooleanFunction for Solvability {
    fn num_bits(&self) -> usize {
        self.enc.total_bits() + self.enc.dim * self.enc.k as usize
    }
    fn eval(&self, input: &BitString) -> bool {
        let (a, b) = self.decode(input);
        solve::is_solvable(&a, &b)
    }
    fn name(&self) -> &'static str {
        "solvability"
    }
}

// ----------------------------------------------------------------------
// A·B = C (Lin–Wu / Savage problem quoted in Section 1)
// ----------------------------------------------------------------------

/// "Is `A·B = C`?" for three `dim × dim` matrices of `k`-bit entries,
/// serialized consecutively.
#[derive(Clone, Copy, Debug)]
pub struct ProductCheck {
    /// Encoding of each of the three operands.
    pub enc: MatrixEncoding,
}

impl ProductCheck {
    /// Product check for `dim × dim` matrices of `k`-bit entries.
    pub fn new(dim: usize, k: u32) -> Self {
        ProductCheck {
            enc: MatrixEncoding::new(dim, k),
        }
    }

    /// Split the input into `(A, B, C)`.
    pub fn decode(&self, input: &BitString) -> (Matrix<Integer>, Matrix<Integer>, Matrix<Integer>) {
        let per = self.enc.total_bits();
        let part = |i: usize| {
            self.enc.decode(&BitString::from_bits(
                input.as_slice()[i * per..(i + 1) * per].to_vec(),
            ))
        };
        (part(0), part(1), part(2))
    }

    /// Encode `(A, B, C)`.
    pub fn encode(
        &self,
        a: &Matrix<Integer>,
        b: &Matrix<Integer>,
        c: &Matrix<Integer>,
    ) -> BitString {
        let mut bits = self.enc.encode(a);
        bits.extend(&self.enc.encode(b));
        bits.extend(&self.enc.encode(c));
        bits
    }
}

impl BooleanFunction for ProductCheck {
    fn num_bits(&self) -> usize {
        3 * self.enc.total_bits()
    }
    fn eval(&self, input: &BitString) -> bool {
        let (a, b, c) = self.decode(input);
        let zz = ccmx_linalg::ring::IntegerRing;
        a.mul(&zz, &b) == c
    }
    fn name(&self) -> &'static str {
        "product-check"
    }
}

// ----------------------------------------------------------------------
// Rank threshold (Corollary 1.2(b))
// ----------------------------------------------------------------------

/// "Is rank(M) ≤ r?"
#[derive(Clone, Copy, Debug)]
pub struct RankAtMost {
    /// Input encoding.
    pub enc: MatrixEncoding,
    /// The rank threshold.
    pub r: usize,
}

impl BooleanFunction for RankAtMost {
    fn num_bits(&self) -> usize {
        self.enc.total_bits()
    }
    fn eval(&self, input: &BitString) -> bool {
        bareiss::rank(&self.enc.decode(input)) <= self.r
    }
    fn name(&self) -> &'static str {
        "rank-at-most"
    }
}

// ----------------------------------------------------------------------
// Equality
// ----------------------------------------------------------------------

/// "Are the two halves of the input identical?" — the identity problem
/// underlying Vuillemin's transitivity technique.
#[derive(Clone, Copy, Debug)]
pub struct Equality {
    /// Bits per half.
    pub half_bits: usize,
}

impl BooleanFunction for Equality {
    fn num_bits(&self) -> usize {
        2 * self.half_bits
    }
    fn eval(&self, input: &BitString) -> bool {
        (0..self.half_bits).all(|i| input.get(i) == input.get(self.half_bits + i))
    }
    fn name(&self) -> &'static str {
        "equality"
    }
    fn as_incremental(&self) -> Option<&dyn IncrementalOracle> {
        Some(self)
    }
}

/// Incremental equality: a running mismatch count makes each flip `O(1)`
/// (also a structurally different exerciser of the oracle contract than
/// the matrix-backed singularity cursor).
struct EqualityCursor {
    half_bits: usize,
    input: BitString,
    mismatches: usize,
}

impl IncrementalCursor for EqualityCursor {
    fn value(&self) -> bool {
        self.mismatches == 0
    }
    fn flip(&mut self, pos: usize) -> bool {
        let i = if pos >= self.half_bits {
            pos - self.half_bits
        } else {
            pos
        };
        let matched = self.input.get(i) == self.input.get(i + self.half_bits);
        self.input.set(pos, !self.input.get(pos));
        let matches_now = self.input.get(i) == self.input.get(i + self.half_bits);
        match (matched, matches_now) {
            (true, false) => self.mismatches += 1,
            (false, true) => self.mismatches -= 1,
            _ => {}
        }
        self.value()
    }
}

impl IncrementalOracle for Equality {
    fn begin(&self, input: &BitString) -> Box<dyn IncrementalCursor + '_> {
        let mismatches = (0..self.half_bits)
            .filter(|&i| input.get(i) != input.get(self.half_bits + i))
            .count();
        Box::new(EqualityCursor {
            half_bits: self.half_bits,
            input: input.clone(),
            mismatches,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccmx_linalg::matrix::int_matrix;

    #[test]
    fn singularity_eval() {
        let f = Singularity::new(2, 2);
        let sing = f.enc.encode(&int_matrix(&[&[1, 2], &[1, 2]]));
        let nonsing = f.enc.encode(&int_matrix(&[&[1, 2], &[3, 1]]));
        assert!(f.eval(&sing));
        assert!(!f.eval(&nonsing));
        assert_eq!(f.num_bits(), 8);
    }

    #[test]
    fn solvability_roundtrip_and_eval() {
        let f = Solvability::new(2, 2);
        let a = int_matrix(&[&[1, 1], &[2, 2]]);
        let consistent = f.encode(&a, &[Integer::from(1i64), Integer::from(2i64)]);
        let inconsistent = f.encode(&a, &[Integer::from(1i64), Integer::from(3i64)]);
        assert!(f.eval(&consistent));
        assert!(!f.eval(&inconsistent));
        let (a2, b2) = f.decode(&consistent);
        assert_eq!(a2, a);
        assert_eq!(b2, vec![Integer::from(1i64), Integer::from(2i64)]);
        assert_eq!(f.num_bits(), 8 + 4);
    }

    #[test]
    fn product_check_eval() {
        let f = ProductCheck::new(2, 3);
        let a = int_matrix(&[&[1, 2], &[0, 1]]);
        let b = int_matrix(&[&[1, 0], &[1, 1]]);
        let zz = ccmx_linalg::ring::IntegerRing;
        let c = a.mul(&zz, &b);
        assert!(f.eval(&f.encode(&a, &b, &c)));
        let wrong = int_matrix(&[&[3, 2], &[1, 2]]);
        assert!(!f.eval(&f.encode(&a, &b, &wrong)));
        let (a2, b2, c2) = f.decode(&f.encode(&a, &b, &c));
        assert_eq!((a2, b2, c2), (a, b, c));
    }

    #[test]
    fn rank_at_most_eval() {
        let enc = MatrixEncoding::new(2, 2);
        let f1 = RankAtMost { enc, r: 1 };
        let rank2 = enc.encode(&int_matrix(&[&[1, 2], &[2, 0]]));
        // [[1,2],[2,0]] has det -4: rank 2.
        assert!(!f1.eval(&rank2));
        let r1 = enc.encode(&int_matrix(&[&[1, 2], &[1, 2]]));
        assert!(f1.eval(&r1));
        let zero = enc.encode(&int_matrix(&[&[0, 0], &[0, 0]]));
        assert!(f1.eval(&zero));
        assert!(!RankAtMost { enc, r: 0 }.eval(&r1));
    }

    #[test]
    fn equality_eval() {
        let f = Equality { half_bits: 3 };
        assert!(f.eval(&BitString::from_u64(0b101_101, 6)));
        assert!(!f.eval(&BitString::from_u64(0b101_100, 6)));
        assert_eq!(f.num_bits(), 6);
    }

    /// Drives an oracle's cursor through a deterministic pseudo-random
    /// flip walk, checking every verdict against a fresh `eval`.
    fn check_cursor_walk(f: &dyn BooleanFunction, steps: usize, seed: u64) {
        let oracle = f.as_incremental().expect("oracle expected");
        let n = f.num_bits();
        let mut input = BitString::zeros(n);
        let mut cursor = oracle.begin(&input);
        assert_eq!(cursor.value(), f.eval(&input));
        let mut state = seed | 1;
        for step in 0..steps {
            // xorshift64 position stream: cheap, deterministic, hits
            // every bit class (A-side, B-side, high/low entry bits).
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            let pos = (state as usize) % n;
            input.set(pos, !input.get(pos));
            let v = cursor.flip(pos);
            assert_eq!(v, f.eval(&input), "step {step}, pos {pos}");
            assert_eq!(cursor.value(), v);
        }
    }

    #[test]
    fn singularity_cursor_matches_eval_over_flip_walks() {
        for (dim, k, seed) in [(2usize, 1u32, 7u64), (2, 3, 11), (3, 2, 13)] {
            check_cursor_walk(&Singularity::new(dim, k), 200, seed);
        }
    }

    #[test]
    fn equality_cursor_matches_eval_over_flip_walks() {
        check_cursor_walk(&Equality { half_bits: 5 }, 300, 42);
    }

    #[test]
    fn non_incremental_functions_report_none() {
        let enc = MatrixEncoding::new(2, 2);
        assert!(RankAtMost { enc, r: 1 }.as_incremental().is_none());
        assert!(Singularity::new(2, 2).as_incremental().is_some());
    }
}
