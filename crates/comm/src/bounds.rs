//! Certified lower bounds from truth matrices.
//!
//! Yao (1979): under partition `π`, deterministic communication is at
//! least `log₂ d(f) − 2`, where `d(f)` is the least number of disjoint
//! monochromatic submatrices (rectangles) partitioning the truth matrix.
//! Two classical certificates bound `d(f)` from below:
//!
//! * **rank**: over any field, `d(f) ≥ rank(M_f)` — we compute the GF(2)
//!   rank exactly with bitset elimination, and optionally the rank over a
//!   large prime field (both are valid certificates);
//! * **fooling sets**: a set `S` of `1`-entries such that no two of them
//!   fit in a common `1`-rectangle forces `d(f) ≥ |S| + (0-rectangles)`;
//!   we grow one greedily.
//!
//! We also provide the *upper* counterpart used in the rectangle
//! experiments (E6): a greedy estimate of the largest `1`-chromatic
//! rectangle, the quantity Lemma 3.7 bounds for the paper's restricted
//! truth matrix.

use crate::truth::TruthMatrix;

/// GF(2) rank of the truth matrix via bitset Gaussian elimination.
pub fn rank_gf2(t: &TruthMatrix) -> usize {
    let mut rows: Vec<Vec<u64>> = (0..t.rows()).map(|x| t.row_words(x).to_vec()).collect();
    let mut rank = 0usize;
    let cols = t.cols();
    for col in 0..cols {
        let word = col / 64;
        let mask = 1u64 << (col % 64);
        // Find a row at or below `rank` with a 1 in this column.
        let Some(pivot) = (rank..rows.len()).find(|&r| rows[r][word] & mask != 0) else {
            continue;
        };
        rows.swap(rank, pivot);
        let (pivot_row, rest) = {
            let (head, tail) = rows.split_at_mut(rank + 1);
            (&head[rank], tail)
        };
        for r in rest.iter_mut() {
            if r[word] & mask != 0 {
                for (rw, pw) in r.iter_mut().zip(pivot_row.iter()) {
                    *rw ^= pw;
                }
            }
        }
        rank += 1;
        if rank == rows.len() {
            break;
        }
    }
    rank
}

/// Rank of the truth matrix over GF(p) (entries 0/1). Any field gives a
/// valid `d(f)` certificate; a large prime often certifies more than
/// GF(2).
pub fn rank_mod_p(t: &TruthMatrix, p: u64) -> usize {
    let m = ccmx_linalg::Matrix::from_fn(t.rows(), t.cols(), |x, y| {
        ccmx_bigint::Integer::from(u64::from(t.get(x, y)))
    });
    // Dispatches to the Montgomery delayed-reduction kernels for odd
    // p < 2^62 and falls back to generic prime-field Gauss otherwise.
    ccmx_linalg::modular::rank_mod(&m, p)
}

/// A fooling set: `1`-entries `(x_i, y_i)` such that for every pair
/// `i ≠ j`, at least one of `(x_i, y_j)`, `(x_j, y_i)` is `0`. Grown
/// greedily (so the returned size is a certified *lower* bound on the
/// largest fooling set).
pub fn fooling_set_greedy(t: &TruthMatrix) -> Vec<(usize, usize)> {
    // Bitset fast path. Member `m = (pxₘ, pyₘ)` conflicts with a
    // candidate `(x, y)` iff `t(x, pyₘ) && t(pxₘ, y)`, so we keep two
    // incremental indexes over *member bits*: `row_hits[x']` has bit
    // `m` set iff `t(x', pyₘ) = 1`, `col_hits[y']` has bit `m` set iff
    // `t(pxₘ, y') = 1`. A candidate is compatible iff
    // `row_hits[x] & col_hits[y] == 0` — one word-AND sweep instead of
    // rescanning the whole set with per-entry bit probes. Accepting a
    // member costs one column walk + one row walk, exactly like the
    // scalar greedy's verification of the accepted pair.
    //
    // Candidate order and accept criterion are identical to
    // [`fooling_set_greedy_scalar`], which is kept as the oracle; a
    // proptest pins the two to the same output.
    let rows = t.rows();
    let cols = t.cols();
    let mut set: Vec<(usize, usize)> = Vec::new();
    let mut row_hits: Vec<Vec<u64>> = vec![Vec::new(); rows];
    let mut col_hits: Vec<Vec<u64>> = vec![Vec::new(); cols];
    for x in 0..rows {
        for y in 0..cols {
            if !t.get(x, y) {
                continue;
            }
            let conflict = row_hits[x]
                .iter()
                .zip(&col_hits[y])
                .any(|(a, b)| a & b != 0);
            if conflict {
                continue;
            }
            let m = set.len();
            let (word, bit) = (m / 64, 1u64 << (m % 64));
            for (xp, hits) in row_hits.iter_mut().enumerate() {
                if t.get(xp, y) {
                    if hits.len() <= word {
                        hits.resize(word + 1, 0);
                    }
                    hits[word] |= bit;
                }
            }
            for (yp, hits) in col_hits.iter_mut().enumerate() {
                if t.get(x, yp) {
                    if hits.len() <= word {
                        hits.resize(word + 1, 0);
                    }
                    hits[word] |= bit;
                }
            }
            set.push((x, y));
        }
    }
    // Verify the invariant before certifying (defense in depth: the bound
    // below is only valid if this really is a fooling set).
    debug_assert!(verify_fooling_set(t, &set));
    set
}

/// The original scalar greedy: rescans the whole set per candidate
/// with two `t.get` probes per member. Kept as the oracle for the
/// bitset fast path in [`fooling_set_greedy`] — both walk candidates
/// in the same order with the same accept criterion, so they must
/// return the *identical* set (property-tested in
/// `tests/proptest_comm.rs`).
pub fn fooling_set_greedy_scalar(t: &TruthMatrix) -> Vec<(usize, usize)> {
    let mut set: Vec<(usize, usize)> = Vec::new();
    for x in 0..t.rows() {
        for y in 0..t.cols() {
            if !t.get(x, y) {
                continue;
            }
            let compatible = set.iter().all(|&(px, py)| !t.get(x, py) || !t.get(px, y));
            if compatible {
                set.push((x, y));
            }
        }
    }
    debug_assert!(verify_fooling_set(t, &set));
    set
}

/// Check the fooling-set property exactly.
pub fn verify_fooling_set(t: &TruthMatrix, set: &[(usize, usize)]) -> bool {
    for (i, &(xi, yi)) in set.iter().enumerate() {
        if !t.get(xi, yi) {
            return false;
        }
        for &(xj, yj) in &set[i + 1..] {
            if t.get(xi, yj) && t.get(xj, yi) {
                return false;
            }
        }
    }
    true
}

/// Greedy estimate of the largest 1-chromatic rectangle (`rows × cols`
/// area). Exact maximization is NP-hard (maximum edge biclique); the
/// greedy value is a certified *lower* bound on the maximum, which is the
/// direction the E6 experiment needs (the paper's Lemma 3.7 upper-bounds
/// the maximum, so any witness below the bound is consistent, and a
/// witness above would falsify it).
pub fn largest_one_rectangle_greedy(t: &TruthMatrix) -> (Vec<usize>, Vec<usize>) {
    let mut best: (u64, Vec<usize>, Vec<usize>) = (0, Vec::new(), Vec::new());
    for seed in 0..t.rows() {
        if t.row_ones(seed) == 0 {
            continue;
        }
        // Start from this row's support; greedily add rows that keep the
        // column intersection largest.
        let mut col_mask: Vec<u64> = t.row_words(seed).to_vec();
        let mut rows = vec![seed];
        loop {
            let mut best_gain: Option<(usize, Vec<u64>, u64)> = None;
            for cand in 0..t.rows() {
                if rows.contains(&cand) {
                    continue;
                }
                let inter: Vec<u64> = col_mask
                    .iter()
                    .zip(t.row_words(cand))
                    .map(|(a, b)| a & b)
                    .collect();
                let ones: u64 = inter.iter().map(|w| w.count_ones() as u64).sum();
                if ones == 0 {
                    continue;
                }
                let area = ones * (rows.len() as u64 + 1);
                if best_gain.as_ref().is_none_or(|(_, _, a)| area > *a) {
                    best_gain = Some((cand, inter, area));
                }
            }
            let current_area =
                (rows.len() as u64) * col_mask.iter().map(|w| w.count_ones() as u64).sum::<u64>();
            match best_gain {
                Some((cand, inter, area)) if area > current_area => {
                    rows.push(cand);
                    col_mask = inter;
                }
                _ => break,
            }
        }
        let area =
            (rows.len() as u64) * col_mask.iter().map(|w| w.count_ones() as u64).sum::<u64>();
        if area > best.0 {
            let cols: Vec<usize> = (0..t.cols())
                .filter(|&y| (col_mask[y / 64] >> (y % 64)) & 1 == 1)
                .collect();
            best = (area, rows.clone(), cols);
        }
    }
    (best.1, best.2)
}

/// Is the given rectangle 1-chromatic?
pub fn is_one_rectangle(t: &TruthMatrix, rows: &[usize], cols: &[usize]) -> bool {
    rows.iter().all(|&x| cols.iter().all(|&y| t.get(x, y)))
}

/// The one-way communication lower bound: a protocol where only A speaks
/// must send `⌈log₂(#distinct rows)⌉` bits (two inputs with different
/// truth-matrix rows need different messages). Always `≥` the two-way
/// bound's rank certificate is not implied — it's a different regime;
/// for singularity under π₀ it is near-maximal (almost all rows differ).
pub fn one_way_lower_bound_bits(t: &TruthMatrix) -> f64 {
    (t.distinct_rows() as f64).log2().max(0.0)
}

/// A certified lower-bound report for one `(f, π)` truth matrix.
#[derive(Clone, Debug, PartialEq)]
pub struct LowerBoundReport {
    /// GF(2) rank.
    pub rank_gf2: usize,
    /// Rank over a large prime field.
    pub rank_big_prime: usize,
    /// Size of the greedy fooling set.
    pub fooling_set: usize,
    /// Rows after duplicate-row removal: the certificates above are
    /// computed on the deduplicated matrix (a CC-preserving reduction
    /// that leaves every certificate value unchanged).
    pub distinct_rows: usize,
    /// Columns after duplicate-column removal.
    pub distinct_cols: usize,
    /// `log₂ max(rank, fooling) − 2`... reported as Yao's bound
    /// `ceil(log₂ d_lb) − 2` clamped at 0, in bits.
    pub comm_lower_bound_bits: f64,
}

/// Compute all certificates for a truth matrix.
///
/// The matrix is first normalized with [`TruthMatrix::dedup`]:
/// duplicate rows/columns cannot change `d(f)` (merging identical
/// lines merges their rectangles), but they inflate every elimination
/// and greedy scan below — on enumerated truth matrices with heavy
/// input redundancy the certificates now run on the
/// `distinct_rows × distinct_cols` core.
pub fn lower_bounds(t: &TruthMatrix) -> LowerBoundReport {
    let d = t.dedup();
    let r2 = rank_gf2(&d);
    let rp = rank_mod_p(&d, 2_305_843_009_213_693_951); // Mersenne prime 2^61 − 1, Montgomery window
    let fs = fooling_set_greedy(&d).len();
    // d(f) >= max(rank over any field, |fooling set|); Yao: CC >= log2 d(f) - 2.
    let d_lb = r2.max(rp).max(fs).max(1);
    let bound = (d_lb as f64).log2() - 2.0;
    LowerBoundReport {
        rank_gf2: r2,
        rank_big_prime: rp,
        fooling_set: fs,
        distinct_rows: d.rows(),
        distinct_cols: d.cols(),
        comm_lower_bound_bits: bound.max(0.0),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn identity(n: usize) -> TruthMatrix {
        TruthMatrix::from_fn(n, n, |x, y| x == y)
    }

    #[test]
    fn identity_rank_and_fooling() {
        let t = identity(32);
        assert_eq!(rank_gf2(&t), 32);
        assert_eq!(rank_mod_p(&t, 97), 32);
        let fs = fooling_set_greedy(&t);
        assert_eq!(fs.len(), 32);
        assert!(verify_fooling_set(&t, &fs));
        let r = lower_bounds(&t);
        assert!((r.comm_lower_bound_bits - 3.0).abs() < 1e-9); // log2(32) - 2
    }

    #[test]
    fn all_ones_is_trivial() {
        let t = TruthMatrix::from_fn(8, 8, |_, _| true);
        assert_eq!(rank_gf2(&t), 1);
        assert_eq!(fooling_set_greedy(&t).len(), 1);
        let (rs, cs) = largest_one_rectangle_greedy(&t);
        assert_eq!(rs.len() * cs.len(), 64);
        assert!(is_one_rectangle(&t, &rs, &cs));
    }

    #[test]
    fn all_zeros_has_no_certificates() {
        let t = TruthMatrix::from_fn(8, 8, |_, _| false);
        assert_eq!(rank_gf2(&t), 0);
        assert!(fooling_set_greedy(&t).is_empty());
        let (rs, cs) = largest_one_rectangle_greedy(&t);
        assert!(rs.is_empty() || cs.is_empty());
    }

    #[test]
    fn gf2_rank_can_undershoot_real_rank() {
        // The 2x2 all-but-one matrix [[0,1],[1,1]] has rank 2 over both
        // GF(2) and Q; but [[1,1],[1,1]] ⊕ parity tricks differ. Use the
        // 4x4 "complement of identity": over GF(2) J - I = J + I has rank
        // depending on dimension parity; over Q, rank is 4.
        let n = 4;
        let t = TruthMatrix::from_fn(n, n, |x, y| x != y);
        let r2 = rank_gf2(&t);
        let rp = rank_mod_p(&t, 1_000_000_007);
        assert_eq!(rp, 4); // J - I invertible over Q (eigenvalues n-1, -1)
        assert!(r2 <= rp);
        // The report takes the max, so the certificate is 4.
        assert_eq!(lower_bounds(&t).rank_big_prime, 4);
    }

    #[test]
    fn rectangle_greedy_finds_planted_rectangle() {
        // Plant a 3x5 all-ones rectangle in a sparse sea.
        let rows = [1usize, 4, 6];
        let cols = [0usize, 2, 3, 8, 9];
        let t = TruthMatrix::from_fn(8, 12, |x, y| rows.contains(&x) && cols.contains(&y));
        let (rs, cs) = largest_one_rectangle_greedy(&t);
        assert!(is_one_rectangle(&t, &rs, &cs));
        assert_eq!(rs.len() * cs.len(), 15);
    }

    #[test]
    fn lower_bounds_normalize_duplicates() {
        // Identity 8x8 with every row and column tripled: certificates
        // must match the plain identity's, and the report must expose
        // the deduplicated core dimensions.
        let id = identity(8);
        let fat = TruthMatrix::from_fn(24, 24, |x, y| x / 3 == y / 3);
        let a = lower_bounds(&id);
        let b = lower_bounds(&fat);
        assert_eq!(b.rank_gf2, a.rank_gf2);
        assert_eq!(b.rank_big_prime, a.rank_big_prime);
        assert_eq!(b.fooling_set, a.fooling_set);
        assert_eq!(b.comm_lower_bound_bits, a.comm_lower_bound_bits);
        assert_eq!((b.distinct_rows, b.distinct_cols), (8, 8));
        assert_eq!((a.distinct_rows, a.distinct_cols), (8, 8));
    }

    #[test]
    fn bitset_fooling_matches_scalar_on_structured_cases() {
        for t in [
            identity(17),
            TruthMatrix::from_fn(16, 16, |x, y| x >= y),
            TruthMatrix::from_fn(9, 13, |x, y| (x * 5 + y * 3) % 4 == 0),
            TruthMatrix::from_fn(8, 8, |_, _| true),
            TruthMatrix::from_fn(8, 8, |_, _| false),
        ] {
            assert_eq!(fooling_set_greedy(&t), fooling_set_greedy_scalar(&t));
        }
    }

    #[test]
    fn fooling_set_rejects_fake() {
        let t = TruthMatrix::from_fn(4, 4, |_, _| true);
        // Any two 1-entries in an all-ones matrix violate the property.
        assert!(!verify_fooling_set(&t, &[(0, 0), (1, 1)]));
        assert!(verify_fooling_set(&t, &[(2, 3)]));
    }

    #[test]
    fn one_way_bound_basics() {
        // Identity matrix: all rows distinct -> log2(n) bits one-way.
        let t = identity(16);
        assert!((one_way_lower_bound_bits(&t) - 4.0).abs() < 1e-9);
        // Constant function: one distinct row -> 0 bits.
        let c = TruthMatrix::from_fn(8, 8, |_, _| true);
        assert_eq!(one_way_lower_bound_bits(&c), 0.0);
        // One-way is at least the trivial two-way send-all floor for
        // equality: log2(2^L) = L.
        use crate::functions::Equality;
        let f = Equality { half_bits: 5 };
        let p = crate::protocols::fingerprint::fixed_partition(5);
        let tm = TruthMatrix::enumerate(&f, &p, 1);
        assert!((one_way_lower_bound_bits(&tm) - 5.0).abs() < 1e-9);
    }

    #[test]
    fn greater_than_sets_fooling_diagonal() {
        // GT matrix: f(x,y) = (x >= y). Diagonal is a fooling set.
        let n = 16;
        let t = TruthMatrix::from_fn(n, n, |x, y| x >= y);
        let fs = fooling_set_greedy(&t);
        assert!(
            fs.len() >= n,
            "greedy found only {} of {} diagonal pairs",
            fs.len(),
            n
        );
        assert_eq!(rank_mod_p(&t, 1_000_000_007), n);
    }
}
