//! Metering harnesses: run a protocol over input sweeps, check every
//! answer against the exact evaluator, and report worst/average cost.
//!
//! `Comm(f, π, P)` is a worst-case-over-inputs quantity; the harness
//! realizes it as `max` over an exhaustive sweep (small instances) or a
//! random sweep (larger ones), while simultaneously acting as a
//! correctness referee.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::bits::BitString;
use crate::functions::BooleanFunction;
use crate::partition::Partition;
use crate::protocol::{run_sequential, TwoPartyProtocol};

/// Report of a metering sweep.
#[derive(Clone, Debug, PartialEq)]
pub struct MeterReport {
    /// Protocol name.
    pub protocol: &'static str,
    /// Inputs executed.
    pub trials: usize,
    /// Worst-case bits over the sweep.
    pub max_bits: usize,
    /// Best-case bits.
    pub min_bits: usize,
    /// Mean bits.
    pub mean_bits: f64,
    /// Worst-case rounds.
    pub max_rounds: usize,
    /// Number of inputs where the protocol's answer disagreed with the
    /// exact evaluator (0 for correct deterministic protocols; bounded by
    /// the analysis for randomized ones).
    pub errors: usize,
}

impl MeterReport {
    fn from_runs(protocol: &'static str, runs: &[(usize, usize, bool)]) -> Self {
        assert!(!runs.is_empty(), "metering sweep was empty");
        let max_bits = runs.iter().map(|r| r.0).max().unwrap();
        let min_bits = runs.iter().map(|r| r.0).min().unwrap();
        let mean_bits = runs.iter().map(|r| r.0 as f64).sum::<f64>() / runs.len() as f64;
        let max_rounds = runs.iter().map(|r| r.1).max().unwrap();
        let errors = runs.iter().filter(|r| !r.2).count();
        MeterReport {
            protocol,
            trials: runs.len(),
            max_bits,
            min_bits,
            mean_bits,
            max_rounds,
            errors,
        }
    }
}

/// Run the protocol on every input of the function's domain (guarded to
/// at most 2^22 inputs).
pub fn meter_exhaustive(
    proto: &dyn TwoPartyProtocol,
    partition: &Partition,
    f: &dyn BooleanFunction,
    seed: u64,
) -> MeterReport {
    let n = f.num_bits();
    assert!(n <= 22, "exhaustive metering capped at 22 input bits");
    let mut runs = Vec::with_capacity(1usize << n);
    for v in 0u64..(1u64 << n) {
        let input = BitString::from_u64(v, n);
        let r = run_sequential(proto, partition, &input, seed ^ v);
        runs.push((
            r.cost_bits(),
            r.transcript.rounds(),
            r.output == f.eval(&input),
        ));
    }
    MeterReport::from_runs(proto.name(), &runs)
}

/// Run the protocol on `trials` uniformly random inputs.
pub fn meter_random(
    proto: &dyn TwoPartyProtocol,
    partition: &Partition,
    f: &dyn BooleanFunction,
    trials: usize,
    seed: u64,
) -> MeterReport {
    let n = f.num_bits();
    let mut rng = StdRng::seed_from_u64(seed);
    let mut runs = Vec::with_capacity(trials);
    for t in 0..trials {
        let input = BitString::from_bits((0..n).map(|_| rng.gen()).collect());
        let r = run_sequential(proto, partition, &input, seed.wrapping_add(t as u64));
        runs.push((
            r.cost_bits(),
            r.transcript.rounds(),
            r.output == f.eval(&input),
        ));
    }
    MeterReport::from_runs(proto.name(), &runs)
}

/// Run the protocol on caller-provided inputs (instance families like the
/// paper's restricted matrices).
pub fn meter_inputs(
    proto: &dyn TwoPartyProtocol,
    partition: &Partition,
    f: &dyn BooleanFunction,
    inputs: &[BitString],
    seed: u64,
) -> MeterReport {
    meter_inputs_with(&run_sequential, proto, partition, f, inputs, seed)
}

/// The runner seam: any executor with [`run_sequential`]'s signature.
///
/// `ccmx-net` passes TCP-transported executors through this to meter a
/// protocol *over real sockets* with the same referee; the reports must
/// agree bit-for-bit with the sequential runner's.
pub type Runner =
    dyn Fn(&dyn TwoPartyProtocol, &Partition, &BitString, u64) -> crate::protocol::RunResult;

/// [`meter_inputs`] with an explicit runner (sequential, threaded, or a
/// wire transport supplied by another crate).
pub fn meter_inputs_with(
    runner: &Runner,
    proto: &dyn TwoPartyProtocol,
    partition: &Partition,
    f: &dyn BooleanFunction,
    inputs: &[BitString],
    seed: u64,
) -> MeterReport {
    let runs: Vec<(usize, usize, bool)> = inputs
        .iter()
        .enumerate()
        .map(|(i, input)| {
            let r = runner(proto, partition, input, seed.wrapping_add(i as u64));
            (
                r.cost_bits(),
                r.transcript.rounds(),
                r.output == f.eval(input),
            )
        })
        .collect();
    MeterReport::from_runs(proto.name(), &runs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encoding::MatrixEncoding;
    use crate::functions::{Equality, Singularity};
    use crate::protocols::{FingerprintEquality, ModPrimeSingularity, SendAll};

    #[test]
    fn send_all_meters_exact_half() {
        let f = Singularity::new(2, 2);
        let enc = MatrixEncoding::new(2, 2);
        let p = Partition::pi_zero(&enc);
        let proto = SendAll::new(f);
        let rep = meter_exhaustive(&proto, &p, &Singularity::new(2, 2), 0);
        assert_eq!(rep.errors, 0);
        assert_eq!(rep.max_bits, 4);
        assert_eq!(rep.min_bits, 4);
        assert_eq!(rep.trials, 256);
        assert_eq!(rep.max_rounds, 1);
    }

    #[test]
    fn randomized_meter_reports_low_errors() {
        let proto = ModPrimeSingularity::new(2, 2, 25);
        let enc = proto.enc;
        let p = Partition::pi_zero(&enc);
        let rep = meter_exhaustive(&proto, &p, &Singularity::new(2, 2), 7);
        assert_eq!(
            rep.errors, 0,
            "2^-25 error should not materialize in 256 trials"
        );
        assert_eq!(rep.max_bits, proto.predicted_cost());
    }

    #[test]
    fn random_meter_runs() {
        let f = Equality { half_bits: 32 };
        let proto = FingerprintEquality::new(32, 25);
        let p = crate::protocols::fingerprint::fixed_partition(32);
        let rep = meter_random(&proto, &p, &f, 50, 3);
        assert_eq!(rep.trials, 50);
        assert_eq!(rep.errors, 0);
        assert_eq!(rep.max_bits, proto.predicted_cost());
    }

    #[test]
    fn meter_inputs_uses_given_instances() {
        let f = Equality { half_bits: 2 };
        let proto = SendAll::new(Equality { half_bits: 2 });
        let p = crate::protocols::fingerprint::fixed_partition(2);
        let inputs = vec![
            BitString::from_u64(0b0101, 4),
            BitString::from_u64(0b1101, 4),
        ];
        let rep = meter_inputs(&proto, &p, &f, &inputs, 0);
        assert_eq!(rep.trials, 2);
        assert_eq!(rep.errors, 0);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn empty_sweep_rejected() {
        let f = Equality { half_bits: 2 };
        let proto = SendAll::new(Equality { half_bits: 2 });
        let p = crate::protocols::fingerprint::fixed_partition(2);
        let _ = meter_inputs(&proto, &p, &f, &[], 0);
    }
}
