//! Yao's fundamental lemma, executable: the inputs that produce the same
//! transcript under a deterministic protocol form a **monochromatic
//! combinatorial rectangle**, so a protocol of cost `c` partitions the
//! truth matrix into at most `2^{c+1}` monochromatic rectangles — which
//! is why `Comm(f, π) ≥ log₂ d(f) − O(1)` (the paper's Section 2).
//!
//! [`transcript_partition`] runs a protocol on *every* input of a small
//! domain, groups inputs by transcript, and verifies both halves of the
//! lemma on the actual system: every class is a rectangle
//! (`rows × cols` product structure) and every class is monochromatic.

use std::collections::HashMap;

use crate::bits::BitString;
use crate::functions::BooleanFunction;
use crate::partition::{Owner, Partition};
use crate::protocol::{run_sequential, TwoPartyProtocol};

/// One transcript-equivalence class.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TranscriptClass {
    /// Row indices (assignments to A's bits) appearing in the class.
    pub rows: Vec<usize>,
    /// Column indices (assignments to B's bits).
    pub cols: Vec<usize>,
    /// The (input, output) pairs actually observed, as `(row, col)`.
    pub members: Vec<(usize, usize)>,
    /// The common output.
    pub output: bool,
    /// The common transcript cost in bits.
    pub cost_bits: usize,
}

impl TranscriptClass {
    /// Is this class a full combinatorial rectangle (`members` =
    /// `rows × cols`)?
    pub fn is_rectangle(&self) -> bool {
        if self.members.len() != self.rows.len() * self.cols.len() {
            return false;
        }
        let set: std::collections::HashSet<(usize, usize)> = self.members.iter().copied().collect();
        self.rows
            .iter()
            .all(|&r| self.cols.iter().all(|&c| set.contains(&(r, c))))
    }
}

/// The result of a full transcript-partition sweep.
#[derive(Clone, Debug)]
pub struct TranscriptPartition {
    /// The classes, one per distinct transcript.
    pub classes: Vec<TranscriptClass>,
    /// The worst-case protocol cost observed.
    pub max_cost_bits: usize,
}

impl TranscriptPartition {
    /// Every class is a monochromatic rectangle (Yao's lemma).
    pub fn all_monochromatic_rectangles(&self) -> bool {
        self.classes.iter().all(|c| c.is_rectangle())
    }

    /// The implied lower bound `log₂(#classes)` compared against the
    /// protocol's cost: a protocol of cost `c` has at most `2^{c+1}`
    /// transcript classes (each round's bits plus the 1-bit output).
    pub fn class_count_consistent_with_cost(&self) -> bool {
        (self.classes.len() as f64).log2() <= (self.max_cost_bits + 1) as f64
    }
}

/// Run the protocol on every input of `f`'s (small) domain and partition
/// the domain by transcript. `seed` fixes the protocol's coins, making
/// randomized protocols deterministic for the sweep (the lemma applies
/// per coin setting).
pub fn transcript_partition(
    proto: &dyn TwoPartyProtocol,
    partition: &Partition,
    f: &dyn BooleanFunction,
    seed: u64,
) -> TranscriptPartition {
    let n = f.num_bits();
    assert!(n <= 20, "transcript sweep capped at 20 input bits");
    assert_eq!(partition.len(), n);
    let a_pos = partition.positions_of(Owner::A);
    let b_pos = partition.positions_of(Owner::B);
    let rows = 1usize << a_pos.len();
    let cols = 1usize << b_pos.len();

    #[derive(Default)]
    struct Acc {
        rows: std::collections::BTreeSet<usize>,
        cols: std::collections::BTreeSet<usize>,
        members: Vec<(usize, usize)>,
        output: bool,
        cost: usize,
    }
    let mut groups: HashMap<String, Acc> = HashMap::new();
    let mut max_cost = 0usize;

    for x in 0..rows {
        for y in 0..cols {
            let mut input = BitString::zeros(n);
            for (i, &pos) in a_pos.iter().enumerate() {
                input.set(pos, (x >> i) & 1 == 1);
            }
            for (i, &pos) in b_pos.iter().enumerate() {
                input.set(pos, (y >> i) & 1 == 1);
            }
            // IMPORTANT: same seed for every input — the coins are part
            // of the (now deterministic) protocol.
            let run = run_sequential(proto, partition, &input, seed);
            max_cost = max_cost.max(run.cost_bits());
            let key = format!("{:?}|{}", run.transcript, run.output);
            let acc = groups.entry(key).or_default();
            acc.rows.insert(x);
            acc.cols.insert(y);
            acc.members.push((x, y));
            acc.output = run.output;
            acc.cost = run.cost_bits();
        }
    }

    let classes = groups
        .into_values()
        .map(|a| TranscriptClass {
            rows: a.rows.into_iter().collect(),
            cols: a.cols.into_iter().collect(),
            members: a.members,
            output: a.output,
            cost_bits: a.cost,
        })
        .collect();
    TranscriptPartition {
        classes,
        max_cost_bits: max_cost,
    }
}

/// Check monochromaticity against the function itself (stronger than
/// output-agreement: the protocol might be *wrong*; a correct protocol's
/// classes agree with `f` everywhere).
pub fn classes_match_function(
    tp: &TranscriptPartition,
    partition: &Partition,
    f: &dyn BooleanFunction,
) -> bool {
    let a_pos = partition.positions_of(Owner::A);
    let b_pos = partition.positions_of(Owner::B);
    for class in &tp.classes {
        for &(x, y) in &class.members {
            let mut input = BitString::zeros(f.num_bits());
            for (i, &pos) in a_pos.iter().enumerate() {
                input.set(pos, (x >> i) & 1 == 1);
            }
            for (i, &pos) in b_pos.iter().enumerate() {
                input.set(pos, (y >> i) & 1 == 1);
            }
            if f.eval(&input) != class.output {
                return false;
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::functions::{Equality, Singularity};
    use crate::protocols::{FingerprintEquality, ModPrimeSingularity, SendAll};

    #[test]
    fn send_all_classes_are_monochromatic_rectangles() {
        let f = Singularity::new(2, 2);
        let enc = f.enc;
        let p = Partition::pi_zero(&enc);
        let proto = SendAll::new(f);
        let tp = transcript_partition(&proto, &p, &Singularity::new(2, 2), 0);
        assert!(tp.all_monochromatic_rectangles(), "Yao's lemma violated");
        assert!(tp.class_count_consistent_with_cost());
        assert!(classes_match_function(&tp, &p, &Singularity::new(2, 2)));
        // Send-all: every row is its own message → #classes = rows × {outputs per row}.
        // At minimum there are as many classes as distinct rows... at
        // least 2^{|A|} classes since A's message enumerates its share.
        assert!(tp.classes.len() >= 16);
    }

    #[test]
    fn classes_cover_domain_disjointly() {
        let f = Equality { half_bits: 3 };
        let p = crate::protocols::fingerprint::fixed_partition(3);
        let proto = SendAll::new(Equality { half_bits: 3 });
        let tp = transcript_partition(&proto, &p, &f, 1);
        let total: usize = tp.classes.iter().map(|c| c.members.len()).sum();
        assert_eq!(total, 64, "classes must partition the 8x8 domain");
        let mut seen = std::collections::HashSet::new();
        for c in &tp.classes {
            for &m in &c.members {
                assert!(seen.insert(m), "overlapping classes");
            }
        }
    }

    #[test]
    fn randomized_protocols_form_rectangles_per_seed() {
        // With coins fixed, a randomized protocol is deterministic and
        // Yao's lemma applies to it as well.
        let proto = ModPrimeSingularity::new(2, 2, 10);
        let enc = proto.enc;
        let p = Partition::pi_zero(&enc);
        for seed in [0u64, 1, 99] {
            let tp = transcript_partition(&proto, &p, &Singularity::new(2, 2), seed);
            assert!(tp.all_monochromatic_rectangles(), "seed {seed}");
            assert!(tp.class_count_consistent_with_cost(), "seed {seed}");
        }
    }

    #[test]
    fn fingerprint_equality_classes() {
        let f = Equality { half_bits: 4 };
        let p = crate::protocols::fingerprint::fixed_partition(4);
        let proto = FingerprintEquality::new(4, 25);
        let tp = transcript_partition(&proto, &p, &f, 3);
        assert!(tp.all_monochromatic_rectangles());
        // A correct run (high security, tiny domain): classes also match f.
        assert!(classes_match_function(&tp, &p, &f));
    }

    #[test]
    fn class_count_lower_bounds_cost() {
        // The cheapest possible protocol for equality on 4+4 bits still
        // needs ≥ log2(#classes) − 1 bits; send-all's class count must
        // certify a cost within its actual budget.
        let f = Equality { half_bits: 4 };
        let p = crate::protocols::fingerprint::fixed_partition(4);
        let proto = SendAll::new(Equality { half_bits: 4 });
        let tp = transcript_partition(&proto, &p, &f, 0);
        let implied = (tp.classes.len() as f64).log2() - 1.0;
        assert!(implied <= tp.max_cost_bits as f64);
        assert!(implied > 0.0);
    }
}
