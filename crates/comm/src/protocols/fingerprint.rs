//! Randomized equality via modular fingerprints.
//!
//! Deterministic equality of two `L`-bit strings needs `L` bits of
//! communication (its truth matrix is the identity: `2^L` fooling pairs).
//! With private coins, A can send `(p, x mod p)` for a random prime `p`
//! of `O(log L + security)` bits. This is the textbook separation the
//! paper's introduction situates Vuillemin's transitivity technique in —
//! and a second, independent demonstration (next to
//! [`crate::protocols::ModPrimeSingularity`]) of the deterministic vs
//! randomized gap that Theorem 1.1 makes precise for matrix problems.
//!
//! This protocol assumes the *fixed* left/right partition (A owns the
//! first half, B the second), as in the Lovász–Saks fixed-partition model
//! quoted in Section 1.

use ccmx_bigint::prime::{window_for_error, PrimeWindow};
use ccmx_bigint::Natural;
use rand::rngs::StdRng;

use crate::bits::BitString;
use crate::partition::Owner;
use crate::protocol::{AgentCtx, Step, Turn, TwoPartyProtocol};

/// Fingerprint equality of two `half_bits`-long strings.
#[derive(Clone, Copy, Debug)]
pub struct FingerprintEquality {
    /// Bits per half.
    pub half_bits: usize,
    /// Prime window for fingerprints.
    pub window: PrimeWindow,
}

impl FingerprintEquality {
    /// Window sized so the error is `<= 2^-security`. The value being
    /// fingerprinted is `x - y` with `|x - y| < 2^half_bits`.
    pub fn new(half_bits: usize, security: u32) -> Self {
        let bound = Natural::power_of_two(half_bits as u64);
        FingerprintEquality {
            half_bits,
            window: window_for_error(&bound, security),
        }
    }

    /// Cost of every run: prime + residue.
    pub fn predicted_cost(&self) -> usize {
        64 + self.window.bits as usize
    }

    fn my_value(&self, ctx: &AgentCtx<'_>) -> Natural {
        // A's half: positions 0..half; B's: half..2*half.
        let offset = match ctx.turn {
            Turn::A => 0,
            Turn::B => self.half_bits,
        };
        let mut v = Natural::zero();
        for i in 0..self.half_bits {
            if ctx
                .share
                .get(offset + i)
                .expect("fixed-partition protocol: agent must own its half")
            {
                v.set_bit(i as u64, true);
            }
        }
        v
    }
}

impl TwoPartyProtocol for FingerprintEquality {
    fn step(&self, ctx: &AgentCtx<'_>, rng: &mut StdRng) -> Step {
        // Enforce the fixed partition this protocol is designed for.
        for i in 0..self.half_bits {
            debug_assert_eq!(ctx.partition.owner(i), Owner::A);
            debug_assert_eq!(ctx.partition.owner(self.half_bits + i), Owner::B);
        }
        match ctx.turn {
            Turn::A => {
                let p = self.window.sample(rng);
                let x = self.my_value(ctx);
                let res = (&x % &Natural::from(p)).to_u64().expect("residue fits");
                let mut msg = BitString::from_u64(p, 64);
                msg.extend(&BitString::from_u64(res, self.window.bits as usize));
                Step::Send(msg)
            }
            Turn::B => {
                let msg = &ctx.transcript.messages()[0].bits;
                let p = BitString::from_bits(msg.as_slice()[..64].to_vec()).to_u64();
                let a_res = BitString::from_bits(msg.as_slice()[64..].to_vec()).to_u64();
                let y = self.my_value(ctx);
                let b_res = (&y % &Natural::from(p)).to_u64().expect("residue fits");
                Step::Output(a_res == b_res)
            }
        }
    }

    fn name(&self) -> &'static str {
        "fingerprint-equality"
    }
}

/// The fixed left/right partition this protocol runs under.
pub fn fixed_partition(half_bits: usize) -> crate::partition::Partition {
    crate::partition::Partition::new(
        (0..2 * half_bits)
            .map(|i| if i < half_bits { Owner::A } else { Owner::B })
            .collect(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::functions::{BooleanFunction, Equality};
    use crate::protocol::{run_sequential, run_threaded};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn equal_strings_always_accepted() {
        let half = 40;
        let proto = FingerprintEquality::new(half, 20);
        let p = fixed_partition(half);
        let mut rng = StdRng::seed_from_u64(5);
        for t in 0..20u64 {
            let x: u64 = rng.gen::<u64>() & ((1 << half) - 1);
            let mut input = BitString::from_u64(x, half);
            input.extend(&BitString::from_u64(x, half));
            let r = run_sequential(&proto, &p, &input, t);
            assert!(r.output);
            assert_eq!(r.cost_bits(), proto.predicted_cost());
        }
    }

    #[test]
    fn unequal_strings_rejected_whp() {
        let half = 40;
        let proto = FingerprintEquality::new(half, 30);
        let p = fixed_partition(half);
        let f = Equality { half_bits: half };
        let mut rng = StdRng::seed_from_u64(6);
        let mut wrong = 0;
        for t in 0..60u64 {
            let x: u64 = rng.gen::<u64>() & ((1 << half) - 1);
            let mut y: u64 = rng.gen::<u64>() & ((1 << half) - 1);
            if y == x {
                y ^= 1;
            }
            let mut input = BitString::from_u64(x, half);
            input.extend(&BitString::from_u64(y, half));
            let r = run_sequential(&proto, &p, &input, t);
            if r.output != f.eval(&input) {
                wrong += 1;
            }
        }
        assert_eq!(
            wrong, 0,
            "fingerprint equality erred far above the analysis"
        );
    }

    #[test]
    fn exponential_savings_over_send_all() {
        // Deterministic equality costs half_bits; fingerprinting costs
        // O(64 + window) independent of half_bits at fixed security.
        let half = 4096;
        let proto = FingerprintEquality::new(half, 20);
        assert!(proto.predicted_cost() < half / 8);
    }

    #[test]
    fn one_bit_difference_detected() {
        let half = 32;
        let proto = FingerprintEquality::new(half, 30);
        let p = fixed_partition(half);
        let x = 0xDEADBEEFu64 & ((1 << half) - 1);
        for flip in [0usize, 13, 31] {
            let y = x ^ (1 << flip);
            let mut input = BitString::from_u64(x, half);
            input.extend(&BitString::from_u64(y, half));
            let r = run_sequential(&proto, &p, &input, flip as u64);
            assert!(
                !r.output,
                "missed a single-bit difference at position {flip}"
            );
        }
    }

    #[test]
    fn threaded_agrees() {
        let half = 16;
        let proto = FingerprintEquality::new(half, 20);
        let p = fixed_partition(half);
        let mut input = BitString::from_u64(0xABCD, half);
        input.extend(&BitString::from_u64(0xABCD, half));
        assert_eq!(
            run_sequential(&proto, &p, &input, 2),
            run_threaded(&proto, &p, &input, 2)
        );
    }
}
