//! The deterministic send-everything protocol.
//!
//! Agent A sends its entire share (in position order); agent B now knows
//! the full input, evaluates the function exactly, and announces. Cost:
//! `|A's share|` bits, i.e. `⌈N/2⌉` for an even partition — `2k·n²` for
//! the paper's `2n × 2n` input of `k`-bit entries. Theorem 1.1 shows this
//! trivial protocol is within a constant factor of optimal for
//! singularity testing; this struct is the experimental realization of
//! that upper bound for *any* [`BooleanFunction`].

use rand::rngs::StdRng;

use crate::bits::BitString;
use crate::functions::BooleanFunction;
use crate::partition::Owner;
use crate::protocol::{AgentCtx, Step, Turn, TwoPartyProtocol};

/// Send-everything protocol for an arbitrary function.
pub struct SendAll<F: BooleanFunction> {
    /// The function to decide (B's exact evaluator).
    pub function: F,
}

impl<F: BooleanFunction> SendAll<F> {
    /// Wrap a function.
    pub fn new(function: F) -> Self {
        SendAll { function }
    }

    /// Predicted cost in bits for a given partition (A's share size).
    pub fn predicted_cost(&self, partition: &crate::partition::Partition) -> usize {
        partition.count_a()
    }
}

impl<F: BooleanFunction> TwoPartyProtocol for SendAll<F> {
    fn step(&self, ctx: &AgentCtx<'_>, _rng: &mut StdRng) -> Step {
        match ctx.turn {
            Turn::A => Step::Send(ctx.share.to_bitstring()),
            Turn::B => {
                // Reassemble the full input: A's bits arrive in the order
                // of A's positions; B interleaves its own.
                let received = ctx.transcript.bits_from(Turn::A);
                let n = ctx.partition.len();
                let mut full = BitString::zeros(n);
                let mut ai = 0usize;
                for pos in 0..n {
                    match ctx.partition.owner(pos) {
                        Owner::A => {
                            full.set(pos, received.get(ai));
                            ai += 1;
                        }
                        Owner::B => {
                            full.set(pos, ctx.share.get(pos).expect("B owns this bit"));
                        }
                    }
                }
                debug_assert_eq!(ai, received.len());
                Step::Output(self.function.eval(&full))
            }
        }
    }

    fn name(&self) -> &'static str {
        "send-all"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encoding::MatrixEncoding;
    use crate::functions::{Equality, Singularity};
    use crate::partition::Partition;
    use crate::protocol::{run_sequential, run_threaded};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn correct_on_all_tiny_singularity_inputs() {
        let f = Singularity::new(2, 1);
        let enc = f.enc;
        let proto = SendAll::new(f);
        let p = Partition::pi_zero(&enc);
        for v in 0..(1u64 << enc.total_bits()) {
            let input = BitString::from_u64(v, enc.total_bits());
            let expect = Singularity::new(2, 1).eval(&input);
            let r = run_sequential(&proto, &p, &input, 0);
            assert_eq!(r.output, expect, "input {v:04b}");
            assert_eq!(r.cost_bits(), proto.predicted_cost(&p));
        }
    }

    #[test]
    fn cost_is_a_share_size_for_random_partitions() {
        let mut rng = StdRng::seed_from_u64(9);
        let f = Singularity::new(2, 3);
        let enc = f.enc;
        let proto = SendAll::new(f);
        for _ in 0..10 {
            let p = Partition::random_even(enc.total_bits(), &mut rng);
            let v: u64 = rng.gen::<u64>() & ((1 << enc.total_bits()) - 1);
            let input = BitString::from_u64(v, enc.total_bits());
            let r = run_sequential(&proto, &p, &input, 0);
            assert_eq!(r.cost_bits(), p.count_a());
            assert_eq!(r.output, Singularity::new(2, 3).eval(&input));
        }
    }

    #[test]
    fn threaded_runner_agrees() {
        let f = Equality { half_bits: 6 };
        let proto = SendAll::new(f);
        let mut rng = StdRng::seed_from_u64(5);
        let p = Partition::random_even(12, &mut rng);
        for v in [0u64, 63 << 6 | 63, 0b000001_000001, 0b100000_000001] {
            let input = BitString::from_u64(v, 12);
            assert_eq!(
                run_sequential(&proto, &p, &input, 1),
                run_threaded(&proto, &p, &input, 1)
            );
        }
    }

    #[test]
    fn works_when_a_owns_nothing() {
        // Degenerate partition: B owns everything; A sends 0 bits.
        let f = Equality { half_bits: 2 };
        let proto = SendAll::new(f);
        let p = Partition::new(vec![crate::partition::Owner::B; 4]);
        let input = BitString::from_u64(0b1010, 4);
        let r = run_sequential(&proto, &p, &input, 0);
        assert!(r.output);
        assert_eq!(r.cost_bits(), 0);
    }

    #[test]
    fn matrix_encoding_cost_matches_theory() {
        // For π₀ on a 2n × 2n matrix of k-bit entries the cost is
        // exactly 2k n² (half the k(2n)² input bits).
        for (two_n, k) in [(2usize, 1u32), (4, 2), (6, 3)] {
            let enc = MatrixEncoding::new(two_n, k);
            let p = Partition::pi_zero(&enc);
            let proto = SendAll::new(Singularity::new(two_n, k));
            assert_eq!(
                proto.predicted_cost(&p),
                k as usize * two_n * two_n / 2,
                "2n={two_n}, k={k}"
            );
        }
    }
}
