//! Randomized linear-system solvability testing (Corollary 1.3's
//! problem) modulo a random prime.
//!
//! By Rouché–Capelli, `A·x = b` is solvable over ℚ iff
//! `rank(A) = rank([A | b])`. Both ranks can only *drop* when reduced
//! modulo `p`, and each drops only if `p` divides one of finitely many
//! nonzero maximal minors — so for a random prime from a
//! Hadamard-calibrated window, `rank_p = rank_ℚ` for both matrices with
//! high probability and the residue comparison decides solvability.
//!
//! Unlike the singularity protocol, the error here is **two-sided in
//! principle** (either rank can drop) but still bounded by the same
//! window analysis; the tests measure both sides.
//!
//! Cost: `64 + (d² + d)·window_bits` — again `O(n² max(log n, log k))`
//! against the deterministic `Θ(k n²)`.

use ccmx_bigint::bounds::hadamard_bound_k_bits;
use ccmx_bigint::prime::{window_for_error, PrimeWindow};
use ccmx_bigint::{Integer, Natural};
use ccmx_linalg::ring::{PrimeField, Ring};
use ccmx_linalg::{gauss, Matrix};
use rand::rngs::StdRng;

use crate::bits::BitString;
use crate::functions::Solvability;
use crate::protocol::{AgentCtx, Step, Turn, TwoPartyProtocol};

/// Randomized solvability of `A·x = b` modulo a random prime.
#[derive(Clone, Copy, Debug)]
pub struct ModPrimeSolvability {
    /// The function (fixes the `(A, b)` encoding).
    pub function: Solvability,
    /// The prime window.
    pub window: PrimeWindow,
}

impl ModPrimeSolvability {
    /// Window sized for per-minor error `<= 2^-security` against the
    /// augmented matrix's Hadamard bound.
    pub fn new(dim: usize, k: u32, security: u32) -> Self {
        let function = Solvability::new(dim, k);
        // Minors of [A | b] are at most (dim)x(dim); bound accordingly.
        let bound = hadamard_bound_k_bits(dim, k);
        ModPrimeSolvability {
            function,
            window: window_for_error(&bound, security),
        }
    }

    /// Exact cost in bits: prime + one residue per entry of `A` and `b`.
    pub fn predicted_cost(&self) -> usize {
        let d = self.function.enc.dim;
        64 + (d * d + d) * self.window.bits as usize
    }

    /// Reconstruct additive partial values of `(A, b)` from a share: the
    /// same trick as the singularity protocol — any subset of an entry's
    /// bits is an additive summand.
    fn partials(&self, ctx: &AgentCtx<'_>) -> (Matrix<Integer>, Vec<Integer>) {
        let enc = self.function.enc;
        let d = enc.dim;
        let k = enc.k as usize;
        let a_bits = enc.total_bits();
        let mut a = Matrix::from_fn(d, d, |_, _| Natural::zero());
        let mut b = vec![Natural::zero(); d];
        for (&pos, &val) in ctx.share.positions().iter().zip(ctx.share.values()) {
            if !val {
                continue;
            }
            if pos < a_bits {
                let (r, c, bit) = enc.coordinates(pos);
                a[(r, c)].set_bit(bit as u64, true);
            } else {
                let rel = pos - a_bits;
                b[rel / k].set_bit((rel % k) as u64, true);
            }
        }
        (
            a.map(|n| Integer::from(n.clone())),
            b.into_iter().map(Integer::from).collect(),
        )
    }
}

impl TwoPartyProtocol for ModPrimeSolvability {
    fn step(&self, ctx: &AgentCtx<'_>, rng: &mut StdRng) -> Step {
        let d = self.function.enc.dim;
        let w = self.window.bits as usize;
        match ctx.turn {
            Turn::A => {
                let p = self.window.sample(rng);
                let field = PrimeField::new(p);
                let (a, b) = self.partials(ctx);
                let mut msg = BitString::from_u64(p, 64);
                for r in 0..d {
                    for c in 0..d {
                        msg.extend(&BitString::from_u64(field.reduce(&a[(r, c)]), w));
                    }
                }
                for e in &b {
                    msg.extend(&BitString::from_u64(field.reduce(e), w));
                }
                Step::Send(msg)
            }
            Turn::B => {
                let msg = &ctx.transcript.messages()[0].bits;
                let p = BitString::from_bits(msg.as_slice()[..64].to_vec()).to_u64();
                let field = PrimeField::new(p);
                let (my_a, my_b) = self.partials(ctx);
                let read = |idx: usize| {
                    BitString::from_bits(msg.as_slice()[64 + idx * w..64 + (idx + 1) * w].to_vec())
                        .to_u64()
                };
                let a = Matrix::from_fn(d, d, |r, c| {
                    field.add(&read(r * d + c), &field.reduce(&my_a[(r, c)]))
                });
                let b: Vec<u64> = (0..d)
                    .map(|i| field.add(&read(d * d + i), &field.reduce(&my_b[i])))
                    .collect();
                let aug = Matrix::from_fn(d, d + 1, |r, c| if c < d { a[(r, c)] } else { b[r] });
                Step::Output(gauss::rank(&field, &a) == gauss::rank(&field, &aug))
            }
        }
    }

    fn name(&self) -> &'static str {
        "mod-random-prime-solvability"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::functions::BooleanFunction;
    use crate::partition::Partition;
    use crate::protocol::{run_sequential, run_threaded};
    use rand::{Rng, SeedableRng};

    fn random_system(dim: usize, k: u32, seed: u64, force_solvable: bool) -> BitString {
        let mut rng = StdRng::seed_from_u64(seed);
        let f = Solvability::new(dim, k);
        let a = Matrix::from_fn(dim, dim, |_, _| {
            Integer::from(rng.gen_range(0..(1i64 << k)))
        });
        let b: Vec<Integer> = if force_solvable {
            // b = A · x₀ for small non-negative x₀... keep entries in
            // range: use x₀ = e_j so b is a column of A.
            let j = rng.gen_range(0..dim);
            (0..dim).map(|i| a[(i, j)].clone()).collect()
        } else {
            (0..dim)
                .map(|_| Integer::from(rng.gen_range(0..(1i64 << k))))
                .collect()
        };
        f.encode(&a, &b)
    }

    #[test]
    fn correct_whp_and_costed() {
        let dim = 4;
        let k = 3;
        let proto = ModPrimeSolvability::new(dim, k, 25);
        let f = Solvability::new(dim, k);
        let p = {
            let mut rng = StdRng::seed_from_u64(1);
            Partition::random_even(f.num_bits(), &mut rng)
        };
        let mut errors = 0;
        for t in 0..40u64 {
            let input = random_system(dim, k, t, t % 2 == 0);
            let run = run_sequential(&proto, &p, &input, t);
            assert_eq!(run.cost_bits(), proto.predicted_cost());
            if run.output != f.eval(&input) {
                errors += 1;
            }
        }
        assert_eq!(errors, 0, "errors far above the 2^-25 analysis");
    }

    #[test]
    fn solvable_systems_accepted() {
        let dim = 4;
        let k = 4;
        let proto = ModPrimeSolvability::new(dim, k, 20);
        let f = Solvability::new(dim, k);
        let enc_bits = f.num_bits();
        let mut rng = StdRng::seed_from_u64(2);
        let p = Partition::random_even(enc_bits, &mut rng);
        for t in 0..20u64 {
            let input = random_system(dim, k, 100 + t, true);
            assert!(f.eval(&input), "constructed system must be solvable");
            let run = run_sequential(&proto, &p, &input, t);
            assert!(run.output, "solvable system rejected at t={t}");
        }
    }

    #[test]
    fn beats_deterministic_for_large_k() {
        let dim = 8;
        let k = 60;
        let proto = ModPrimeSolvability::new(dim, k, 8);
        let f = Solvability::new(dim, k);
        let det_cost = f.num_bits() / 2; // send-all under an even partition
        assert!(
            proto.predicted_cost() < det_cost,
            "{} should be below {}",
            proto.predicted_cost(),
            det_cost
        );
    }

    #[test]
    fn threaded_agrees() {
        let proto = ModPrimeSolvability::new(2, 2, 20);
        let f = Solvability::new(2, 2);
        let mut rng = StdRng::seed_from_u64(3);
        let p = Partition::random_even(f.num_bits(), &mut rng);
        let input = random_system(2, 2, 5, true);
        assert_eq!(
            run_sequential(&proto, &p, &input, 8),
            run_threaded(&proto, &p, &input, 8)
        );
    }
}
