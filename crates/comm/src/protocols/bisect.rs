//! A genuinely multi-round protocol: binary-search equality.
//!
//! Where [`crate::protocols::FingerprintEquality`] decides equality in a
//! single message, this protocol *finds the first differing position* of
//! the two halves (or certifies equality) by fingerprint bisection:
//! each round, A fingerprints the left half of the current candidate
//! range; B answers with one bit ("your left half matches mine /
//! doesn't"), halving the range. After `⌈log₂ L⌉` rounds the range is a
//! single position and B announces.
//!
//! Its purpose in the reproduction is architectural: the protocol
//! machinery must support *stateless multi-round interaction* — each
//! `step` call reconstructs the current search range purely from the
//! public transcript, exactly as the theory model demands (agents have
//! no hidden state beyond their input share).
//!
//! Cost: `O(log L · (64 + w) )` bits where `w` is the fingerprint width —
//! exponentially better than the deterministic `L`, and it delivers a
//! *witness position*, not just the bit.

use ccmx_bigint::prime::{window_for_error, PrimeWindow};
use ccmx_bigint::Natural;
use rand::rngs::StdRng;

use crate::bits::BitString;
use crate::protocol::{AgentCtx, Step, Turn, TwoPartyProtocol};

/// Bisection equality over the fixed left/right partition.
#[derive(Clone, Copy, Debug)]
pub struct BisectEquality {
    /// Bits per half.
    pub half_bits: usize,
    /// Fingerprint window.
    pub window: PrimeWindow,
}

impl BisectEquality {
    /// Window sized for per-round error `<= 2^-security`.
    pub fn new(half_bits: usize, security: u32) -> Self {
        assert!(half_bits >= 1);
        let bound = Natural::power_of_two(half_bits as u64);
        BisectEquality {
            half_bits,
            window: window_for_error(&bound, security),
        }
    }

    /// Number of bisection rounds for the full search.
    pub fn rounds(&self) -> usize {
        (usize::BITS - (self.half_bits - 1).leading_zeros()) as usize
    }

    /// Worst-case cost: one (prime, residue) message plus a 1-bit reply
    /// per bisection round, then the final literal-bit message (the
    /// output announcement itself is free in our accounting).
    pub fn predicted_max_cost(&self) -> usize {
        self.rounds() * (64 + self.window.bits as usize + 1) + 1
    }

    /// My half's value restricted to `[lo, hi)`, as a natural.
    fn segment_value(&self, ctx: &AgentCtx<'_>, lo: usize, hi: usize) -> Natural {
        let offset = match ctx.turn {
            Turn::A => 0,
            Turn::B => self.half_bits,
        };
        let mut v = Natural::zero();
        for (out_bit, i) in (lo..hi).enumerate() {
            if ctx.share.get(offset + i).expect("fixed partition") {
                v.set_bit(out_bit as u64, true);
            }
        }
        v
    }

    /// Replay the transcript to recover the current search state:
    /// `(range, done)` where `range` is the candidate `[lo, hi)` known to
    /// contain a difference — or the whole string if none found yet.
    ///
    /// Protocol invariant: messages alternate A: (prime, fingerprint of
    /// left half of range), B: 1 bit (1 = left halves differ).
    fn replay(&self, ctx: &AgentCtx<'_>) -> (usize, usize, bool) {
        let mut lo = 0usize;
        let mut hi = self.half_bits;
        let mut difference_known = false;
        let msgs = ctx.transcript.messages();
        let mut i = 0;
        while i + 1 < msgs.len() {
            // msgs[i] is A's fingerprint message; msgs[i+1] is B's bit.
            debug_assert_eq!(msgs[i].from, Turn::A);
            debug_assert_eq!(msgs[i + 1].from, Turn::B);
            let differs_left = msgs[i + 1].bits.get(0);
            let mid = lo + (hi - lo).div_ceil(2);
            if differs_left {
                hi = mid;
                difference_known = true;
            } else {
                lo = mid;
                // If no difference was ever confirmed, the right half is
                // only *suspected*; equality overall is still possible.
            }
            i += 2;
        }
        (lo, hi, difference_known)
    }
}

impl TwoPartyProtocol for BisectEquality {
    fn step(&self, ctx: &AgentCtx<'_>, rng: &mut StdRng) -> Step {
        let (lo, hi, difference_known) = self.replay(ctx);
        match ctx.turn {
            Turn::A => {
                // Range of one: send that single bit directly.
                if hi - lo == 1 {
                    let offset = 0;
                    let bit = ctx.share.get(offset + lo).expect("fixed partition");
                    return Step::Send(BitString::from_bits(vec![bit]));
                }
                let mid = lo + (hi - lo).div_ceil(2);
                let p = self.window.sample(rng);
                let val = self.segment_value(ctx, lo, mid);
                let res = (&val % &Natural::from(p)).to_u64().expect("residue fits");
                let mut msg = BitString::from_u64(p, 64);
                msg.extend(&BitString::from_u64(res, self.window.bits as usize));
                Step::Send(msg)
            }
            Turn::B => {
                let last = ctx.transcript.messages().last().expect("A spoke first");
                debug_assert_eq!(last.from, Turn::A);
                if hi - lo == 1 {
                    // A sent the literal bit; compare and announce.
                    let a_bit = last.bits.get(0);
                    let b_bit = ctx.share.get(self.half_bits + lo).expect("fixed partition");
                    if a_bit != b_bit {
                        return Step::Output(false); // found the difference
                    }
                    // Positions match. If a difference was known to exist
                    // in this range, fingerprints misled us — but with
                    // one-sided fingerprints (differences are never
                    // faked), reaching here with difference_known means
                    // the difference was real but pinned to this exact
                    // bit... which matched: declare equal (the fingerprint
                    // collision case, probability <= 2^-security).
                    let _ = difference_known;
                    return Step::Output(true);
                }
                let p = BitString::from_bits(last.bits.as_slice()[..64].to_vec()).to_u64();
                let a_res = BitString::from_bits(last.bits.as_slice()[64..].to_vec()).to_u64();
                let mid = lo + (hi - lo).div_ceil(2);
                let val = self.segment_value(ctx, lo, mid);
                let b_res = (&val % &Natural::from(p)).to_u64().expect("residue fits");
                let differs_left = a_res != b_res;
                Step::Send(BitString::from_bits(vec![differs_left]))
            }
        }
    }

    fn name(&self) -> &'static str {
        "bisect-equality"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::functions::{BooleanFunction, Equality};
    use crate::protocol::{run_sequential, run_threaded};
    use crate::protocols::fingerprint::fixed_partition;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn make_input(x: u64, y: u64, half: usize) -> BitString {
        let mut input = BitString::from_u64(x, half);
        input.extend(&BitString::from_u64(y, half));
        input
    }

    #[test]
    fn equal_inputs_accepted() {
        let half = 32;
        let proto = BisectEquality::new(half, 25);
        let p = fixed_partition(half);
        let mut rng = StdRng::seed_from_u64(1);
        for t in 0..20u64 {
            let x: u64 = rng.gen::<u64>() & ((1 << half) - 1);
            let r = run_sequential(&proto, &p, &make_input(x, x, half), t);
            assert!(r.output, "equal strings rejected at t={t}");
            assert!(r.cost_bits() <= proto.predicted_max_cost());
        }
    }

    #[test]
    fn unequal_inputs_rejected_and_multi_round() {
        let half = 32;
        let proto = BisectEquality::new(half, 30);
        let p = fixed_partition(half);
        let f = Equality { half_bits: half };
        let mut rng = StdRng::seed_from_u64(2);
        for t in 0..30u64 {
            let x: u64 = rng.gen::<u64>() & ((1 << half) - 1);
            let flip = rng.gen_range(0..half);
            let y = x ^ (1 << flip);
            let input = make_input(x, y, half);
            let r = run_sequential(&proto, &p, &input, t);
            assert_eq!(r.output, f.eval(&input), "t={t}");
            assert!(!r.output);
            // Genuinely interactive: at least 2·log₂(32) = 10 messages.
            assert!(
                r.transcript.rounds() >= 2 * proto.rounds() - 1,
                "expected a full bisection, got {} rounds",
                r.transcript.rounds()
            );
        }
    }

    #[test]
    fn single_bit_difference_at_every_position() {
        let half = 16;
        let proto = BisectEquality::new(half, 30);
        let p = fixed_partition(half);
        let x = 0xA5C3u64;
        for flip in 0..half {
            let y = x ^ (1 << flip);
            let r = run_sequential(&proto, &p, &make_input(x, y, half), flip as u64);
            assert!(!r.output, "missed difference at bit {flip}");
        }
    }

    #[test]
    fn threaded_runner_handles_many_rounds() {
        let half = 16;
        let proto = BisectEquality::new(half, 25);
        let p = fixed_partition(half);
        for (x, y) in [(0xFFFFu64, 0xFFFFu64), (0xFFFF, 0xFFFE), (0, 0x8000)] {
            let input = make_input(x, y, half);
            assert_eq!(
                run_sequential(&proto, &p, &input, 9),
                run_threaded(&proto, &p, &input, 9)
            );
        }
    }

    #[test]
    fn cost_scales_logarithmically() {
        let c16 = BisectEquality::new(1 << 16, 20).predicted_max_cost();
        let c20 = BisectEquality::new(1 << 20, 20).predicted_max_cost();
        // Quadrupling... 16x-ing the input multiplies cost by ~20/16.
        assert!(c20 < c16 * 2, "cost not logarithmic: {c16} -> {c20}");
        // And wildly below the deterministic L.
        assert!(c20 < (1 << 20) / 100);
    }

    #[test]
    fn tiny_half_sizes() {
        for half in [1usize, 2, 3] {
            let proto = BisectEquality::new(half, 20);
            let p = fixed_partition(half);
            for x in 0..(1u64 << half) {
                for y in 0..(1u64 << half) {
                    let input = make_input(x, y, half);
                    let r = run_sequential(&proto, &p, &input, x * 8 + y);
                    assert_eq!(r.output, x == y, "half={half}, x={x:b}, y={y:b}");
                }
            }
        }
    }
}
