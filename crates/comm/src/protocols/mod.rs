//! Concrete protocols.
//!
//! * [`send_all`] — the deterministic upper bound: one agent ships its
//!   whole share (`Θ(k n²)` bits for the paper's inputs). Theorem 1.1 says
//!   this is optimal up to constants for singularity testing.
//! * [`mod_prime`] — the randomized protocol behind the
//!   `O(n² max(log n, log k))` bound (Leighton 1987, quoted in Section 1):
//!   reduce every entry modulo a random prime and decide singularity in
//!   GF(p). One-sided error, analyzed in code.
//! * [`bisect`] — multi-round binary-search equality: finds the first
//!   differing position in O(log L) interactive rounds (exercises the
//!   stateless multi-round protocol machinery).
//! * [`fingerprint`] — randomized equality via modular fingerprints, the
//!   classic `O(log)` contrast to deterministic equality (context for the
//!   paper's discussion of Vuillemin's technique).

pub mod bisect;
pub mod fingerprint;
pub mod mod_prime;
pub mod mod_prime_solvability;
pub mod send_all;

pub use bisect::BisectEquality;
pub use fingerprint::FingerprintEquality;
pub use mod_prime::ModPrimeSingularity;
pub use mod_prime_solvability::ModPrimeSolvability;
pub use send_all::SendAll;
