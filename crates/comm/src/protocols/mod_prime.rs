//! The randomized mod-a-random-prime singularity protocol.
//!
//! This realizes the probabilistic `O(n² max(log n, log k))` upper bound
//! the paper attributes to Leighton (1987):
//!
//! 1. Agent A samples a prime `p` from the window `[2^{b-1}, 2^b)`, where
//!    `b` is sized from the Hadamard bound so a *nonzero* determinant has
//!    at most an `ε` chance of vanishing mod `p` (see
//!    [`ccmx_bigint::prime::window_for_error`]).
//! 2. A sends `p`, followed by its **additive partial value** of every
//!    matrix entry reduced mod `p` (an agent holding an arbitrary subset
//!    of an entry's bits holds an additive summand of that entry, so this
//!    works for *every* partition, not just `π₀`).
//! 3. B adds its own partial values mod `p`, runs Gaussian elimination in
//!    GF(p), and announces `det ≡ 0 (mod p)`.
//!
//! Cost: `64 + d²·b` bits where `d` is the matrix dimension and
//! `b = O(max(log d, k + log d))`... for `k`-bit entries the window size
//! works out to `Θ(max(log d, log k))` once amortized per entry against
//! the deterministic `Θ(k·d²)`. The error is **one-sided**: a singular
//! matrix is always declared singular; a nonsingular one is misclassified
//! only if `p` divides its (nonzero) determinant.

use ccmx_bigint::bounds::hadamard_bound_k_bits;
use ccmx_bigint::prime::{window_for_error, PrimeWindow};
use ccmx_linalg::ring::{PrimeField, Ring};
use ccmx_linalg::{gauss, Matrix};
use rand::rngs::StdRng;

use crate::bits::BitString;
use crate::encoding::MatrixEncoding;
use crate::protocol::{AgentCtx, Step, Turn, TwoPartyProtocol};

/// Randomized singularity testing modulo a random prime.
#[derive(Clone, Copy, Debug)]
pub struct ModPrimeSingularity {
    /// The input encoding.
    pub enc: MatrixEncoding,
    /// The prime window A samples from.
    pub window: PrimeWindow,
}

impl ModPrimeSingularity {
    /// Build the protocol with a window sized for error `<= 2^-security`
    /// against the Hadamard bound of the instance family.
    pub fn new(dim: usize, k: u32, security: u32) -> Self {
        let enc = MatrixEncoding::new(dim, k);
        let bound = hadamard_bound_k_bits(dim, k);
        ModPrimeSingularity {
            enc,
            window: window_for_error(&bound, security),
        }
    }

    /// Exact cost in bits of every run: the prime (64) plus one residue of
    /// `window.bits` bits per matrix entry.
    pub fn predicted_cost(&self) -> usize {
        64 + self.enc.dim * self.enc.dim * self.window.bits as usize
    }

    /// Upper bound on the one-sided error probability for this window:
    /// (max prime divisors of a nonzero determinant in the window) /
    /// (number of primes in the window).
    pub fn error_bound(&self) -> f64 {
        let bound = hadamard_bound_k_bits(self.enc.dim, self.enc.k);
        let bad = ccmx_bigint::prime::max_prime_divisors_in_window(&bound, self.window) as f64;
        bad / self.window.count_lower_bound()
    }

    fn residues_message(&self, partials: &Matrix<ccmx_bigint::Integer>, p: u64) -> BitString {
        let field = PrimeField::new(p);
        let mut msg = BitString::from_u64(p, 64);
        for r in 0..self.enc.dim {
            for c in 0..self.enc.dim {
                let res = field.reduce(&partials[(r, c)]);
                msg.extend(&BitString::from_u64(res, self.window.bits as usize));
            }
        }
        msg
    }
}

impl TwoPartyProtocol for ModPrimeSingularity {
    fn step(&self, ctx: &AgentCtx<'_>, rng: &mut StdRng) -> Step {
        match ctx.turn {
            Turn::A => {
                let p = self.window.sample(rng);
                let partials = self.enc.partial_values(ctx.share);
                Step::Send(self.residues_message(&partials, p))
            }
            Turn::B => {
                let msg = &ctx.transcript.messages()[0].bits;
                let p = BitString::from_bits(msg.as_slice()[..64].to_vec()).to_u64();
                let field = PrimeField::new(p);
                let bits_per = self.window.bits as usize;
                let my_partials = self.enc.partial_values(ctx.share);
                let d = self.enc.dim;
                let m = Matrix::from_fn(d, d, |r, c| {
                    let idx = 64 + (r * d + c) * bits_per;
                    let a_res =
                        BitString::from_bits(msg.as_slice()[idx..idx + bits_per].to_vec()).to_u64();
                    field.add(&a_res, &field.reduce(&my_partials[(r, c)]))
                });
                Step::Output(gauss::is_singular(&field, &m))
            }
        }
    }

    fn name(&self) -> &'static str {
        "mod-random-prime"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::functions::{BooleanFunction, Singularity};
    use crate::partition::Partition;
    use crate::protocol::{run_sequential, run_threaded};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn never_misses_a_singular_matrix() {
        // One-sided error: singular => always declared singular.
        let dim = 4;
        let k = 2;
        let proto = ModPrimeSingularity::new(dim, k, 20);
        let f = Singularity::new(dim, k);
        let enc = proto.enc;
        let p = Partition::pi_zero(&enc);
        let mut rng = StdRng::seed_from_u64(10);
        let mut tested = 0;
        while tested < 25 {
            // Random matrix with a duplicated column: always singular.
            let mut m = ccmx_linalg::Matrix::from_fn(dim, dim, |_, _| {
                ccmx_bigint::Integer::from(rng.gen_range(0i64..(1 << k)))
            });
            for r in 0..dim {
                m[(r, dim - 1)] = m[(r, 0)].clone();
            }
            let input = enc.encode(&m);
            assert!(f.eval(&input), "constructed matrix must be singular");
            let r = run_sequential(&proto, &p, &input, rng.gen());
            assert!(r.output, "randomized protocol missed a singular matrix");
            tested += 1;
        }
    }

    #[test]
    fn correct_whp_on_random_matrices() {
        let dim = 4;
        let k = 3;
        let proto = ModPrimeSingularity::new(dim, k, 30);
        let f = Singularity::new(dim, k);
        let enc = proto.enc;
        let p = Partition::pi_zero(&enc);
        let mut rng = StdRng::seed_from_u64(77);
        let mut errors = 0;
        let trials = 60;
        for t in 0..trials {
            let m = ccmx_linalg::Matrix::from_fn(dim, dim, |_, _| {
                ccmx_bigint::Integer::from(rng.gen_range(0i64..(1 << k)))
            });
            let input = enc.encode(&m);
            let r = run_sequential(&proto, &p, &input, t);
            if r.output != f.eval(&input) {
                errors += 1;
            }
        }
        assert_eq!(errors, 0, "error rate far above the 2^-30 analysis");
    }

    #[test]
    fn cost_matches_prediction_and_beats_send_all_for_large_k() {
        // The crossover needs k >> window bits ≈ log(k·dim) + security:
        // large entries, enough entries to amortize the 64-bit prime, and
        // a constant-error setting (the paper's probabilistic model only
        // asks for error 1/2 - ε).
        let dim = 8;
        let k = 60;
        let proto = ModPrimeSingularity::new(dim, k, 8);
        let enc = proto.enc;
        let p = Partition::pi_zero(&enc);
        let mut rng = StdRng::seed_from_u64(3);
        let m = ccmx_linalg::Matrix::from_fn(dim, dim, |_, _| {
            ccmx_bigint::Integer::from(rng.gen_range(0i64..(1i64 << k)))
        });
        let input = enc.encode(&m);
        let r = run_sequential(&proto, &p, &input, 9);
        assert_eq!(r.cost_bits(), proto.predicted_cost());
        let send_all_cost = p.count_a(); // k(2n)²/2
        assert!(
            r.cost_bits() < send_all_cost,
            "randomized {} bits should beat deterministic {} bits at k={k}",
            r.cost_bits(),
            send_all_cost
        );
    }

    #[test]
    fn works_for_arbitrary_partitions() {
        // The additive-share trick must survive bit-granular partitions.
        let dim = 2;
        let k = 4;
        let proto = ModPrimeSingularity::new(dim, k, 25);
        let f = Singularity::new(dim, k);
        let enc = proto.enc;
        let mut rng = StdRng::seed_from_u64(12);
        for trial in 0..30u64 {
            let p = Partition::random_even(enc.total_bits(), &mut rng);
            let m = ccmx_linalg::Matrix::from_fn(dim, dim, |_, _| {
                ccmx_bigint::Integer::from(rng.gen_range(0i64..(1 << k)))
            });
            let input = enc.encode(&m);
            let r = run_sequential(&proto, &p, &input, trial);
            assert_eq!(r.output, f.eval(&input), "trial {trial}");
        }
    }

    #[test]
    fn threaded_and_sequential_agree() {
        let proto = ModPrimeSingularity::new(2, 2, 20);
        let enc = proto.enc;
        let p = Partition::pi_zero(&enc);
        let m = ccmx_linalg::matrix::int_matrix(&[&[1, 2], &[3, 3]]);
        let input = enc.encode(&m);
        assert_eq!(
            run_sequential(&proto, &p, &input, 4),
            run_threaded(&proto, &p, &input, 4)
        );
    }

    #[test]
    fn error_bound_is_small() {
        let proto = ModPrimeSingularity::new(8, 8, 20);
        assert!(proto.error_bound() <= 1.0 / ((1u64 << 20) as f64) * 2.0);
    }
}
