//! Partitions of the input bits between the two agents.
//!
//! A [`Partition`] assigns every bit position to agent A or agent B. The
//! model quantifies over *even* partitions (each agent gets half the bits,
//! ±1 for odd lengths); the paper fixes `π₀` first (Definition 2.1: agent
//! A reads the first `n` columns of the `2n × 2n` input) and then reduces
//! arbitrary even partitions to *proper* ones by row/column permutation
//! (Lemma 3.9 — implemented in `ccmx-core`).

use rand::seq::SliceRandom;
use rand::Rng;

use crate::bits::{BitString, Share};
use crate::encoding::MatrixEncoding;

/// Which agent a bit belongs to.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Owner {
    /// The first agent.
    A,
    /// The second agent.
    B,
}

/// An assignment of each input bit position to one of the two agents.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Partition {
    owners: Vec<Owner>,
}

impl Partition {
    /// Build from an ownership vector.
    pub fn new(owners: Vec<Owner>) -> Self {
        assert!(!owners.is_empty(), "empty partition");
        Partition { owners }
    }

    /// Total number of input bits.
    pub fn len(&self) -> usize {
        self.owners.len()
    }

    /// Never empty (constructor enforces it), provided for API symmetry.
    pub fn is_empty(&self) -> bool {
        self.owners.is_empty()
    }

    /// Owner of bit position `pos`.
    pub fn owner(&self, pos: usize) -> Owner {
        self.owners[pos]
    }

    /// Number of bits owned by A.
    pub fn count_a(&self) -> usize {
        self.owners.iter().filter(|&&o| o == Owner::A).count()
    }

    /// Number of bits owned by B.
    pub fn count_b(&self) -> usize {
        self.len() - self.count_a()
    }

    /// Is the partition even (shares differ by at most one bit)?
    pub fn is_even(&self) -> bool {
        let a = self.count_a();
        let b = self.count_b();
        a.abs_diff(b) <= 1
    }

    /// Positions owned by the given agent, sorted.
    pub fn positions_of(&self, who: Owner) -> Vec<usize> {
        self.owners
            .iter()
            .enumerate()
            .filter_map(|(i, &o)| (o == who).then_some(i))
            .collect()
    }

    /// Split a full input into the two agents' shares.
    pub fn split(&self, input: &BitString) -> (Share, Share) {
        assert_eq!(input.len(), self.len(), "input length mismatch");
        let (mut ap, mut av, mut bp, mut bv) = (Vec::new(), Vec::new(), Vec::new(), Vec::new());
        for (i, &o) in self.owners.iter().enumerate() {
            match o {
                Owner::A => {
                    ap.push(i);
                    av.push(input.get(i));
                }
                Owner::B => {
                    bp.push(i);
                    bv.push(input.get(i));
                }
            }
        }
        (Share::new(ap, av), Share::new(bp, bv))
    }

    /// The paper's `π₀` (Definition 2.1): for a `2m × 2m` matrix, agent A
    /// reads all bits of the first `m` columns, agent B the rest.
    pub fn pi_zero(enc: &MatrixEncoding) -> Partition {
        assert!(
            enc.dim.is_multiple_of(2),
            "π₀ requires even matrix dimension"
        );
        let half = enc.dim / 2;
        let mut owners = vec![Owner::B; enc.total_bits()];
        for col in 0..half {
            for pos in enc.column_positions(col) {
                owners[pos] = Owner::A;
            }
        }
        Partition::new(owners)
    }

    /// A uniformly random even partition of `len` bits.
    pub fn random_even<R: Rng + ?Sized>(len: usize, rng: &mut R) -> Partition {
        let mut owners: Vec<Owner> = (0..len)
            .map(|i| if i < len / 2 { Owner::A } else { Owner::B })
            .collect();
        owners.shuffle(rng);
        Partition::new(owners)
    }

    /// The row-split partition: A owns the top half of the rows. (Used as
    /// an alternative fixed partition in the metering experiments.)
    pub fn row_split(enc: &MatrixEncoding) -> Partition {
        assert!(
            enc.dim.is_multiple_of(2),
            "row split requires even dimension"
        );
        let half = enc.dim / 2;
        let mut owners = vec![Owner::B; enc.total_bits()];
        for row in 0..half {
            for pos in enc.row_positions(row) {
                owners[pos] = Owner::A;
            }
        }
        Partition::new(owners)
    }

    /// Apply a matrix row/column permutation to this partition: the new
    /// partition assigns to position `(r, c, b)` the owner of
    /// `(row_perm[r], col_perm[c], b)` in `self`.
    ///
    /// This is the transformation Lemma 3.9 is allowed to make: permuting
    /// rows and columns of the input matrix does not change its rank, and
    /// relabels which bit positions each agent reads.
    pub fn permuted(
        &self,
        enc: &MatrixEncoding,
        row_perm: &[usize],
        col_perm: &[usize],
    ) -> Partition {
        assert_eq!(self.len(), enc.total_bits());
        assert_eq!(row_perm.len(), enc.dim);
        assert_eq!(col_perm.len(), enc.dim);
        let mut owners = vec![Owner::A; self.len()];
        for (pos, slot) in owners.iter_mut().enumerate() {
            let (r, c, b) = enc.coordinates(pos);
            *slot = self.owner(enc.position(row_perm[r], col_perm[c], b));
        }
        Partition::new(owners)
    }

    /// Swap the two agents' roles.
    pub fn swapped(&self) -> Partition {
        Partition::new(
            self.owners
                .iter()
                .map(|o| match o {
                    Owner::A => Owner::B,
                    Owner::B => Owner::A,
                })
                .collect(),
        )
    }

    /// Fraction of the bits of the `rows × cols` sub-rectangle (given by
    /// row/col index sets) owned by agent `who` — the "domination"
    /// predicate of Lemma 3.9's proof.
    pub fn owned_fraction(
        &self,
        enc: &MatrixEncoding,
        rows: &[usize],
        cols: &[usize],
        who: Owner,
    ) -> f64 {
        let mut owned = 0usize;
        let mut total = 0usize;
        for &r in rows {
            for &c in cols {
                for pos in enc.entry_positions(r, c) {
                    total += 1;
                    if self.owner(pos) == who {
                        owned += 1;
                    }
                }
            }
        }
        if total == 0 {
            0.0
        } else {
            owned as f64 / total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn pi_zero_columns() {
        let enc = MatrixEncoding::new(4, 2);
        let p = Partition::pi_zero(&enc);
        assert!(p.is_even());
        assert_eq!(p.count_a(), p.count_b());
        // Entry (3, 0) belongs to A; (0, 2) to B.
        for pos in enc.entry_positions(3, 0) {
            assert_eq!(p.owner(pos), Owner::A);
        }
        for pos in enc.entry_positions(0, 2) {
            assert_eq!(p.owner(pos), Owner::B);
        }
    }

    #[test]
    fn row_split_rows() {
        let enc = MatrixEncoding::new(4, 1);
        let p = Partition::row_split(&enc);
        assert!(p.is_even());
        for pos in enc.row_positions(0) {
            assert_eq!(p.owner(pos), Owner::A);
        }
        for pos in enc.row_positions(3) {
            assert_eq!(p.owner(pos), Owner::B);
        }
    }

    #[test]
    fn random_even_is_even() {
        let mut rng = StdRng::seed_from_u64(3);
        for len in [2usize, 5, 10, 101] {
            let p = Partition::random_even(len, &mut rng);
            assert!(p.is_even(), "len={len}");
            assert_eq!(p.len(), len);
        }
    }

    #[test]
    fn split_partitions_input() {
        let enc = MatrixEncoding::new(2, 1);
        let p = Partition::pi_zero(&enc);
        let input = BitString::from_u64(0b1011, 4);
        let (a, b) = p.split(&input);
        assert_eq!(a.len() + b.len(), 4);
        for pos in 0..4 {
            let v = input.get(pos);
            match p.owner(pos) {
                Owner::A => assert_eq!(a.get(pos), Some(v)),
                Owner::B => assert_eq!(b.get(pos), Some(v)),
            }
        }
    }

    #[test]
    fn swapped_flips_counts() {
        let mut rng = StdRng::seed_from_u64(4);
        let p = Partition::random_even(11, &mut rng);
        let q = p.swapped();
        assert_eq!(p.count_a(), q.count_b());
        assert_eq!(p.count_b(), q.count_a());
        assert_eq!(q.swapped(), p);
    }

    #[test]
    fn permuted_tracks_coordinates() {
        let enc = MatrixEncoding::new(2, 1);
        let p = Partition::pi_zero(&enc); // A owns column 0
                                          // Swap the two columns: now A's bits sit where column 1 is.
        let q = p.permuted(&enc, &[0, 1], &[1, 0]);
        for r in 0..2 {
            for pos in enc.entry_positions(r, 0) {
                assert_eq!(q.owner(pos), Owner::B);
            }
            for pos in enc.entry_positions(r, 1) {
                assert_eq!(q.owner(pos), Owner::A);
            }
        }
        // Permutation preserves evenness.
        assert!(q.is_even());
    }

    #[test]
    fn owned_fraction_extremes() {
        let enc = MatrixEncoding::new(2, 3);
        let p = Partition::pi_zero(&enc);
        assert_eq!(p.owned_fraction(&enc, &[0, 1], &[0], Owner::A), 1.0);
        assert_eq!(p.owned_fraction(&enc, &[0, 1], &[1], Owner::A), 0.0);
        assert_eq!(p.owned_fraction(&enc, &[0, 1], &[0, 1], Owner::A), 0.5);
    }
}
