//! The paper's input encoding.
//!
//! Inputs are `d × d` matrices whose entries are `k`-bit non-negative
//! integers in `[0, 2^k − 1]` (Section 3 of the paper). We serialize them
//! row-major, each entry LSB-first, so bit position
//! `((row · d) + col) · k + bit` carries bit `bit` of entry `(row, col)`.
//!
//! [`MatrixEncoding`] is the geometry object every partition and protocol
//! shares: it maps between global bit positions and `(row, col, bit)`
//! coordinates, encodes/decodes matrices, and reconstructs *partial*
//! matrices from an agent's [`Share`].

use ccmx_bigint::{Integer, Natural};
use ccmx_linalg::Matrix;

use crate::bits::{BitString, Share};

/// Geometry of the bit-level encoding of a `dim × dim` matrix of `k`-bit
/// entries.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MatrixEncoding {
    /// Matrix dimension `d` (the paper's `2n`).
    pub dim: usize,
    /// Bits per entry.
    pub k: u32,
}

impl MatrixEncoding {
    /// Construct; `dim >= 1`, `1 <= k <= 63`.
    pub fn new(dim: usize, k: u32) -> Self {
        assert!(dim >= 1, "matrix dimension must be positive");
        assert!((1..=63).contains(&k), "k must be in 1..=63");
        MatrixEncoding { dim, k }
    }

    /// Total number of input bits `k·d²`.
    pub fn total_bits(&self) -> usize {
        self.dim * self.dim * self.k as usize
    }

    /// Global bit position of bit `bit` of entry `(row, col)`.
    pub fn position(&self, row: usize, col: usize, bit: u32) -> usize {
        debug_assert!(row < self.dim && col < self.dim && bit < self.k);
        (row * self.dim + col) * self.k as usize + bit as usize
    }

    /// Inverse of [`Self::position`]: `(row, col, bit)` of a global
    /// position.
    pub fn coordinates(&self, pos: usize) -> (usize, usize, u32) {
        debug_assert!(pos < self.total_bits());
        let entry = pos / self.k as usize;
        let bit = (pos % self.k as usize) as u32;
        (entry / self.dim, entry % self.dim, bit)
    }

    /// All bit positions of entry `(row, col)`.
    pub fn entry_positions(&self, row: usize, col: usize) -> std::ops::Range<usize> {
        let start = self.position(row, col, 0);
        start..start + self.k as usize
    }

    /// All bit positions of column `col`.
    pub fn column_positions(&self, col: usize) -> Vec<usize> {
        (0..self.dim)
            .flat_map(|r| self.entry_positions(r, col))
            .collect()
    }

    /// All bit positions of row `row`.
    pub fn row_positions(&self, row: usize) -> Vec<usize> {
        (0..self.dim)
            .flat_map(|c| self.entry_positions(row, c))
            .collect()
    }

    /// Encode a matrix (entries must be in `[0, 2^k − 1]`).
    pub fn encode(&self, m: &Matrix<Integer>) -> BitString {
        assert_eq!(
            (m.rows(), m.cols()),
            (self.dim, self.dim),
            "matrix shape mismatch"
        );
        let mut bits = BitString::zeros(self.total_bits());
        for r in 0..self.dim {
            for c in 0..self.dim {
                let e = &m[(r, c)];
                assert!(!e.is_negative(), "entries must be non-negative");
                let mag = e.magnitude();
                assert!(
                    mag.bit_len() <= self.k as u64,
                    "entry {e} exceeds {} bits",
                    self.k
                );
                for b in 0..self.k {
                    bits.set(self.position(r, c, b), mag.bit(b as u64));
                }
            }
        }
        bits
    }

    /// Decode a full bit string back into a matrix.
    pub fn decode(&self, bits: &BitString) -> Matrix<Integer> {
        assert_eq!(bits.len(), self.total_bits(), "bit string length mismatch");
        Matrix::from_fn(self.dim, self.dim, |r, c| {
            let mut n = Natural::zero();
            for b in 0..self.k {
                if bits.get(self.position(r, c, b)) {
                    n.set_bit(b as u64, true);
                }
            }
            Integer::from(n)
        })
    }

    /// Reconstruct the *partial value* of every entry from a share: entry
    /// `(r, c)` gets the sum of `2^bit` over the owned one-bits, i.e. the
    /// agent's additive contribution to that entry. Entries with no owned
    /// bits contribute zero. (The mod-prime protocol ships exactly these
    /// partial values reduced mod `p`; they sum to the true entries.)
    pub fn partial_values(&self, share: &Share) -> Matrix<Integer> {
        let mut m = Matrix::from_fn(self.dim, self.dim, |_, _| Natural::zero());
        for (&pos, &val) in share.positions().iter().zip(share.values()) {
            if val {
                let (r, c, b) = self.coordinates(pos);
                m[(r, c)].set_bit(b as u64, true);
            }
        }
        m.map(|n| Integer::from(n.clone()))
    }

    /// The number of *entries* in which the share owns at least one bit.
    pub fn touched_entries(&self, share: &Share) -> usize {
        let mut touched = vec![false; self.dim * self.dim];
        for &pos in share.positions() {
            touched[pos / self.k as usize] = true;
        }
        touched.iter().filter(|&&t| t).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccmx_linalg::matrix::int_matrix;

    #[test]
    fn position_coordinate_roundtrip() {
        let e = MatrixEncoding::new(4, 3);
        for pos in 0..e.total_bits() {
            let (r, c, b) = e.coordinates(pos);
            assert_eq!(e.position(r, c, b), pos);
        }
        assert_eq!(e.total_bits(), 48);
    }

    #[test]
    fn encode_decode_roundtrip() {
        let e = MatrixEncoding::new(2, 4);
        let m = int_matrix(&[&[0, 15], &[7, 9]]);
        let bits = e.encode(&m);
        assert_eq!(e.decode(&bits), m);
        assert_eq!(bits.len(), 16);
    }

    #[test]
    #[should_panic(expected = "exceeds")]
    fn encode_rejects_oversized_entries() {
        let e = MatrixEncoding::new(2, 2);
        let m = int_matrix(&[&[0, 4], &[0, 0]]); // 4 needs 3 bits
        let _ = e.encode(&m);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn encode_rejects_negative_entries() {
        let e = MatrixEncoding::new(2, 2);
        let m = int_matrix(&[&[0, -1], &[0, 0]]);
        let _ = e.encode(&m);
    }

    #[test]
    fn column_and_row_positions() {
        let e = MatrixEncoding::new(2, 2);
        // Row-major, k=2: entry (0,0) bits 0..2, (0,1) bits 2..4,
        // (1,0) bits 4..6, (1,1) bits 6..8.
        assert_eq!(e.column_positions(0), vec![0, 1, 4, 5]);
        assert_eq!(e.column_positions(1), vec![2, 3, 6, 7]);
        assert_eq!(e.row_positions(1), vec![4, 5, 6, 7]);
    }

    #[test]
    fn partial_values_sum_to_entries() {
        let e = MatrixEncoding::new(2, 3);
        let m = int_matrix(&[&[5, 3], &[7, 0]]);
        let bits = e.encode(&m);
        // Split positions arbitrarily: even positions to A, odd to B.
        let a_pos: Vec<usize> = (0..bits.len()).filter(|p| p % 2 == 0).collect();
        let b_pos: Vec<usize> = (0..bits.len()).filter(|p| p % 2 == 1).collect();
        let a = Share::new(a_pos.clone(), a_pos.iter().map(|&p| bits.get(p)).collect());
        let b = Share::new(b_pos.clone(), b_pos.iter().map(|&p| bits.get(p)).collect());
        let zz = ccmx_linalg::ring::IntegerRing;
        let sum = e.partial_values(&a).add(&zz, &e.partial_values(&b));
        assert_eq!(sum, m);
    }

    #[test]
    fn touched_entries_counts() {
        let e = MatrixEncoding::new(2, 2);
        // Own both bits of entry (0,0) and one bit of entry (1,1).
        let s = Share::new(vec![0, 1, 6], vec![true, false, true]);
        assert_eq!(e.touched_entries(&s), 2);
    }
}
